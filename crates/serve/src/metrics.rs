//! Server metrics: per-shard counters, per-tenant fleet gauges,
//! per-stage latency histograms, and reactor introspection, rendered in
//! the Prometheus text exposition format.
//!
//! Latency is captured in [`Log2Histogram`]s on the recording threads
//! and merged exactly at scrape time, so the exported
//! `sitw_serve_decision_latency` histogram's bucket counts equal the
//! sum of the per-shard (and per-reactor) recordings — no estimator
//! drift. The legacy `sitw_serve_decision_latency_us` quantile gauges
//! are kept for dashboard compatibility, derived from the same buckets.

use sitw_telemetry::Log2Histogram;

/// One declared Prometheus series family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesDecl {
    /// Family name (`sitw_serve_*`, snake_case).
    pub name: &'static str,
    /// Prometheus type: `counter`, `gauge`, or `histogram`.
    pub kind: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
}

/// Every series family this server exports, declared once. `render()`
/// sources its `# HELP`/`# TYPE` lines from here, the
/// `registry_matches_rendered_families` test asserts the exposition and
/// this table stay in lockstep, and `sitw-lint`'s `metrics-registry`
/// rule checks naming, typing, and that no series is used undeclared
/// or declared unused.
// sitw-lint: metrics-registry
pub const REGISTRY: &[SeriesDecl] = &[
    SeriesDecl {
        name: "sitw_serve_apps",
        kind: "gauge",
        help: "Applications with live policy state",
    },
    SeriesDecl {
        name: "sitw_serve_invocations_total",
        kind: "counter",
        help: "Accepted invocations",
    },
    SeriesDecl {
        name: "sitw_serve_cold_total",
        kind: "counter",
        help: "Cold verdicts",
    },
    SeriesDecl {
        name: "sitw_serve_warm_total",
        kind: "counter",
        help: "Warm verdicts",
    },
    SeriesDecl {
        name: "sitw_serve_prewarm_loads_total",
        kind: "counter",
        help: "Pre-warm loads inferred during gaps",
    },
    SeriesDecl {
        name: "sitw_serve_out_of_order_total",
        kind: "counter",
        help: "Rejected out-of-order invocations",
    },
    SeriesDecl {
        name: "sitw_serve_backups_total",
        kind: "counter",
        help: "Hourly histogram backups taken (production mode)",
    },
    SeriesDecl {
        name: "sitw_serve_prewarm_scheduled_total",
        kind: "counter",
        help: "Pre-warm events scheduled 90s early (production mode)",
    },
    SeriesDecl {
        name: "sitw_serve_decision_latency",
        kind: "histogram",
        help: "Request latency by pipeline stage in seconds (log2 buckets)",
    },
    SeriesDecl {
        name: "sitw_serve_decision_latency_us",
        kind: "gauge",
        help: "Decision latency percentiles (derived from the log2 histogram buckets)",
    },
    SeriesDecl {
        name: "sitw_serve_tenant_budget_mb",
        kind: "gauge",
        help: "Configured keep-alive memory budget (0 = unlimited)",
    },
    SeriesDecl {
        name: "sitw_serve_tenant_warm_mb",
        kind: "gauge",
        help: "Warm memory currently charged to the tenant",
    },
    SeriesDecl {
        name: "sitw_serve_tenant_warm_apps",
        kind: "gauge",
        help: "Warm containers currently charged to the tenant",
    },
    SeriesDecl {
        name: "sitw_serve_tenant_evictions_total",
        kind: "counter",
        help: "Budget evictions",
    },
    SeriesDecl {
        name: "sitw_serve_tenant_idle_mb_ms_total",
        kind: "counter",
        help: "Loaded-memory integral in MB*ms (the par.5.3 idle-memory metric)",
    },
    SeriesDecl {
        name: "sitw_serve_tenant_invocations_total",
        kind: "counter",
        help: "Accepted invocations per tenant",
    },
    SeriesDecl {
        name: "sitw_serve_tenant_cold_total",
        kind: "counter",
        help: "Cold verdicts per tenant (incl. eviction downgrades)",
    },
    SeriesDecl {
        name: "sitw_serve_frames_total",
        kind: "counter",
        help: "Complete SITW-BIN request frames served",
    },
    SeriesDecl {
        name: "sitw_serve_batched_decisions_total",
        kind: "counter",
        help: "Decisions delivered through batched binary frames",
    },
    SeriesDecl {
        name: "sitw_serve_proto_errors_total",
        kind: "counter",
        help: "Typed SITW-BIN protocol errors answered",
    },
    SeriesDecl {
        name: "sitw_serve_control_frames_total",
        kind: "counter",
        help: "SITW-BIN control frames served (reports and budget pushes)",
    },
    SeriesDecl {
        name: "sitw_serve_connections_live",
        kind: "gauge",
        help: "Connections currently open",
    },
    SeriesDecl {
        name: "sitw_serve_connections_accepted_total",
        kind: "counter",
        help: "Connections accepted since start",
    },
    SeriesDecl {
        name: "sitw_serve_connections_peak",
        kind: "gauge",
        help: "High-water mark of live connections",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_threads",
        kind: "gauge",
        help: "Reactor (event-loop) threads serving the connections",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_epoll_waits_total",
        kind: "counter",
        help: "epoll_wait calls (blocking and non-blocking)",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_wakeups_total",
        kind: "counter",
        help: "Eventfd waker fires observed",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_backpressure_pauses_total",
        kind: "counter",
        help: "Transitions into the read-paused backpressure state",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_backpressure_resumes_total",
        kind: "counter",
        help: "Transitions out of the read-paused backpressure state",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_queue_depth",
        kind: "gauge",
        help: "Inbox backlog drained at the most recent wave",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_queue_peak",
        kind: "gauge",
        help: "High-water mark of the drain-observed inbox backlog",
    },
    SeriesDecl {
        name: "sitw_serve_reactor_epoll_wait_seconds_total",
        kind: "counter",
        help: "Time spent blocked in epoll_wait",
    },
    SeriesDecl {
        name: "sitw_serve_shard_mailbox_depth",
        kind: "gauge",
        help: "Mailbox backlog drained at the most recent wave",
    },
    SeriesDecl {
        name: "sitw_serve_shard_mailbox_peak",
        kind: "gauge",
        help: "High-water mark of the drain-observed mailbox backlog",
    },
    SeriesDecl {
        name: "sitw_serve_repl_epoch",
        kind: "gauge",
        help: "Replication epoch of the last committed round (0 = no round served)",
    },
    SeriesDecl {
        name: "sitw_serve_repl_rounds_total",
        kind: "counter",
        help: "Replication pulls answered (including empty lone-commit rounds)",
    },
    SeriesDecl {
        name: "sitw_serve_repl_full_syncs_total",
        kind: "counter",
        help: "Pulls answered with a full state sync instead of a delta",
    },
    SeriesDecl {
        name: "sitw_serve_repl_apps_total",
        kind: "counter",
        help: "App records streamed to followers across all rounds",
    },
    SeriesDecl {
        name: "sitw_serve_repl_bytes_total",
        kind: "counter",
        help: "Replication document bytes streamed to followers",
    },
    SeriesDecl {
        name: "sitw_serve_repl_lag_ms",
        kind: "gauge",
        help: "Milliseconds since the last follower pull (0 until first pull)",
    },
    SeriesDecl {
        name: "sitw_serve_uptime_ms",
        kind: "gauge",
        help: "Time since server start",
    },
];

/// Writes the `# HELP`/`# TYPE` preamble for `name` from [`REGISTRY`].
/// Lookups are total by construction: `sitw-lint` and the registry
/// unit test both fail on a rendered family missing from the table.
fn family(out: &mut String, name: &str) {
    use std::fmt::Write as _;
    let decl = REGISTRY.iter().find(|d| d.name == name);
    debug_assert!(decl.is_some(), "family {name} missing from REGISTRY");
    if let Some(d) = decl {
        let _ = writeln!(out, "# HELP {} {}", d.name, d.help);
        let _ = writeln!(out, "# TYPE {} {}", d.name, d.kind);
    }
}

/// A latency histogram split by wire protocol (JSON/HTTP vs SITW-BIN).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtoHists {
    /// Samples from JSON/HTTP requests, nanoseconds.
    pub json: Log2Histogram,
    /// Samples from SITW-BIN frames, nanoseconds.
    pub bin: Log2Histogram,
}

impl ProtoHists {
    /// Adds every bucket of `other` into `self` (exact merge).
    pub fn merge(&mut self, other: &Self) {
        self.json.merge(&other.json);
        self.bin.merge(&other.bin);
    }

    /// Both protocols merged into one histogram.
    pub fn merged(&self) -> Log2Histogram {
        let mut h = self.json.clone();
        h.merge(&self.bin);
        h
    }
}

/// Introspection counters reported by one reactor (event-loop) thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Reactor index.
    pub reactor: usize,
    /// Read-stage latency (socket readable → bytes buffered), ns.
    pub read: ProtoHists,
    /// Decode-stage latency (bytes → parsed and dispatched), ns.
    pub decode: ProtoHists,
    /// Render-stage latency (reply complete → bytes serialized), ns.
    pub render: ProtoHists,
    /// Write-stage latency (bytes serialized → flushed to socket), ns.
    pub write: ProtoHists,
    /// Total `epoll_wait` calls (blocking and non-blocking).
    pub epoll_waits: u64,
    /// Nanoseconds spent inside blocking `epoll_wait` calls.
    pub epoll_wait_ns: u64,
    /// Eventfd waker fires observed.
    pub wakeups: u64,
    /// Events delivered per productive `epoll_wait` wake.
    pub events_per_wake: Log2Histogram,
    /// Bytes per completed coalesced socket write.
    pub write_bursts: Log2Histogram,
    /// Backpressure transitions into the read-paused state.
    pub bp_pauses: u64,
    /// Backpressure transitions out of the read-paused state.
    pub bp_resumes: u64,
    /// Inbox backlog drained at the most recent wave (drain-observed).
    pub queue_depth: u64,
    /// High-water mark of the drain-observed inbox backlog.
    pub queue_peak: u64,
}

/// One tenant's counters as seen by one shard (the default tenant's
/// numbers are per-shard slices; named tenants live whole on one shard).
/// `/metrics` aggregates these by tenant name — the lock-free per-shard
/// sub-ledgers summed into cluster-level accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Registry id.
    pub id: u16,
    /// Tenant name (metrics label).
    pub name: String,
    /// Configured keep-alive memory budget (0 = unlimited).
    pub budget_mb: u64,
    /// Warm memory currently charged, MB.
    pub warm_mb: u64,
    /// Warm containers currently charged.
    pub warm_apps: u64,
    /// Budget evictions so far.
    pub evictions: u64,
    /// Loaded-memory integral, MB·ms (the §5.3 idle-memory metric).
    pub idle_mb_ms: u64,
    /// Accepted invocations.
    pub invocations: u64,
    /// Cold verdicts (including eviction downgrades).
    pub cold: u64,
    /// Decision latency for this tenant's invocations, nanoseconds.
    pub decision_ns: Log2Histogram,
}

/// Counters and latency estimates reported by one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Applications with live state.
    pub apps: u64,
    /// Accepted invocations.
    pub invocations: u64,
    /// Cold verdicts.
    pub cold: u64,
    /// Warm verdicts.
    pub warm: u64,
    /// Pre-warm loads inferred during gaps.
    pub prewarm_loads: u64,
    /// Rejected out-of-order invocations.
    pub out_of_order: u64,
    /// Hourly histogram backups taken (production mode only; 0 for
    /// per-app policies).
    pub backups: u64,
    /// Pre-warm events scheduled 90 s early (production mode only).
    pub prewarm_scheduled: u64,
    /// `(quantile, estimate_in_µs)` pairs derived from the shard's
    /// decision-latency histogram (empty until the shard has observed
    /// at least one decision).
    pub latency_us: Vec<(f64, f64)>,
    /// Mailbox wait (dispatch → dequeue) on this shard, nanoseconds.
    pub queue_ns: ProtoHists,
    /// Policy decision latency on this shard, nanoseconds.
    pub decide_ns: ProtoHists,
    /// Mailbox backlog drained at the most recent wave (drain-observed).
    pub mailbox_depth: u64,
    /// High-water mark of the drain-observed mailbox backlog.
    pub mailbox_peak: u64,
    /// Per-tenant fleet counters on this shard, ordered by tenant id.
    pub tenants: Vec<TenantStats>,
}

/// Server-wide wire-protocol counters (connections are not sharded, so
/// these live next to the per-shard stats, unlabelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtoStats {
    /// Complete SITW-BIN request frames served.
    pub frames: u64,
    /// Decisions delivered through batched binary frames.
    pub batched_decisions: u64,
    /// Typed SITW-BIN protocol errors answered (malformed frames,
    /// oversized batches, bad versions).
    pub proto_errors: u64,
    /// SITW-BIN control frames served (usage reports and budget pushes
    /// from a cluster router's reconciler).
    pub control_frames: u64,
}

/// Connection-level gauges (server-wide; maintained by the acceptor and
/// the reactor pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnStats {
    /// Connections currently open (reactor slab entries plus any still
    /// in flight from the acceptor). Returns to 0 when every client
    /// disconnects — the leak-freedom invariant the churn tests assert.
    pub live: u64,
    /// Connections accepted since start.
    pub accepted: u64,
    /// High-water mark of `live`.
    pub peak: u64,
    /// Reactor threads serving the connections.
    pub reactor_threads: u64,
}

/// Replication-source counters (server-wide: the delta stream is one
/// logical follower, not sharded). All zero until a follower pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplStats {
    /// Epoch of the last committed round (0 = no round served yet).
    pub epoch: u64,
    /// Pulls answered, including empty lone-commit rounds.
    pub rounds: u64,
    /// Pulls answered with a full sync instead of a delta (first
    /// attach, or a follower presenting a stale epoch).
    pub full_syncs: u64,
    /// App records streamed across all rounds.
    pub apps_streamed: u64,
    /// Replication document bytes streamed.
    pub bytes_streamed: u64,
    /// Milliseconds since the last pull (0 until the first pull).
    pub lag_ms: u64,
}

/// A full `/metrics` scrape: one entry per shard, plus uptime.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Per-shard statistics, ordered by shard index.
    pub shards: Vec<ShardStats>,
    /// Per-reactor introspection, ordered by reactor index (empty when
    /// telemetry is disabled).
    pub reactors: Vec<ReactorStats>,
    /// Server-wide SITW-BIN protocol counters.
    pub proto: ProtoStats,
    /// Server-wide connection gauges.
    pub conns: ConnStats,
    /// Server-wide replication-source counters.
    pub repl: ReplStats,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

impl MetricsReport {
    /// Total accepted invocations across shards.
    pub fn invocations(&self) -> u64 {
        self.shards.iter().map(|s| s.invocations).sum()
    }

    /// Total cold verdicts across shards.
    pub fn cold(&self) -> u64 {
        self.shards.iter().map(|s| s.cold).sum()
    }

    /// Total apps with live state across shards.
    pub fn apps(&self) -> u64 {
        self.shards.iter().map(|s| s.apps).sum()
    }

    /// Per-tenant counters aggregated across shards, ordered by id:
    /// the cluster memory ledger as `/metrics` exposes it. The default
    /// tenant sums its per-shard sub-ledgers; named tenants are whole.
    pub fn tenants(&self) -> Vec<TenantStats> {
        let mut merged: Vec<TenantStats> = Vec::new();
        for shard in &self.shards {
            for t in &shard.tenants {
                match merged.iter_mut().find(|m| m.id == t.id) {
                    Some(m) => {
                        m.warm_mb += t.warm_mb;
                        m.warm_apps += t.warm_apps;
                        m.evictions += t.evictions;
                        m.idle_mb_ms = m.idle_mb_ms.saturating_add(t.idle_mb_ms);
                        m.invocations += t.invocations;
                        m.cold += t.cold;
                        m.decision_ns.merge(&t.decision_ns);
                    }
                    None => merged.push(t.clone()),
                }
            }
        }
        merged.sort_by_key(|t| t.id);
        merged
    }

    /// Per-stage latency histograms merged exactly across every
    /// recording thread: read/decode/render/write summed over reactors,
    /// queue/decide summed over shards. In pipeline order.
    ///
    /// This is the data `sitw_serve_decision_latency` exports; the
    /// telemetry integration test asserts its bucket counts equal the
    /// sum of the per-shard recordings.
    pub fn stage_hists(&self) -> [(&'static str, ProtoHists); 6] {
        let mut read = ProtoHists::default();
        let mut decode = ProtoHists::default();
        let mut render = ProtoHists::default();
        let mut write = ProtoHists::default();
        for r in &self.reactors {
            read.merge(&r.read);
            decode.merge(&r.decode);
            render.merge(&r.render);
            write.merge(&r.write);
        }
        let mut queue = ProtoHists::default();
        let mut decide = ProtoHists::default();
        for s in &self.shards {
            queue.merge(&s.queue_ns);
            decide.merge(&s.decide_ns);
        }
        [
            ("read", read),
            ("decode", decode),
            ("queue", queue),
            ("decide", decide),
            ("render", render),
            ("write", write),
        ]
    }

    /// Renders the Prometheus text format. Every family's
    /// `# HELP`/`# TYPE` preamble comes from [`REGISTRY`]; this
    /// function only decides layout and sample values.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        /// Name and per-shard value accessor of one metric.
        type MetricRow = (&'static str, fn(&ShardStats) -> u64);
        let mut out = String::with_capacity(1024);
        let counters: [MetricRow; 8] = [
            ("sitw_serve_apps", |s| s.apps),
            ("sitw_serve_invocations_total", |s| s.invocations),
            ("sitw_serve_cold_total", |s| s.cold),
            ("sitw_serve_warm_total", |s| s.warm),
            ("sitw_serve_prewarm_loads_total", |s| s.prewarm_loads),
            ("sitw_serve_out_of_order_total", |s| s.out_of_order),
            ("sitw_serve_backups_total", |s| s.backups),
            ("sitw_serve_prewarm_scheduled_total", |s| {
                s.prewarm_scheduled
            }),
        ];
        for (name, get) in counters {
            family(&mut out, name);
            for s in &self.shards {
                let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, get(s));
            }
        }
        let tenants = self.tenants();
        // The per-stage latency histogram: true Prometheus `histogram`
        // series with log2 bucket bounds in seconds, merged exactly
        // across recording threads. One series per stage and protocol,
        // plus per-tenant decide series.
        family(&mut out, "sitw_serve_decision_latency");
        for (stage, hists) in self.stage_hists() {
            for (proto, h) in [("json", &hists.json), ("bin", &hists.bin)] {
                write_hist_series(
                    &mut out,
                    "sitw_serve_decision_latency",
                    &format!("stage=\"{stage}\",proto=\"{proto}\""),
                    h,
                );
            }
        }
        for t in &tenants {
            write_hist_series(
                &mut out,
                "sitw_serve_decision_latency",
                &format!("stage=\"decide\",tenant=\"{}\"", t.name),
                &t.decision_ns,
            );
        }
        // Legacy quantile gauges, now derived from the histogram
        // buckets. Non-finite estimates are suppressed: NaN/inf are not
        // valid Prometheus sample values, and an underfilled estimator
        // must not export garbage.
        family(&mut out, "sitw_serve_decision_latency_us");
        for s in &self.shards {
            for (q, v) in &s.latency_us {
                if !v.is_finite() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "sitw_serve_decision_latency_us{{shard=\"{}\",quantile=\"{q}\"}} {v:.3}",
                    s.shard
                );
            }
        }
        // Per-tenant fleet metrics: the cluster memory ledger.
        type TenantRow = (&'static str, fn(&TenantStats) -> u64);
        let tenant_rows: [TenantRow; 7] = [
            ("sitw_serve_tenant_budget_mb", |t| t.budget_mb),
            ("sitw_serve_tenant_warm_mb", |t| t.warm_mb),
            ("sitw_serve_tenant_warm_apps", |t| t.warm_apps),
            ("sitw_serve_tenant_evictions_total", |t| t.evictions),
            ("sitw_serve_tenant_idle_mb_ms_total", |t| t.idle_mb_ms),
            ("sitw_serve_tenant_invocations_total", |t| t.invocations),
            ("sitw_serve_tenant_cold_total", |t| t.cold),
        ];
        for (name, get) in tenant_rows {
            family(&mut out, name);
            for t in &tenants {
                let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.name, get(t));
            }
        }
        let proto: [(&str, u64); 4] = [
            ("sitw_serve_frames_total", self.proto.frames),
            (
                "sitw_serve_batched_decisions_total",
                self.proto.batched_decisions,
            ),
            ("sitw_serve_proto_errors_total", self.proto.proto_errors),
            ("sitw_serve_control_frames_total", self.proto.control_frames),
        ];
        let conns: [(&str, u64); 4] = [
            ("sitw_serve_connections_live", self.conns.live),
            ("sitw_serve_connections_accepted_total", self.conns.accepted),
            ("sitw_serve_connections_peak", self.conns.peak),
            ("sitw_serve_reactor_threads", self.conns.reactor_threads),
        ];
        let repl: [(&str, u64); 6] = [
            ("sitw_serve_repl_epoch", self.repl.epoch),
            ("sitw_serve_repl_rounds_total", self.repl.rounds),
            ("sitw_serve_repl_full_syncs_total", self.repl.full_syncs),
            ("sitw_serve_repl_apps_total", self.repl.apps_streamed),
            ("sitw_serve_repl_bytes_total", self.repl.bytes_streamed),
            ("sitw_serve_repl_lag_ms", self.repl.lag_ms),
        ];
        for (name, value) in proto.into_iter().chain(conns).chain(repl) {
            family(&mut out, name);
            let _ = writeln!(out, "{name} {value}");
        }
        // Reactor introspection: event-loop behaviour per thread (the
        // families render with no samples when telemetry is off).
        type ReactorRow = (&'static str, fn(&ReactorStats) -> u64);
        let reactor_rows: [ReactorRow; 6] = [
            ("sitw_serve_reactor_epoll_waits_total", |r| r.epoll_waits),
            ("sitw_serve_reactor_wakeups_total", |r| r.wakeups),
            ("sitw_serve_reactor_backpressure_pauses_total", |r| {
                r.bp_pauses
            }),
            ("sitw_serve_reactor_backpressure_resumes_total", |r| {
                r.bp_resumes
            }),
            ("sitw_serve_reactor_queue_depth", |r| r.queue_depth),
            ("sitw_serve_reactor_queue_peak", |r| r.queue_peak),
        ];
        for (name, get) in reactor_rows {
            family(&mut out, name);
            for r in &self.reactors {
                let _ = writeln!(out, "{name}{{reactor=\"{}\"}} {}", r.reactor, get(r));
            }
        }
        family(&mut out, "sitw_serve_reactor_epoll_wait_seconds_total");
        for r in &self.reactors {
            let _ = writeln!(
                out,
                "sitw_serve_reactor_epoll_wait_seconds_total{{reactor=\"{}\"}} {:.6}",
                r.reactor,
                r.epoll_wait_ns as f64 / 1e9
            );
        }
        type ShardRow = (&'static str, fn(&ShardStats) -> u64);
        let mailbox_rows: [ShardRow; 2] = [
            ("sitw_serve_shard_mailbox_depth", |s| s.mailbox_depth),
            ("sitw_serve_shard_mailbox_peak", |s| s.mailbox_peak),
        ];
        for (name, get) in mailbox_rows {
            family(&mut out, name);
            for s in &self.shards {
                let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, get(s));
            }
        }
        family(&mut out, "sitw_serve_uptime_ms");
        let _ = writeln!(out, "sitw_serve_uptime_ms {}", self.uptime_ms);
        out
    }

    /// Renders the stage histograms as raw bucket vectors — the
    /// federation wire format `GET /debug/hist` serves.
    ///
    /// One line per series, whitespace-separated tokens:
    ///
    /// ```text
    /// stage <name> <proto> <sum_ns> <b0> <b1> ... <b63>
    /// tenant <name> <sum_ns> <b0> <b1> ... <b63>
    /// ```
    ///
    /// Raw buckets (not the `le`-bounded Prometheus projection) so a
    /// scraping router can reconstruct each [`Log2Histogram`] losslessly
    /// with [`Log2Histogram::from_raw`] and merge exactly: federated
    /// bucket counts equal the sum of node counts by construction.
    pub fn render_raw(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut line = |prefix: String, h: &Log2Histogram| {
            out.push_str(&prefix);
            let _ = write!(out, " {}", h.sum());
            for b in h.buckets() {
                let _ = write!(out, " {b}");
            }
            out.push('\n');
        };
        for (stage, hists) in self.stage_hists() {
            for (proto, h) in [("json", &hists.json), ("bin", &hists.bin)] {
                line(format!("stage {stage} {proto}"), h);
            }
        }
        for t in &self.tenants() {
            line(format!("tenant {}", t.name), &t.decision_ns);
        }
        out
    }
}

/// Log2 buckets exported as `le` bounds, as bucket indices into the
/// nanosecond histogram: 255 ns (index 8) up to ~68.7 s (index 36).
/// Samples below the first bound are cumulative in it; samples above
/// the last land only in `+Inf`.
const LE_LO: usize = 8;
const LE_HI: usize = 36;

/// Writes one `histogram` series (`_bucket`/`_sum`/`_count`) for a
/// nanosecond [`Log2Histogram`], bounds converted to seconds.
///
/// Public so the cluster router renders its federated
/// (`/metrics/fleet`) histograms with byte-identical layout.
pub fn write_hist_series(out: &mut String, name: &str, labels: &str, h: &Log2Histogram) {
    use std::fmt::Write as _;
    let buckets = h.buckets();
    let mut cum: u64 = buckets[..LE_LO].iter().sum();
    for (i, &count) in buckets.iter().enumerate().take(LE_HI + 1).skip(LE_LO) {
        cum += count;
        let le = Log2Histogram::bucket_upper(i) as f64 / 1e9;
        let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum() as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(shard: usize) -> ShardStats {
        let mut decide_ns = ProtoHists::default();
        decide_ns.json.record(1_500);
        decide_ns.bin.record(9_000);
        let mut queue_ns = ProtoHists::default();
        queue_ns.json.record(700);
        let mut tenant_decide = Log2Histogram::new();
        tenant_decide.record(1_500);
        ShardStats {
            shard,
            apps: 3,
            invocations: 100,
            cold: 20,
            warm: 80,
            prewarm_loads: 5,
            out_of_order: 1,
            backups: 7,
            prewarm_scheduled: 11,
            latency_us: vec![(0.5, 1.5), (0.95, 3.0), (0.99, 9.0)],
            queue_ns,
            decide_ns,
            mailbox_depth: 1,
            mailbox_peak: 6,
            tenants: vec![
                TenantStats {
                    id: 0,
                    name: "default".into(),
                    budget_mb: 0,
                    warm_mb: 100,
                    warm_apps: 2,
                    evictions: 0,
                    idle_mb_ms: 1_000,
                    invocations: 90,
                    cold: 15,
                    decision_ns: tenant_decide,
                },
                TenantStats {
                    id: 1,
                    name: "acme".into(),
                    budget_mb: 512,
                    warm_mb: 300,
                    warm_apps: 1,
                    evictions: 4,
                    idle_mb_ms: 2_000,
                    invocations: 10,
                    cold: 5,
                    decision_ns: Log2Histogram::new(),
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_shards() {
        let r = MetricsReport {
            shards: vec![stats(0), stats(1)],
            reactors: vec![],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            repl: ReplStats::default(),
            uptime_ms: 42,
        };
        assert_eq!(r.invocations(), 200);
        assert_eq!(r.cold(), 40);
        assert_eq!(r.apps(), 6);
    }

    #[test]
    fn tenant_aggregation_sums_sub_ledgers() {
        let r = MetricsReport {
            shards: vec![stats(0), stats(1)],
            reactors: vec![],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            repl: ReplStats::default(),
            uptime_ms: 42,
        };
        let tenants = r.tenants();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].name, "default");
        assert_eq!(tenants[0].warm_mb, 200, "per-shard sub-ledgers sum");
        assert_eq!(tenants[0].idle_mb_ms, 2_000);
        assert_eq!(tenants[1].evictions, 8);
        assert_eq!(tenants[1].budget_mb, 512, "config gauge, not summed");
    }

    #[test]
    fn renders_prometheus_text() {
        let mut reactor = ReactorStats {
            reactor: 0,
            epoll_waits: 500,
            epoll_wait_ns: 2_000_000_000,
            wakeups: 40,
            bp_pauses: 2,
            bp_resumes: 2,
            queue_depth: 0,
            queue_peak: 9,
            ..ReactorStats::default()
        };
        reactor.read.json.record(300);
        reactor.write.bin.record(12_000);
        let r = MetricsReport {
            shards: vec![stats(0), stats(1)],
            reactors: vec![reactor],
            proto: ProtoStats {
                frames: 13,
                batched_decisions: 1664,
                proto_errors: 2,
                control_frames: 5,
            },
            conns: ConnStats {
                live: 3,
                accepted: 1200,
                peak: 257,
                reactor_threads: 2,
            },
            repl: ReplStats::default(),
            uptime_ms: 42,
        };
        let text = r.render();
        assert!(text.contains("# TYPE sitw_serve_invocations_total counter"));
        assert!(text.contains("sitw_serve_invocations_total{shard=\"1\"} 100"));
        assert!(text.contains("sitw_serve_backups_total{shard=\"0\"} 7"));
        assert!(text.contains("sitw_serve_prewarm_scheduled_total{shard=\"1\"} 11"));
        assert!(text.contains("sitw_serve_decision_latency_us{shard=\"0\",quantile=\"0.99\"}"));
        assert!(text.contains("# TYPE sitw_serve_frames_total counter"));
        assert!(text.contains("sitw_serve_frames_total 13"));
        assert!(text.contains("sitw_serve_batched_decisions_total 1664"));
        assert!(text.contains("sitw_serve_proto_errors_total 2"));
        assert!(text.contains("sitw_serve_control_frames_total 5"));
        assert!(text.contains("# TYPE sitw_serve_connections_live gauge"));
        assert!(text.contains("sitw_serve_connections_live 3"));
        assert!(text.contains("# TYPE sitw_serve_connections_accepted_total counter"));
        assert!(text.contains("sitw_serve_connections_accepted_total 1200"));
        assert!(text.contains("sitw_serve_connections_peak 257"));
        assert!(text.contains("sitw_serve_reactor_threads 2"));
        assert!(text.contains("sitw_serve_uptime_ms 42"));
        assert!(text.contains("sitw_serve_tenant_warm_mb{tenant=\"default\"} 200"));
        assert!(text.contains("sitw_serve_tenant_warm_mb{tenant=\"acme\"} 600"));
        assert!(text.contains("sitw_serve_tenant_evictions_total{tenant=\"acme\"} 8"));
        assert!(text.contains("sitw_serve_tenant_budget_mb{tenant=\"acme\"} 512"));
        assert!(text.contains("sitw_serve_tenant_idle_mb_ms_total{tenant=\"default\"} 2000"));
        // The true histogram family: per stage and protocol, plus
        // per-tenant decide series.
        assert!(text.contains("# TYPE sitw_serve_decision_latency histogram"));
        assert!(text.contains(
            "sitw_serve_decision_latency_bucket{stage=\"decide\",proto=\"json\",le=\"+Inf\"} 2"
        ));
        assert!(
            text.contains("sitw_serve_decision_latency_count{stage=\"decide\",proto=\"bin\"} 2")
        );
        assert!(text
            .contains("sitw_serve_decision_latency_count{stage=\"decide\",tenant=\"default\"} 2"));
        assert!(text.contains("sitw_serve_decision_latency_count{stage=\"read\",proto=\"json\"} 1"));
        assert!(text.contains("sitw_serve_decision_latency_count{stage=\"write\",proto=\"bin\"} 1"));
        // Reactor and shard introspection.
        assert!(text.contains("sitw_serve_reactor_epoll_waits_total{reactor=\"0\"} 500"));
        assert!(
            text.contains("sitw_serve_reactor_epoll_wait_seconds_total{reactor=\"0\"} 2.000000")
        );
        assert!(text.contains("sitw_serve_reactor_wakeups_total{reactor=\"0\"} 40"));
        assert!(text.contains("sitw_serve_reactor_backpressure_pauses_total{reactor=\"0\"} 2"));
        assert!(text.contains("sitw_serve_reactor_queue_peak{reactor=\"0\"} 9"));
        assert!(text.contains("sitw_serve_shard_mailbox_peak{shard=\"1\"} 6"));
        assert!(text.contains("sitw_serve_shard_mailbox_depth{shard=\"0\"} 1"));
    }

    /// Regression (this PR's bugfix satellite): latency quantile gauges
    /// from an empty or underfilled estimator used to leak `NaN`/`inf`
    /// sample values — invalid Prometheus exposition. Non-finite
    /// estimates must be suppressed, finite ones kept.
    #[test]
    fn non_finite_latency_quantiles_are_suppressed() {
        let mut s = stats(0);
        s.latency_us = vec![(0.5, f64::NAN), (0.95, f64::INFINITY), (0.99, 9.0)];
        let r = MetricsReport {
            shards: vec![s],
            reactors: vec![],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            repl: ReplStats::default(),
            uptime_ms: 0,
        };
        let text = r.render();
        // Every sample value in the whole exposition must parse finite
        // (HELP text may legitimately contain words like "inferred").
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let val = line.rsplit(' ').next().expect("sample line has a value");
            let v: f64 = val
                .parse()
                .unwrap_or_else(|_| panic!("unparsable sample '{val}' in line '{line}'"));
            assert!(v.is_finite(), "non-finite sample leaked: {line}");
        }
        assert!(
            text.contains("sitw_serve_decision_latency_us{shard=\"0\",quantile=\"0.99\"} 9.000")
        );
    }

    /// Shard-merged bucket counts are exactly the sum of per-shard
    /// recordings (the exactness the log2 histograms exist for).
    #[test]
    fn stage_hists_merge_exactly_across_shards() {
        let mut a = stats(0);
        let mut b = stats(1);
        a.decide_ns.json.record(77);
        b.decide_ns.json.record(1_000_000);
        b.decide_ns.bin.record(3);
        let mut expect = a.decide_ns.clone();
        expect.merge(&b.decide_ns);
        let r = MetricsReport {
            shards: vec![a, b],
            reactors: vec![],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            repl: ReplStats::default(),
            uptime_ms: 0,
        };
        let stages = r.stage_hists();
        let (name, decide) = &stages[3];
        assert_eq!(*name, "decide");
        assert_eq!(decide, &expect);
    }

    /// The declarative [`REGISTRY`] and the rendered exposition are in
    /// exact lockstep: every registered family renders (with the
    /// registered kind and help), every rendered family is registered,
    /// and no name is registered twice. Together with `sitw-lint`'s
    /// static `metrics-registry` rule this makes the registry the
    /// single source of truth.
    #[test]
    fn registry_matches_rendered_families() {
        let r = MetricsReport {
            shards: vec![stats(0)],
            reactors: vec![ReactorStats::default()],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            repl: ReplStats::default(),
            uptime_ms: 1,
        };
        let text = r.render();
        let mut rendered: Vec<(&str, &str)> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.splitn(2, ' ');
                rendered.push((it.next().unwrap(), it.next().unwrap()));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for d in REGISTRY {
            assert!(seen.insert(d.name), "duplicate registry entry: {}", d.name);
            assert!(
                rendered.contains(&(d.name, d.kind)),
                "registered family not rendered (or kind mismatch): {} {}",
                d.name,
                d.kind
            );
            assert!(
                text.contains(&format!("# HELP {} {}", d.name, d.help)),
                "help text drifted for {}",
                d.name
            );
        }
        assert_eq!(
            rendered.len(),
            REGISTRY.len(),
            "rendered families not in the registry: {:?}",
            rendered
                .iter()
                .filter(|(n, _)| !seen.contains(n))
                .collect::<Vec<_>>()
        );
    }

    /// Every exported sample belongs to a family announced with
    /// `# HELP` and `# TYPE` lines (the exposition-audit satellite).
    #[test]
    fn every_series_has_help_and_type() {
        let r = MetricsReport {
            shards: vec![stats(0), stats(1)],
            reactors: vec![ReactorStats {
                reactor: 0,
                ..ReactorStats::default()
            }],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            repl: ReplStats::default(),
            uptime_ms: 1,
        };
        let text = r.render();
        let mut typed = std::collections::HashSet::new();
        let mut helped = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.insert(rest.split(' ').next().unwrap().to_owned());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_owned());
            } else if !line.is_empty() {
                let name = line.split(['{', ' ']).next().unwrap();
                // Histogram samples use the family name plus a
                // _bucket/_sum/_count suffix.
                let family = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|f| typed.contains(*f))
                    .unwrap_or(name);
                assert!(typed.contains(family), "sample without # TYPE: {line}");
                assert!(helped.contains(family), "sample without # HELP: {line}");
            }
        }
    }
}
