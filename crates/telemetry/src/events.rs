//! Bounded lifecycle event ring: the "why" channel next to the flight
//! recorder's "where".
//!
//! Latency spans say where time went; lifecycle events say what the
//! policy *did* — an app cold-started, a budget eviction fired, the
//! router throttled a tenant, a tenant migrated, the ring epoch moved.
//! Events are rare relative to decisions (thousands of invocations per
//! eviction), so the ring is small, overwrites oldest-first, and is
//! scraped non-destructively by `/debug/events` on both node and
//! router.
//!
//! Timestamps are *domain* time: nodes stamp events with the workload
//! (trace) timestamp of the invocation that caused them — zero extra
//! clock reads on the hot path, and deterministic under replay — while
//! the router stamps wall milliseconds since router start (its events
//! are control-plane, not workload-driven).

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An invocation found its app unloaded and paid a cold start.
    ColdStart,
    /// The tenant ledger evicted an app to fit its memory budget.
    Eviction,
    /// Admission control rejected an invocation (router QoS).
    Throttle,
    /// A tenant moved between nodes (router) or was taken/restored
    /// (node side of the same move).
    Migration,
    /// The cluster ring epoch advanced (node drop or migration).
    RingEpoch,
    /// Health probes declared a node unreachable (router).
    NodeDown,
    /// A failover was executed: a standby replaced a dead node in the
    /// ring (router).
    Failover,
    /// A warm standby promoted itself to a serving primary (node).
    Promotion,
    /// A replication full sync was streamed to a follower (primary
    /// side); steady-state delta rounds are too frequent to ring.
    ReplSync,
}

impl EventKind {
    /// Lowercase stable name (used in `/debug/events` output).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ColdStart => "cold-start",
            EventKind::Eviction => "eviction",
            EventKind::Throttle => "throttle",
            EventKind::Migration => "migration",
            EventKind::RingEpoch => "ring-epoch",
            EventKind::NodeDown => "node-down",
            EventKind::Failover => "failover",
            EventKind::Promotion => "promotion",
            EventKind::ReplSync => "repl-sync",
        }
    }
}

/// One lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Domain timestamp in milliseconds (see the module docs).
    pub ts_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// Tenant name (empty when not tenant-scoped).
    pub tenant: String,
    /// App name (empty when not app-scoped).
    pub app: String,
    /// Free-form context, e.g. `"footprint_mb=128"` or `"epoch=3"`.
    pub detail: String,
}

/// Fixed-capacity ring of [`LifecycleEvent`]s, overwriting oldest.
///
/// Single-writer per push site (pushes go through a mutex owned by the
/// recording thread's context); scrapers snapshot via
/// [`EventRing::events`] without consuming.
///
/// # Examples
///
/// ```
/// use sitw_telemetry::{EventKind, EventRing, LifecycleEvent};
///
/// let mut ring = EventRing::new(2);
/// for i in 0..3u64 {
///     ring.push(LifecycleEvent {
///         ts_ms: i,
///         kind: EventKind::ColdStart,
///         tenant: String::new(),
///         app: format!("app-{i}"),
///         detail: String::new(),
///     });
/// }
/// let kept: Vec<u64> = ring.events().map(|e| e.ts_ms).collect();
/// assert_eq!(kept, vec![1, 2]); // event 0 was overwritten
/// ```
#[derive(Debug, Clone)]
pub struct EventRing {
    ring: Vec<LifecycleEvent>,
    capacity: usize,
    head: usize,
    full: bool,
    /// Total events ever pushed (including overwritten ones), so a
    /// scraper can tell how much history the ring dropped.
    pushed: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        Self {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            full: false,
            pushed: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        if self.full {
            self.capacity
        } else {
            self.head
        }
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed (≥ [`EventRing::len`]).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Records one event, overwriting the oldest when full.
    pub fn push(&mut self, ev: LifecycleEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
        }
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
            self.full = true;
        }
        self.pushed += 1;
    }

    /// The held events, oldest first (non-destructive).
    pub fn events(&self) -> impl Iterator<Item = &LifecycleEvent> {
        let split = if self.full { self.head } else { 0 };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ms: u64) -> LifecycleEvent {
        LifecycleEvent {
            ts_ms,
            kind: EventKind::Eviction,
            tenant: "t0".into(),
            app: format!("app-{ts_ms}"),
            detail: String::new(),
        }
    }

    #[test]
    fn wraps_oldest_first_and_counts_pushes() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.pushed(), 5);
        let ts: Vec<u64> = ring.events().map(|e| e.ts_ms).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let mut ring = EventRing::new(4);
        ring.push(ev(1));
        ring.push(ev(2));
        let first: Vec<u64> = ring.events().map(|e| e.ts_ms).collect();
        let second: Vec<u64> = ring.events().map(|e| e.ts_ms).collect();
        assert_eq!(first, second);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn kind_names_are_stable() {
        let all = [
            EventKind::ColdStart,
            EventKind::Eviction,
            EventKind::Throttle,
            EventKind::Migration,
            EventKind::RingEpoch,
            EventKind::NodeDown,
            EventKind::Failover,
            EventKind::Promotion,
            EventKind::ReplSync,
        ];
        let names: Vec<&str> = all.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "cold-start",
                "eviction",
                "throttle",
                "migration",
                "ring-epoch",
                "node-down",
                "failover",
                "promotion",
                "repl-sync"
            ]
        );
    }
}
