//! End-to-end tests of the `sitw-lint` binary: exit codes and output
//! are the CI contract (0 = clean, 1 = findings, 2 = usage error).

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sitw-lint"))
        .args(args)
        .output()
        .expect("sitw-lint binary runs")
}

fn fixture_root(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn clean_fixture_exits_zero() {
    let out = run(&["--root", &fixture_root("clean"), "--no-model-check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("0 findings"), "stdout: {stdout}");
}

#[test]
fn every_seeded_fixture_exits_nonzero_with_its_diagnostic() {
    for (name, needle) in [
        ("unsafe_confinement", "error[unsafe-confinement]"),
        ("hot_path_alloc", "error[hot-path-alloc]"),
        ("panic_freedom", "error[panic-freedom]"),
        ("clock_discipline", "error[clock-discipline]"),
        ("metrics_registry", "error[metrics-registry]"),
    ] {
        let out = run(&["--root", &fixture_root(name), "--no-model-check"]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(out.status.code(), Some(1), "{name}: stdout: {stdout}");
        assert!(stdout.contains(needle), "{name}: stdout: {stdout}");
    }
}

#[test]
fn default_root_is_the_workspace_and_it_passes_with_models() {
    let out = run(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(
        stdout.contains("model-check: waker arm/recheck protocol verified"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("model-check: slab generational-token routing verified"),
        "stdout: {stdout}"
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_root_directory_is_an_io_error() {
    let out = run(&["--root", "/nonexistent/sitw-lint-test", "--no-model-check"]);
    assert_eq!(out.status.code(), Some(2));
}
