//! Serving throughput: decisions per second through the full HTTP path
//! (loopback) across shard counts, measured by the open-loop load
//! generator. The ISSUE-1 acceptance floor is 50k decisions/sec on a
//! 4-shard daemon in release mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sitw_core::{HybridConfig, ProductionConfig};
use sitw_serve::{run_loadgen, LoadGenConfig, ServeConfig, Server};
use sitw_sim::PolicySpec;
use sitw_trace::DAY_MS;

const EVENTS: usize = 20_000;

fn loadgen_config() -> LoadGenConfig {
    LoadGenConfig {
        apps: 300,
        seed: 42,
        horizon_ms: DAY_MS,
        cap_per_day: 1_000.0,
        speedup: f64::INFINITY,
        connections: 2,
        window: 128,
        max_events: EVENTS,
    }
}

fn bench_decisions_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);
    let run_once = |shards: usize, policy: PolicySpec| {
        // A fresh server per iteration: policy state is cumulative and
        // timestamps must stay monotone.
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards,
            policy,
            ..ServeConfig::default()
        })
        .expect("server start");
        let report = run_loadgen(server.addr(), &loadgen_config()).expect("loadgen");
        assert_eq!(report.ok, EVENTS as u64, "lost responses");
        server.shutdown().expect("shutdown");
        report.throughput
    };
    for shards in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| run_once(shards, PolicySpec::Hybrid(HybridConfig::default())))
        });
    }
    // The §6 production-manager mode on the 4-shard shape, so its
    // decision path (daily rotation + weighted aggregation per invoke)
    // is tracked next to the hybrid baseline.
    group.bench_function(BenchmarkId::new("production", 4usize), |b| {
        b.iter(|| run_once(4, PolicySpec::Production(ProductionConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_decisions_per_sec);
criterion_main!(benches);
