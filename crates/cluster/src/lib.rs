//! Cluster mode for the SITW serving fleet.
//!
//! A cluster is N independent `sitw-serve` nodes behind one thin
//! `sitw-router` daemon. The router owns exactly the state a single node
//! cannot: *placement* (which node serves which tenant), *admission*
//! (cluster-wide QoS rate limits), and *budget reconciliation* (keeping
//! per-tenant memory budgets meaningful fleet-wide). Everything else —
//! policies, ledgers, histograms — stays on the nodes, so a cluster of
//! one node behaves bit-for-bit like a bare node.
//!
//! The pieces:
//!
//! * [`ClusterRing`] — epoch-versioned tenant→node placement: named
//!   tenants land whole on one node by name hash, the default tenant
//!   spreads by app hash, and migrations pin overrides. Every change
//!   advances the epoch.
//! * [`Router`] — the routing daemon. Speaks both wire protocols on one
//!   port (JSON over HTTP and SITW-BIN frames), splits batched frames
//!   across nodes and reassembles replies in request order, answers
//!   admission rejections itself (HTTP 429 / the `Throttled` verdict
//!   bit), and surfaces a dead node as the typed
//!   [`sitw_serve::wire::BinErrorCode::Unavailable`] error (HTTP 503)
//!   rather than a hung or reset connection — every data-path upstream
//!   exchange is bounded by a configurable deadline. With `--failover
//!   supervised|auto` a health prober raises drop/promote proposals for
//!   nodes failing consecutive probes; confirming one promotes the
//!   slot's warm standby (a `sitw-serve --follow` replica) in place and
//!   bumps the ring epoch, or drops the node when no standby exists.
//! * [`reconcile`] — the epoch-based budget reconciler: polls each
//!   node's per-tenant ledger integrals over SITW-BIN control frames,
//!   aggregates them cluster-wide, and pushes each tenant's budget to
//!   its current ring owner.
//! * [`ClusterSim`] — the offline model: QoS admission composed with
//!   [`sitw_fleet::FleetSim`] over the union registry. Because
//!   migration moves tenant state bit-for-bit, placement is invisible
//!   to verdicts, and one `FleetSim` models the whole cluster.
//! * [`federate`] + [`telem`] — the fleet observability plane: the
//!   router stamps sampled trace ids onto forwarded work and records
//!   its own hop stages, `GET /debug/trace` merges router and node
//!   spans into one end-to-end timeline, and `GET /metrics/fleet`
//!   merges the nodes' raw log2 histograms bucket-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod federate;
pub mod metrics;
pub mod reconcile;
pub mod ring;
pub mod router;
pub mod sim;
pub mod telem;

pub use federate::{parse_hist_body, parse_trace_spans, FleetHists, NodeHists, NodeSpan};
pub use metrics::{render_fleet, RouterMetrics};
pub use reconcile::{aggregate_usage, control_roundtrip, reconcile_shares, NodeReport};
pub use ring::ClusterRing;
pub use router::{FailoverMode, FailoverProposal, Router, RouterConfig, RouterTenant};
pub use sim::{ClusterOutcome, ClusterSim};
pub use telem::{RouterTelem, ROUTER_TRACE_ORIGIN};
