//! The golden fixture: every rule satisfied, including one explicitly
//! allowed clock read and a zero-allocation hot path.

#![forbid(unsafe_code)]

use std::time::Instant;

/// The wall-clock epoch for this toy crate.
pub fn epoch() -> Instant {
    // sitw-lint: allow(clock-discipline)
    Instant::now()
}

// sitw-lint: hot-path
pub fn push_frame(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
