//! Minimal HTTP/1.1 plumbing — persistent connections, pipelining,
//! `Content-Length` bodies, no chunked encoding, no TLS — plus the
//! protocol sniff that lets SITW-BIN frames share the same port.
//!
//! [`ConnBuf`] owns the read side of a connection with an explicit
//! buffer, so a read timeout mid-request loses nothing: partial bytes
//! stay buffered and parsing resumes on the next call. That property is
//! what lets connection threads poll a shutdown flag between reads, and
//! it is exactly what reassembles SITW-BIN frames split across TCP
//! segment boundaries: [`ConnBuf::read_event`] peeks the first
//! unconsumed byte — [`crate::wire::BIN_MAGIC`] means a binary frame,
//! anything else (in practice an ASCII method letter) means HTTP — and
//! keeps filling until one complete message is buffered.

use std::io::{self, Read};
use std::net::TcpStream;

use crate::wire::{self, BinErrorCode, BinInvoke, ControlRequest, FrameDecodeInto};

/// Maximum accepted header block (request line + headers).
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted body. A `Content-Length` beyond this is answered
/// with `413 Payload Too Large` *before* any body buffering happens, so
/// one request header can never drive a large allocation.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request, borrowing nothing (bodies are small).
///
/// On the reactor's hot path a `Request` is a per-connection scratch
/// that [`ConnBuf::read_event_into`] refills in place — the `String`s
/// and the body `Vec` keep their capacity across requests, so a
/// steady-state connection parses without allocating.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, e.g. `/invoke`.
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// The client asked to close the connection after this exchange.
    pub close: bool,
    /// Propagated trace id from an `X-Sitw-Trace` header (hex,
    /// optionally `0x`-prefixed), when the request carried one.
    pub trace: Option<u64>,
}

/// Outcome of one [`ConnBuf::read_request`] call.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed.
    Request(Request),
    /// The peer closed the connection cleanly (between requests).
    Eof,
    /// The read timed out with no complete request buffered; partial
    /// bytes remain buffered. Callers poll their shutdown flag and retry.
    Timeout,
    /// The request declared a `Content-Length` beyond
    /// [`MAX_BODY_BYTES`]. Nothing was allocated or consumed; the caller
    /// should answer `413 Payload Too Large` and close the connection
    /// (the unread body makes resynchronization impossible).
    BodyTooLarge {
        /// The declared content length.
        declared: u64,
    },
}

/// One parsed inbound message on a sniffed connection: an HTTP request
/// or a SITW-BIN frame, plus the stream conditions the caller handles.
#[derive(Debug)]
pub enum EventOutcome {
    /// A complete HTTP request.
    Request(Request),
    /// A complete SITW-BIN request frame.
    Frame {
        /// The batched invocations, in wire order.
        records: Vec<BinInvoke>,
        /// The frame's protocol version (replies must echo it).
        version: u8,
        /// The propagated trace id, when the frame carried one.
        trace: Option<u64>,
    },
    /// A complete SITW-BIN request frame, surfaced verbatim instead of
    /// decoded (see [`ConnBuf::set_raw_request_frames`]); the bytes are
    /// in [`ConnBuf::raw_frame`]. Only the envelope was validated — the
    /// payload is whatever the peer sent.
    RawFrame {
        /// The header's record count (unverified against the payload).
        count: u32,
    },
    /// A complete SITW-BIN cluster control frame.
    Ctrl(ControlRequest),
    /// A SITW-BIN protocol error. When `recoverable`, the offending
    /// frame has been skipped (its envelope was intact) and the
    /// connection stays usable; otherwise the caller must answer the
    /// error frame and close.
    FrameError {
        /// The typed error to send back.
        code: BinErrorCode,
        /// Human-readable detail for the error frame.
        detail: String,
        /// The connection can continue after the error frame.
        recoverable: bool,
    },
    /// The peer closed the connection cleanly (between messages).
    Eof,
    /// The read timed out with no complete message buffered; partial
    /// bytes remain buffered. Callers poll their shutdown flag and retry.
    Timeout,
    /// An HTTP request declared a `Content-Length` beyond
    /// [`MAX_BODY_BYTES`] (see [`ReadOutcome::BodyTooLarge`]).
    BodyTooLarge {
        /// The declared content length.
        declared: u64,
    },
}

/// Outcome of one [`ConnBuf::read_event_into`] call. Unlike
/// [`EventOutcome`] this carries no payload: request fields land in the
/// caller's reusable [`Request`] and frame records in the caller's
/// reusable `Vec<BinInvoke>`, so the per-message parse allocates nothing
/// once those buffers are warm.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete HTTP request was written into the caller's `Request`.
    Request,
    /// A complete SITW-BIN request frame was written into the caller's
    /// record buffer.
    Frame {
        /// The frame's protocol version (replies must echo it).
        version: u8,
        /// The propagated trace id, when the frame carried one.
        trace: Option<u64>,
    },
    /// A complete SITW-BIN request frame was captured verbatim into
    /// [`ConnBuf::raw_frame`] (see [`EventOutcome::RawFrame`]).
    RawFrame {
        /// The header's record count (unverified against the payload).
        count: u32,
    },
    /// A complete SITW-BIN cluster control frame (never touches the
    /// caller's record buffer).
    Ctrl(ControlRequest),
    /// A SITW-BIN protocol error (see [`EventOutcome::FrameError`]).
    FrameError {
        /// The typed error to send back.
        code: BinErrorCode,
        /// Human-readable detail for the error frame.
        detail: String,
        /// The connection can continue after the error frame.
        recoverable: bool,
    },
    /// The peer closed the connection cleanly (between messages).
    Eof,
    /// No complete message is buffered and the socket has nothing more
    /// right now (read timeout on blocking sockets, `WouldBlock` on
    /// non-blocking ones); partial bytes stay buffered and parsing
    /// resumes on the next call.
    Timeout,
    /// An HTTP request declared a `Content-Length` beyond
    /// [`MAX_BODY_BYTES`] (see [`ReadOutcome::BodyTooLarge`]).
    BodyTooLarge {
        /// The declared content length.
        declared: u64,
    },
}

/// Progress of a lame-duck drain (see [`ConnBuf::drain_nonblocking`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// The peer closed; the connection can now be dropped with a clean
    /// FIN exchange.
    Eof,
    /// The socket has no more bytes right now; keep draining on the next
    /// readiness event.
    Pending,
    /// The discard budget is spent; give up on politeness and drop.
    Overflow,
}

/// Buffered reader over a [`TcpStream`] that survives read timeouts.
pub struct ConnBuf {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    start: usize,
    /// Unread bytes of a malformed-but-delimited SITW-BIN frame still to
    /// discard before the next message boundary.
    skip_remaining: usize,
    /// Request-frame versions surfaced verbatim instead of decoded
    /// (index 0 = v1, 1 = v2); both off by default.
    raw_req: [bool; 2],
    /// The last verbatim frame (header + payload), valid after a
    /// `RawFrame` event until the next read.
    raw_frame: Vec<u8>,
}

impl ConnBuf {
    /// Wraps a stream (whose read timeout the caller configures). The
    /// buffer starts empty and unallocated — an accepted connection that
    /// never sends costs no heap at all.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            start: 0,
            skip_remaining: 0,
            raw_req: [false; 2],
            raw_frame: Vec::new(),
        }
    }

    /// Surfaces SITW-BIN *request* frames of the selected versions as
    /// verbatim bytes (`RawFrame` events reading [`ConnBuf::raw_frame`])
    /// instead of decoding their records — the relay fast path for a
    /// proxy that forwards whole frames unchanged. Only the envelope is
    /// validated; payload errors become whatever the next hop answers.
    /// Control frames, unselected versions, and malformed envelopes
    /// still take the decoded paths.
    pub fn set_raw_request_frames(&mut self, v1: bool, v2: bool) {
        self.raw_req = [v1, v2];
    }

    /// The bytes of the last [`EventOutcome::RawFrame`] /
    /// [`ReadEvent::RawFrame`], header included.
    pub fn raw_frame(&self) -> &[u8] {
        &self.raw_frame
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True while a malformed-but-delimited frame is still being
    /// discarded. The connection is mid-message for timeout purposes —
    /// the buffer may be empty, but the peer owes us skip bytes.
    pub fn skipping(&self) -> bool {
        self.skip_remaining > 0
    }

    /// The underlying stream. The reactor writes responses through it
    /// (`Write` is implemented for `&TcpStream`), so a non-blocking
    /// connection needs no `try_clone`.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads more bytes from the socket into the buffer.
    ///
    /// Returns `Ok(0)` on EOF, `Err` with `WouldBlock`/`TimedOut` on a
    /// read timeout.
    fn fill(&mut self) -> io::Result<usize> {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
            // A burst (one big frame) must not pin its buffer for the
            // rest of a long-lived keep-alive connection: thousands of
            // mostly idle sockets only stay cheap if quiescent buffers
            // return to a small footprint.
            if self.buf.capacity() > 256 * 1024 {
                self.buf.shrink_to(16 * 1024);
            }
        } else if self.start > 4096 && self.start * 2 > self.buf.len() {
            // Compact once the consumed prefix dominates.
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Non-blocking flavour of [`ConnBuf::drain_for_close`] for the
    /// reactor's lame-duck state: discards everything buffered plus
    /// whatever the socket can deliver right now, decrementing `budget`.
    /// The caller keeps the connection registered for reads and calls
    /// this again until EOF (clean close), an exhausted budget, or its
    /// own deadline.
    pub fn drain_nonblocking(&mut self, budget: &mut usize) -> DrainOutcome {
        *budget = budget.saturating_sub(self.buffered() + self.skip_remaining);
        self.buf.clear();
        self.start = 0;
        self.skip_remaining = 0;
        loop {
            if *budget == 0 {
                return DrainOutcome::Overflow;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return DrainOutcome::Eof,
                Ok(n) => *budget = budget.saturating_sub(n),
                Err(e) if is_timeout(&e) => return DrainOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // The connection is unusable either way; treat as gone.
                Err(_) => return DrainOutcome::Eof,
            }
        }
    }

    /// Best-effort discard of unread request bytes before closing the
    /// connection: without it, closing with data still queued in the
    /// kernel receive buffer sends an RST that can destroy an error
    /// response (e.g. a 413) before the peer reads it. Bounded by
    /// `max_bytes`; gives up at EOF, the first timeout, or any error.
    pub fn drain_for_close(&mut self, max_bytes: usize) {
        let mut discarded = self.buffered();
        self.buf.clear();
        self.start = 0;
        while discarded < max_bytes {
            match self.fill() {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    discarded += n;
                    self.buf.clear();
                }
            }
        }
    }

    /// Parses the next pipelined message — HTTP request or SITW-BIN
    /// frame, sniffed on the first unconsumed byte — reading from the
    /// socket as needed. Allocating convenience wrapper around
    /// [`ConnBuf::read_event_into`].
    pub fn read_event(&mut self) -> io::Result<EventOutcome> {
        let mut req = Request::default();
        let mut records = Vec::new();
        Ok(match self.read_event_into(&mut req, &mut records)? {
            ReadEvent::Request => EventOutcome::Request(req),
            ReadEvent::Frame { version, trace } => EventOutcome::Frame {
                records,
                version,
                trace,
            },
            ReadEvent::RawFrame { count } => EventOutcome::RawFrame { count },
            ReadEvent::Ctrl(ctrl) => EventOutcome::Ctrl(ctrl),
            ReadEvent::FrameError {
                code,
                detail,
                recoverable,
            } => EventOutcome::FrameError {
                code,
                detail,
                recoverable,
            },
            ReadEvent::Eof => EventOutcome::Eof,
            ReadEvent::Timeout => EventOutcome::Timeout,
            ReadEvent::BodyTooLarge { declared } => EventOutcome::BodyTooLarge { declared },
        })
    }

    /// Parses the next pipelined message into caller-owned buffers:
    /// request fields into `req`, frame records into `records` (both
    /// overwritten, reused across calls — the zero-allocation entry
    /// point the reactor drives). Semantics otherwise match
    /// [`ConnBuf::read_event`].
    pub fn read_event_into(
        &mut self,
        req: &mut Request,
        records: &mut Vec<BinInvoke>,
    ) -> io::Result<ReadEvent> {
        // Finish discarding a malformed-but-delimited frame first, so a
        // skip larger than the buffer never has to be buffered whole.
        while self.skip_remaining > 0 {
            let have = self.buffered().min(self.skip_remaining);
            self.start += have;
            self.skip_remaining -= have;
            if self.skip_remaining == 0 {
                break;
            }
            match self.fill() {
                Ok(0) => return Ok(ReadEvent::Eof),
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return Ok(ReadEvent::Timeout),
                Err(e) => return Err(e),
            }
        }
        while self.buffered() == 0 {
            match self.fill() {
                Ok(0) => return Ok(ReadEvent::Eof),
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return Ok(ReadEvent::Timeout),
                Err(e) => return Err(e),
            }
        }
        if self.buf[self.start] == wire::BIN_MAGIC {
            self.read_frame_into(records)
        } else {
            self.read_http_into(req)
        }
    }

    /// Parses the next SITW-BIN frame into `records`. The first
    /// unconsumed byte is already known to be [`wire::BIN_MAGIC`].
    fn read_frame_into(&mut self, records: &mut Vec<BinInvoke>) -> io::Result<ReadEvent> {
        if self.raw_req != [false; 2] {
            if let Some(ev) = self.try_raw_frame()? {
                return Ok(ev);
            }
        }
        loop {
            match wire::decode_request_frame_into(&self.buf[self.start..], records) {
                FrameDecodeInto::Request {
                    version,
                    trace,
                    consumed,
                } => {
                    self.start += consumed;
                    return Ok(ReadEvent::Frame { version, trace });
                }
                FrameDecodeInto::Control { req, consumed } => {
                    self.start += consumed;
                    return Ok(ReadEvent::Ctrl(req));
                }
                FrameDecodeInto::Error { code, detail, skip } => {
                    let recoverable = skip.is_some();
                    if let Some(total) = skip {
                        // Consume what is buffered now; the rest is
                        // discarded lazily on the next read_event call.
                        let have = self.buffered().min(total);
                        self.start += have;
                        self.skip_remaining = total - have;
                    }
                    return Ok(ReadEvent::FrameError {
                        code,
                        detail,
                        recoverable,
                    });
                }
                FrameDecodeInto::Incomplete => match self.fill() {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "eof mid-frame",
                        ))
                    }
                    Ok(_) => {}
                    Err(e) if is_timeout(&e) => return Ok(ReadEvent::Timeout),
                    Err(e) => return Err(e),
                },
            }
        }
    }

    /// Captures the next frame verbatim into `raw_frame` when its
    /// envelope says it is a request frame of a version selected via
    /// [`ConnBuf::set_raw_request_frames`]. Returns `Ok(None)` when the
    /// frame needs the decoded path instead (control frame, unselected
    /// version, envelope error).
    fn try_raw_frame(&mut self) -> io::Result<Option<ReadEvent>> {
        while self.buffered() < wire::BIN_HEADER_LEN {
            match self.fill() {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    ))
                }
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return Ok(Some(ReadEvent::Timeout)),
                Err(e) => return Err(e),
            }
        }
        let h = &self.buf[self.start..self.start + wire::BIN_HEADER_LEN];
        let selected = match h[1] {
            wire::BIN_VERSION => self.raw_req[0],
            wire::BIN_VERSION_2 => self.raw_req[1],
            _ => false,
        };
        let payload_len = u32::from_le_bytes([h[3], h[4], h[5], h[6]]) as usize;
        let count = u32::from_le_bytes([h[7], h[8], h[9], h[10]]);
        if !selected || h[2] != wire::FRAME_REQUEST || payload_len > wire::MAX_FRAME_PAYLOAD {
            return Ok(None);
        }
        let total = wire::BIN_HEADER_LEN + payload_len;
        while self.buffered() < total {
            match self.fill() {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid-frame",
                    ))
                }
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return Ok(Some(ReadEvent::Timeout)),
                Err(e) => return Err(e),
            }
        }
        self.raw_frame.clear();
        self.raw_frame
            .extend_from_slice(&self.buf[self.start..self.start + total]);
        self.start += total;
        Ok(Some(ReadEvent::RawFrame { count }))
    }

    /// Parses the next pipelined HTTP request, reading from the socket
    /// as needed. A SITW-BIN frame on the connection is a protocol
    /// error through this entry point — servers use
    /// [`ConnBuf::read_event`], which speaks both.
    pub fn read_request(&mut self) -> io::Result<ReadOutcome> {
        match self.read_event()? {
            EventOutcome::Request(r) => Ok(ReadOutcome::Request(r)),
            EventOutcome::Eof => Ok(ReadOutcome::Eof),
            EventOutcome::Timeout => Ok(ReadOutcome::Timeout),
            EventOutcome::BodyTooLarge { declared } => Ok(ReadOutcome::BodyTooLarge { declared }),
            EventOutcome::Frame { .. }
            | EventOutcome::RawFrame { .. }
            | EventOutcome::Ctrl(_)
            | EventOutcome::FrameError { .. } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected binary frame on an http-only reader",
            )),
        }
    }

    /// Parses the next HTTP request from the buffer into `req`.
    fn read_http_into(&mut self, req: &mut Request) -> io::Result<ReadEvent> {
        loop {
            // 1. Find the end of the header block in the buffered bytes.
            let window = &self.buf[self.start..];
            if let Some(header_end) = find_crlfcrlf(window) {
                let content_length = parse_header(&window[..header_end], req)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if content_length > MAX_BODY_BYTES as u64 {
                    return Ok(ReadEvent::BodyTooLarge {
                        declared: content_length,
                    });
                }
                let body_len = content_length as usize;
                let total = header_end + 4 + body_len;
                // 2. Ensure the body is fully buffered. A timeout here
                // surfaces as `Timeout` just like the mid-header path
                // (nothing has been consumed, so parsing resumes
                // exactly where it stopped) — otherwise a stalled
                // client would pin this thread in a loop that never
                // polls the caller's shutdown flag.
                while self.buffered() < total {
                    match self.fill() {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "eof mid-body",
                            ))
                        }
                        Ok(_) => {}
                        Err(e) if is_timeout(&e) => return Ok(ReadEvent::Timeout),
                        Err(e) => return Err(e),
                    }
                }
                let body_start = self.start + header_end + 4;
                req.body.clear();
                req.body
                    .extend_from_slice(&self.buf[body_start..body_start + body_len]);
                self.start += total;
                return Ok(ReadEvent::Request);
            }
            if self.buffered() > MAX_HEADER_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "header too large",
                ));
            }
            // 3. Need more bytes for the header block.
            match self.fill() {
                Ok(0) => {
                    return if self.buffered() == 0 {
                        Ok(ReadEvent::Eof)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "eof mid-header",
                        ))
                    }
                }
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return Ok(ReadEvent::Timeout),
                Err(e) => return Err(e),
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses a header block into `req` (method, path, close flag; the body
/// is the caller's job) and returns the declared content length. Writes
/// into `req`'s existing `String`s so a reused `Request` parses without
/// allocating.
fn parse_header(header: &[u8], req: &mut Request) -> Result<u64, String> {
    let text = std::str::from_utf8(header).map_err(|_| "non-utf8 header")?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or("missing method")?;
    let path = parts.next().ok_or("missing path")?;
    let version = parts.next().ok_or("missing version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }
    req.method.clear();
    req.method.push_str(method);
    req.path.clear();
    req.path.push_str(path);

    let mut content_length = 0u64;
    let mut close = version == "HTTP/1.0";
    let mut trace = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err("bad content-length".into());
            }
            // A value overflowing u64 is still a (ridiculous) length:
            // saturate so it hits the too-large path, not a parse error.
            content_length = value.parse::<u64>().unwrap_or(u64::MAX);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("x-sitw-trace") {
            // An unparsable id is dropped, not an error: tracing is
            // best-effort observability, never a reason to 400.
            let hex = value.strip_prefix("0x").unwrap_or(value);
            trace = u64::from_str_radix(hex, 16).ok();
        }
    }
    req.close = close;
    req.trace = trace;
    Ok(content_length)
}

/// Appends a full response (status line, headers, body) to `out`.
pub fn write_response(out: &mut Vec<u8>, status: u16, content_type: &str, body: &[u8]) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    };
    out.extend_from_slice(b"HTTP/1.1 ");
    crate::wire::push_u64(out, status as u64);
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\ncontent-type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\ncontent-length: ");
    crate::wire::push_u64(out, body.len() as u64);
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn parses_pipelined_requests_and_eof() {
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);

        client
            .write_all(
                b"POST /invoke HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello\
                  GET /healthz HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let r1 = match conn.read_request().unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(r1.method, "POST");
        assert_eq!(r1.path, "/invoke");
        assert_eq!(r1.body, b"hello");
        assert!(!r1.close);

        let r2 = match conn.read_request().unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!((r2.method.as_str(), r2.path.as_str()), ("GET", "/healthz"));

        drop(client);
        assert!(matches!(conn.read_request().unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn timeout_preserves_partial_request() {
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        let mut conn = ConnBuf::new(server);

        client.write_all(b"GET /heal").unwrap();
        assert!(matches!(conn.read_request().unwrap(), ReadOutcome::Timeout));
        client.write_all(b"thz HTTP/1.1\r\n\r\n").unwrap();
        let r = match conn.read_request().unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn oversized_content_length_rejected_without_allocation() {
        // Regression: a huge Content-Length used to be trusted; now it
        // surfaces as BodyTooLarge before any body buffering.
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);
        client
            .write_all(b"POST /invoke HTTP/1.1\r\ncontent-length: 109951162777600\r\n\r\n")
            .unwrap();
        match conn.read_request().unwrap() {
            ReadOutcome::BodyTooLarge { declared } => assert_eq!(declared, 109_951_162_777_600),
            other => panic!("{other:?}"),
        }

        // A Content-Length overflowing u64 saturates into the same path.
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);
        client
            .write_all(b"POST /invoke HTTP/1.1\r\ncontent-length: 99999999999999999999999\r\n\r\n")
            .unwrap();
        match conn.read_request().unwrap() {
            ReadOutcome::BodyTooLarge { declared } => assert_eq!(declared, u64::MAX),
            other => panic!("{other:?}"),
        }

        // Non-numeric lengths are still malformed requests, not 413s.
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);
        client
            .write_all(b"POST /invoke HTTP/1.1\r\ncontent-length: -1\r\n\r\n")
            .unwrap();
        assert!(conn.read_request().is_err());

        // The cap itself is inclusive: exactly MAX_BODY_BYTES is served.
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);
        let mut req = format!("POST /invoke HTTP/1.1\r\ncontent-length: {MAX_BODY_BYTES}\r\n\r\n")
            .into_bytes();
        req.extend_from_slice(&vec![b'x'; MAX_BODY_BYTES]);
        // Write from a thread: a 1 MiB body overflows the socket buffer,
        // so the writer must run concurrently with the reader.
        let writer = std::thread::spawn(move || client.write_all(&req).unwrap());
        loop {
            match conn.read_request().unwrap() {
                ReadOutcome::Request(r) => {
                    assert_eq!(r.body.len(), MAX_BODY_BYTES);
                    break;
                }
                ReadOutcome::Timeout => continue,
                other => panic!("{other:?}"),
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn connection_close_header_detected() {
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);
        client
            .write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let r = match conn.read_request().unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert!(r.close);
    }

    #[test]
    fn trace_header_parses_hex_and_resets_between_requests() {
        let mut req = Request::default();
        parse_header(
            b"POST /invoke HTTP/1.1\r\nX-Sitw-Trace: 0x8000000000000bee\r\ncontent-length: 0",
            &mut req,
        )
        .unwrap();
        assert_eq!(req.trace, Some(0x8000_0000_0000_0bee));
        // Bare hex (no 0x) also parses; case-insensitive header name.
        parse_header(b"GET / HTTP/1.1\r\nx-sitw-trace: ff", &mut req).unwrap();
        assert_eq!(req.trace, Some(0xff));
        // A reused Request must not leak the previous trace id.
        parse_header(b"GET / HTTP/1.1", &mut req).unwrap();
        assert_eq!(req.trace, None);
        // Garbage is dropped, never a parse error.
        parse_header(b"GET / HTTP/1.1\r\nX-Sitw-Trace: not-hex", &mut req).unwrap();
        assert_eq!(req.trace, None);
    }

    #[test]
    fn traced_v2_frame_surfaces_trace_id() {
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);
        let mut frame = Vec::new();
        wire::encode_request_frame_v2_traced(&mut frame, &[(1, "app-000001", 7)], 0xBEEF);
        client.write_all(&frame).unwrap();
        match conn.read_event().unwrap() {
            EventOutcome::Frame {
                records,
                version,
                trace,
            } => {
                assert_eq!(version, wire::BIN_VERSION_2);
                assert_eq!(trace, Some(0xBEEF));
                assert_eq!(records.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sniffs_binary_frames_next_to_http_on_one_connection() {
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);

        // HTTP request, then a SITW-BIN frame, then HTTP again — the
        // sniff is per message, not per connection.
        client.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let mut frame = Vec::new();
        wire::encode_request_frame(&mut frame, &[("app-000001", 7), ("caf\u{e9}", 8)]);
        client.write_all(&frame).unwrap();
        client.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();

        match conn.read_event().unwrap() {
            EventOutcome::Request(r) => assert_eq!(r.path, "/healthz"),
            other => panic!("{other:?}"),
        }
        match conn.read_event().unwrap() {
            EventOutcome::Frame {
                records,
                version,
                trace,
            } => {
                assert_eq!(version, wire::BIN_VERSION);
                assert_eq!(trace, None);
                assert_eq!(records.len(), 2);
                assert_eq!(records[0].app, "app-000001");
                assert_eq!(records[0].tenant, 0);
                assert_eq!(records[1].app, "caf\u{e9}");
            }
            other => panic!("{other:?}"),
        }
        match conn.read_event().unwrap() {
            EventOutcome::Request(r) => assert_eq!(r.path, "/metrics"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_split_at_every_byte_boundary_reassembles() {
        // The frame arrives in two reads split at byte i, for every i:
        // the first read must surface Timeout (partial frame preserved),
        // the second must complete it.
        let mut frame = Vec::new();
        wire::encode_request_frame(&mut frame, &[("app-β-000001", 123_456_789), ("x", 0)]);
        for i in 1..frame.len() {
            let (mut client, server) = pair();
            server
                .set_read_timeout(Some(Duration::from_millis(10)))
                .unwrap();
            let mut conn = ConnBuf::new(server);
            client.write_all(&frame[..i]).unwrap();
            match conn.read_event().unwrap() {
                EventOutcome::Timeout => {}
                other => panic!("split at {i}: {other:?}"),
            }
            client.write_all(&frame[i..]).unwrap();
            loop {
                match conn.read_event().unwrap() {
                    EventOutcome::Frame { records, .. } => {
                        assert_eq!(records.len(), 2, "split at {i}");
                        assert_eq!(records[0].app, "app-β-000001");
                        break;
                    }
                    EventOutcome::Timeout => continue,
                    other => panic!("split at {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn recoverable_frame_error_skips_and_keeps_reading() {
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);

        // A malformed frame (empty app) with an intact envelope,
        // followed immediately by a good frame.
        let mut bad_payload = vec![0u8, 0];
        bad_payload.extend_from_slice(&7u64.to_le_bytes());
        let mut bad = Vec::new();
        bad.push(wire::BIN_MAGIC);
        bad.push(wire::BIN_VERSION);
        bad.push(wire::FRAME_REQUEST);
        bad.extend_from_slice(&(bad_payload.len() as u32).to_le_bytes());
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&bad_payload);
        client.write_all(&bad).unwrap();
        let mut good = Vec::new();
        wire::encode_request_frame(&mut good, &[("ok", 1)]);
        client.write_all(&good).unwrap();

        match conn.read_event().unwrap() {
            EventOutcome::FrameError {
                code, recoverable, ..
            } => {
                assert_eq!(code, BinErrorCode::Malformed);
                assert!(recoverable);
            }
            other => panic!("{other:?}"),
        }
        loop {
            match conn.read_event().unwrap() {
                EventOutcome::Frame { records, .. } => {
                    assert_eq!(records[0].app, "ok");
                    break;
                }
                EventOutcome::Timeout => continue,
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn oversized_batch_error_skips_payload_larger_than_buffer() {
        // Header declares count > MAX_BATCH with a large (but capped)
        // payload; the error surfaces from the header alone and the
        // payload is discarded incrementally, then a good frame parses.
        let (mut client, server) = pair();
        server
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut conn = ConnBuf::new(server);

        let payload_len = 256 * 1024;
        let mut bad = Vec::new();
        bad.push(wire::BIN_MAGIC);
        bad.push(wire::BIN_VERSION);
        bad.push(wire::FRAME_REQUEST);
        bad.extend_from_slice(&(payload_len as u32).to_le_bytes());
        bad.extend_from_slice(&((wire::MAX_BATCH + 1) as u32).to_le_bytes());
        client.write_all(&bad).unwrap();

        match conn.read_event().unwrap() {
            EventOutcome::FrameError {
                code, recoverable, ..
            } => {
                assert_eq!(code, BinErrorCode::Oversized);
                assert!(recoverable);
            }
            other => panic!("{other:?}"),
        }

        // Stream the dead payload from a thread (it exceeds the socket
        // buffer), then the good frame.
        let mut good = Vec::new();
        wire::encode_request_frame(&mut good, &[("alive", 9)]);
        let writer = std::thread::spawn(move || {
            client.write_all(&vec![0u8; payload_len]).unwrap();
            client.write_all(&good).unwrap();
            client
        });
        loop {
            match conn.read_event().unwrap() {
                EventOutcome::Frame { records, .. } => {
                    assert_eq!(records[0].app, "alive");
                    assert_eq!(records[0].ts, 9);
                    break;
                }
                EventOutcome::Timeout => continue,
                other => panic!("{other:?}"),
            }
        }
        drop(writer.join().unwrap());
    }

    #[test]
    fn response_formatting() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
