//! `sitw-serve`: the online keep-alive decision service.
//!
//! The paper's §6 describes the hybrid histogram policy running *inside*
//! the Azure Functions production front end; this crate turns the
//! workspace's policy engine into that shape — a long-running daemon a
//! FaaS control plane would consult on every function execution:
//!
//! * **HTTP/1.1 over an epoll reactor** ([`http`], [`server`],
//!   [`reactor`], `conn`): std-only, persistent connections, request
//!   pipelining. A fixed pool of event-loop threads multiplexes every
//!   connection over `sitw_reactor`'s raw epoll/eventfd bindings —
//!   thousands of mostly idle keep-alive clients cost a slab entry
//!   each, not a thread — with per-connection buffer reuse (the
//!   steady-state hot path allocates only the app-id `String` the
//!   shard map needs), coalesced response writes, read-backpressure
//!   hysteresis, a slowloris idle timeout, and connection gauges in
//!   `/metrics`.
//! * **Sharded policy state** ([`shard`]): N worker threads each own the
//!   per-application policy state for their hash slice of the app space.
//!   Requests reach shards through mailbox channels; there are **no
//!   shared locks on the decision path**, so a shard's state needs no
//!   synchronization at all. In production mode
//!   ([`sitw_sim::PolicySpec::Production`]) each shard runs a
//!   shard-local [`sitw_core::ProductionManager`] — daily histograms,
//!   two-week retention, recency-weighted aggregation, pre-warms
//!   scheduled 90 s early, hourly backup accounting (§6).
//! * **Endpoints**: `POST /invoke` (app id + timestamp → cold/warm
//!   verdict and the next pre-warm/keep-alive windows), `GET /metrics`
//!   (per-shard counters plus per-stage/per-tenant decision-latency
//!   **histograms** — mergeable log2 buckets from `sitw_telemetry`,
//!   exported as real Prometheus `histogram` series), `GET /healthz`,
//!   the flight-recorder debug endpoints `GET /debug/trace` and
//!   `GET /debug/threads` ([`telem`]), and admin verbs for snapshotting
//!   and graceful shutdown.
//! * **Flight-recorder telemetry** ([`telem`]): every request is traced
//!   through six stages — read → decode → queue → decide → render →
//!   write — into per-thread span rings and per-stage histograms, with
//!   reactor introspection counters (epoll waits, wakeups, events per
//!   wake, write-coalescing bursts, backpressure transitions, mailbox
//!   depths). Recording is lock-light (`try_lock` per site) and
//!   allocation-free in steady state; `telemetry: false` removes every
//!   clock read from the hot path.
//! * **Snapshot/restore** ([`snapshot`]): the complete per-app policy
//!   state (histogram bins, out-of-bounds counts, ARIMA history) round
//!   trips through a text file — the daemon can restart mid-stream and
//!   keep emitting bit-identical decisions, mirroring the hourly
//!   backups of §6.
//! * **Replication & failover** ([`follow`]): a warm standby
//!   (`sitw-serve --follow PRIMARY`) pulls chunked snapshot/delta
//!   rounds over SITW-BIN replication frames — per-app dirty tracking
//!   means steady-state rounds carry only what mutated, and no shard
//!   ever pauses — and promotes into a serving primary (operator
//!   command, router failover, or dead-primary auto policy) whose
//!   decisions are bit-identical to an uninterrupted one.
//! * **Verdict parity**: classification goes through
//!   [`sitw_core::Windows::classify_gap`], the same single source of
//!   truth the offline simulator uses, so an online replay of a trace
//!   produces exactly [`sitw_sim::verdict_trace`]'s answers. The
//!   integration tests assert this bit-for-bit.
//! * **SITW-BIN v1** ([`wire`]): a length-prefixed batched binary
//!   protocol on the same port, sniffed per message on its first byte
//!   ([`wire::BIN_MAGIC`] vs an ASCII method letter). A frame of up to
//!   [`wire::MAX_BATCH`] invocations crosses each shard mailbox in one
//!   message and is answered by fixed 9-byte verdict records, so the
//!   per-decision parse/format/syscall/wake cost is amortized over the
//!   whole batch. Malformed frames get typed error frames; whenever the
//!   length-prefixed envelope is intact the connection stays usable.
//! * **Multi-tenant fleet** (`sitw_fleet` wired through [`shard`] /
//!   [`server`]): per-tenant policies and keep-alive memory budgets, a
//!   cluster memory ledger charging each warm container a deterministic
//!   Burr-sampled footprint (§3.4/Figure 8), and budgeted eviction by
//!   earliest keep-alive expiry — would-be-warm starts downgrade to
//!   `evicted` cold verdicts instead of silently over-committing.
//!   Named tenants route whole to one shard, so their ledgers stay
//!   single-writer and their eviction streams are identical for every
//!   shard count; `sitw_sim::fleet_verdict_trace` is the offline ground
//!   truth.
//! * **Load generator** ([`loadgen`]): replays `sitw_trace` workloads
//!   open-loop at a configurable speedup (or flat out) over pipelined
//!   connections — speaking JSON or SITW-BIN ([`loadgen::Proto`]),
//!   optionally spread across N tenants with Zipf skew — and reports
//!   sustained throughput and exact latency percentiles.
//!
//! # Quickstart
//!
//! ```
//! use sitw_serve::{Server, ServeConfig};
//! use sitw_sim::PolicySpec;
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     shards: 2,
//!     policy: PolicySpec::fixed_minutes(10),
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let addr = server.addr();
//! // ... drive POST /invoke over TCP, then:
//! server.shutdown().unwrap();
//! # let _ = addr;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod conn;
pub mod follow;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod reactor;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod telem;
pub mod wire;

pub use follow::{FollowConfig, FollowStatus, Follower};
pub use loadgen::{run_loadgen, run_loadgen_cluster, LoadGenConfig, LoadGenReport, Proto};
pub use metrics::{
    ConnStats, MetricsReport, ProtoHists, ProtoStats, ReactorStats, ShardStats, TenantStats,
};
pub use reactor::ReplySink;
pub use server::{ServeConfig, Server, TenantConfig};
pub use shard::{
    shard_of, BatchItem, BatchReply, Decision, InvokeError, ServedPolicy, TenantRestore,
};
pub use snapshot::{
    apply_delta, AppRecord, PolicyState, ShardExport, Snapshot, SnapshotError, TenantExport,
    TenantSnapshot,
};
pub use telem::{
    merge_spans, QueueGauge, ReactorTelem, ReactorTelemHandle, ShardTelem, TelemClock, TRACE_RING,
};
