//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the call shape this workspace
//! uses (`scope(|s| { s.spawn(|_| ...) }).expect(...)`), implemented on
//! top of `std::thread::scope` (stable since Rust 1.63, which makes
//! crossbeam's scoped threads redundant for our purposes).
//!
//! Differences from the real crate: the argument passed to a spawned
//! closure is an opaque token rather than a nested-spawn-capable scope
//! handle — the workspace never spawns from inside a spawned thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error type of [`scope`]: the payload of a child-thread panic.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Token passed to spawned closures in place of crossbeam's nested
    /// scope handle (nested spawning is not supported by this shim).
    #[derive(Debug, Clone, Copy)]
    pub struct SpawnToken;

    /// A scope within which threads borrowing local data can be spawned.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives an opaque token
        /// (crossbeam passes a nested scope handle there; all workspace
        /// call sites ignore the argument).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(SpawnToken) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(SpawnToken)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Returns `Ok` with the closure's result;
    /// panics from unjoined child threads propagate as in `std`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_spawn_join_borrows_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("scope failed");
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_reported() {
        let res = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope itself must succeed");
        assert!(res.is_err());
    }
}
