//! Mergeable fixed-bucket log2 histograms.
//!
//! A latency distribution is captured into 64 power-of-two buckets:
//! bucket 0 holds the value 0 and bucket `i` (1 ≤ i ≤ 62) holds values in
//! `[2^(i-1), 2^i - 1]`; the last bucket absorbs everything from `2^62`
//! up. Recording is a `leading_zeros` and two adds — no floating point,
//! no allocation — and merging two histograms is elementwise `u64`
//! addition, so counts merged across shards and reactors are *exactly*
//! the counts that would have been recorded into a single histogram.
//! That exactness is what lets `/metrics` export true Prometheus
//! `histogram` series whose shard-merged buckets equal the sum of
//! per-shard recordings.

/// Number of buckets in a [`Log2Histogram`].
pub const BUCKETS: usize = 64;

/// A fixed-size power-of-two histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use sitw_telemetry::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(3);
/// h.record(900);
/// let mut other = Log2Histogram::new();
/// other.record(5);
/// h.merge(&other);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 908);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Reconstructs a histogram from exported raw parts (`count` is
    /// derived: every recorded sample lands in exactly one bucket, so
    /// the count *is* the bucket total). This is the federation
    /// constructor: a scraper that received a node's raw buckets and
    /// sum rebuilds the histogram here and merges it exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use sitw_telemetry::Log2Histogram;
    ///
    /// let mut h = Log2Histogram::new();
    /// h.record(3);
    /// h.record(900);
    /// let rebuilt = Log2Histogram::from_raw(*h.buckets(), h.sum());
    /// assert_eq!(rebuilt, h);
    /// ```
    pub fn from_raw(buckets: [u64; BUCKETS], sum: u64) -> Self {
        let count = buckets.iter().sum();
        Self {
            buckets,
            count,
            sum,
        }
    }

    /// Index of the bucket that holds `v`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    ///
    /// # Panics
    ///
    /// Panics when `i >= BUCKETS`.
    #[inline]
    pub fn bucket_upper(i: usize) -> u64 {
        assert!(i < BUCKETS);
        if i == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Inclusive lower bound of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= BUCKETS`.
    #[inline]
    pub fn bucket_lower(i: usize) -> u64 {
        assert!(i < BUCKETS);
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample in O(1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Records `n` samples of value `v` in O(1) (batch recording: a
    /// frame of `n` decisions timed once records the per-record mean
    /// `n` times).
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Adds every bucket of `other` into `self` (exact merge).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Mean sample value; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Upper bound of the highest non-empty bucket; `None` when empty.
    ///
    /// An upper bound on the maximum recorded sample (the histogram does
    /// not retain exact maxima).
    pub fn max_bound(&self) -> Option<u64> {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(Self::bucket_upper)
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) by walking the
    /// cumulative counts and interpolating linearly within the bucket
    /// that contains the target rank. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ q ≤ 1`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().clamp(1.0, self.count as f64);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let lo = Self::bucket_lower(i) as f64;
                let hi = Self::bucket_upper(i) as f64;
                let frac = (rank - cum as f64) / c as f64;
                return Some(lo + frac * (hi - lo));
            }
            cum = next;
        }
        Some(Self::bucket_upper(BUCKETS - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            assert_eq!(Log2Histogram::bucket_of(Log2Histogram::bucket_lower(i)), i);
            assert_eq!(Log2Histogram::bucket_of(Log2Histogram::bucket_upper(i)), i);
        }
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max_bound(), None);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // log2 buckets bound each estimate within a factor of two.
        assert!((250.0..=1023.0).contains(&p50), "p50 {p50}");
        assert!((512.0..=1023.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.max_bound(), Some(1023));
    }

    #[test]
    fn record_n_equals_n_records() {
        let mut a = Log2Histogram::new();
        a.record_n(37, 5);
        let mut b = Log2Histogram::new();
        for _ in 0..5 {
            b.record(37);
        }
        assert_eq!(a, b);
        a.record_n(9, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_extremes() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(7);
        let p0 = h.quantile(0.0).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert_eq!(p0, 0.0);
        assert!((4.0..=7.0).contains(&p100), "p100 {p100}");
    }

    proptest! {
        /// Merging two histograms is exactly recording the concatenated
        /// stream: bucket-exact, sum-exact, count-exact.
        #[test]
        fn merge_equals_concat(
            xs in prop::collection::vec(0u64..u64::MAX, 0..200),
            ys in prop::collection::vec(0u64..u64::MAX, 0..200),
        ) {
            let mut a = Log2Histogram::new();
            for &x in &xs {
                a.record(x);
            }
            let mut b = Log2Histogram::new();
            for &y in &ys {
                b.record(y);
            }
            a.merge(&b);

            let mut both = Log2Histogram::new();
            for &v in xs.iter().chain(ys.iter()) {
                both.record(v);
            }
            prop_assert_eq!(a.buckets(), both.buckets());
            prop_assert_eq!(a.count(), both.count());
            prop_assert_eq!(a.sum(), both.sum());
        }

        #[test]
        fn recorded_value_lands_in_its_bucket(v in 0u64..u64::MAX) {
            let mut h = Log2Histogram::new();
            h.record(v);
            let i = Log2Histogram::bucket_of(v);
            prop_assert!(Log2Histogram::bucket_lower(i) <= v);
            prop_assert!(v <= Log2Histogram::bucket_upper(i));
            prop_assert_eq!(h.buckets()[i], 1);
            prop_assert_eq!(h.count(), 1);
        }
    }
}
