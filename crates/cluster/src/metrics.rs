//! Router metrics: counters for the routing hot path, gauges for ring
//! state, and the cluster-wide per-tenant usage from the last
//! reconciliation, rendered in Prometheus text format at `/metrics`.
//!
//! All names are `sitw_router_*` — disjoint from the nodes'
//! `sitw_serve_*` namespace, so one scrape config can collect both
//! without relabeling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sitw_serve::wire::TenantUsage;

/// Counters and gauges of one router process. All atomics are updated
/// with relaxed ordering: each metric is an independent statistic, not a
/// synchronization edge.
#[derive(Debug)]
pub struct RouterMetrics {
    /// JSON `/invoke` requests accepted (forwarded or throttled).
    pub json_requests: AtomicU64,
    /// SITW-BIN request frames accepted.
    pub bin_frames: AtomicU64,
    /// SITW-BIN request records accepted (frames are batches).
    pub bin_records: AtomicU64,
    /// Per-node subframes forwarded upstream.
    pub forwarded_subframes: AtomicU64,
    /// Invocations rejected by QoS admission (both protocols).
    pub throttled: AtomicU64,
    /// Upstream failures per node slot (connect, write, or read).
    pub node_errors: Vec<AtomicU64>,
    /// The ring epoch as of the last change.
    pub ring_epoch: AtomicU64,
    /// Live node count.
    pub nodes_live: AtomicU64,
    /// Budget reconciliations completed.
    pub reconcile_runs: AtomicU64,
    /// Budget shares acknowledged by nodes, summed over reconciliations.
    pub budget_pushes: AtomicU64,
    /// Tenant migrations completed.
    pub migrations: AtomicU64,
    /// Cluster-aggregated per-tenant usage from the last reconciliation.
    pub usage: Mutex<Vec<TenantUsage>>,
}

impl RouterMetrics {
    /// Zeroed metrics for a cluster of `nodes` node slots.
    pub fn new(nodes: usize) -> Self {
        Self {
            json_requests: AtomicU64::new(0),
            bin_frames: AtomicU64::new(0),
            bin_records: AtomicU64::new(0),
            forwarded_subframes: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            node_errors: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            ring_epoch: AtomicU64::new(0),
            nodes_live: AtomicU64::new(nodes as u64),
            reconcile_runs: AtomicU64::new(0),
            budget_pushes: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            usage: Mutex::new(Vec::new()),
        }
    }

    /// Bumps one per-node error counter (out-of-range slots are ignored).
    pub fn node_error(&self, node: usize) {
        if let Some(c) = self.node_errors.get(node) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders the Prometheus exposition text. `node_addrs` label the
    /// per-node series (index order matches the ring's node slots).
    pub fn render(&self, node_addrs: &[String]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };

        let _ = writeln!(
            out,
            "# HELP sitw_router_requests_total Requests accepted by protocol."
        );
        let _ = writeln!(out, "# TYPE sitw_router_requests_total counter");
        let _ = writeln!(
            out,
            "sitw_router_requests_total{{proto=\"json\"}} {}",
            self.json_requests.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "sitw_router_requests_total{{proto=\"bin\"}} {}",
            self.bin_frames.load(Ordering::Relaxed)
        );
        counter(
            &mut out,
            "sitw_router_records_total",
            "SITW-BIN request records accepted.",
            self.bin_records.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sitw_router_forwarded_subframes_total",
            "Per-node subframes forwarded upstream.",
            self.forwarded_subframes.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sitw_router_throttled_total",
            "Invocations rejected by QoS admission.",
            self.throttled.load(Ordering::Relaxed),
        );
        let _ = writeln!(
            out,
            "# HELP sitw_router_node_errors_total Upstream failures per node."
        );
        let _ = writeln!(out, "# TYPE sitw_router_node_errors_total counter");
        for (i, c) in self.node_errors.iter().enumerate() {
            let addr = node_addrs.get(i).map(String::as_str).unwrap_or("?");
            let _ = writeln!(
                out,
                "sitw_router_node_errors_total{{node=\"{addr}\"}} {}",
                c.load(Ordering::Relaxed)
            );
        }
        gauge(
            &mut out,
            "sitw_router_ring_epoch",
            "Ring epoch (bumps on membership or placement change).",
            self.ring_epoch.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "sitw_router_nodes_live",
            "Live node count.",
            self.nodes_live.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sitw_router_reconcile_runs_total",
            "Budget reconciliations completed.",
            self.reconcile_runs.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sitw_router_budget_pushes_total",
            "Budget shares acknowledged by nodes.",
            self.budget_pushes.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "sitw_router_migrations_total",
            "Tenant migrations completed.",
            self.migrations.load(Ordering::Relaxed),
        );

        let usage = self.usage.lock().expect("usage poisoned");
        for (name, help, get) in [
            (
                "sitw_router_tenant_budget_mb",
                "Cluster budget per tenant, MB (last reconcile).",
                (|t| t.budget_mb) as fn(&TenantUsage) -> u64,
            ),
            (
                "sitw_router_tenant_warm_mb",
                "Warm memory per tenant, MB (last reconcile).",
                |t| t.warm_mb,
            ),
            (
                "sitw_router_tenant_evictions_total",
                "Budget evictions per tenant (last reconcile).",
                |t| t.evictions,
            ),
            (
                "sitw_router_tenant_invocations_total",
                "Invocations served per tenant (last reconcile).",
                |t| t.invocations,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for t in usage.iter() {
                let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.name, get(t));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_families_and_labels() {
        let m = RouterMetrics::new(2);
        m.json_requests.fetch_add(3, Ordering::Relaxed);
        m.node_error(1);
        m.node_error(7); // Out of range: ignored, not a panic.
        m.usage.lock().unwrap().push(TenantUsage {
            name: "t0".into(),
            budget_mb: 64,
            warm_mb: 10,
            evictions: 2,
            idle_mb_ms: 5,
            invocations: 9,
        });
        let text = m.render(&["127.0.0.1:7101".into(), "127.0.0.1:7102".into()]);
        assert!(text.contains("sitw_router_requests_total{proto=\"json\"} 3"));
        assert!(text.contains("sitw_router_node_errors_total{node=\"127.0.0.1:7102\"} 1"));
        assert!(text.contains("sitw_router_nodes_live 2"));
        assert!(text.contains("sitw_router_tenant_budget_mb{tenant=\"t0\"} 64"));
        assert!(text.contains("sitw_router_tenant_invocations_total{tenant=\"t0\"} 9"));
    }
}
