//! Event-loop primitives for the serving daemon's connection reactor.
//!
//! The workspace builds with no crates.io access, so this crate is the
//! offline stand-in for the corner of `mio`/`libc` the daemon needs: raw
//! `extern "C"` bindings to the Linux `epoll`, `eventfd`, and `rlimit`
//! syscalls ([`sys`], the only module containing `unsafe`), wrapped in
//! safe, misuse-resistant types:
//!
//! * [`Epoll`] — a level-triggered readiness multiplexer. Register a
//!   file descriptor with a `u64` token and an [`Interest`]; [`Epoll::wait`]
//!   fills a reusable [`Events`] buffer without allocating.
//! * [`Waker`] — an `eventfd` plus an *armed* flag. Event-loop threads
//!   arm it just before blocking in `epoll_wait`; producers on other
//!   threads call [`Waker::wake`], which only pays the `write(2)` when
//!   the loop is actually (about to be) asleep. That keeps cross-thread
//!   hand-offs syscall-free while the loop is busy.
//! * [`Slab`] — a generational arena for per-connection state. Tokens
//!   embed a generation, so a message routed to a connection that died
//!   (and whose slot was reused) is detected and dropped instead of
//!   being delivered to the new occupant.
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE` toward its hard
//!   cap, for stress tests and deployments holding thousands of mostly
//!   idle sockets.
//!
//! Everything is `std`-only and thread-safe where it claims to be;
//! `Epoll` and `Waker` are `Sync` (the kernel serializes the underlying
//! syscalls), `Slab` is plain data owned by one loop.

#![warn(missing_docs)]

#[cfg(not(target_os = "linux"))]
compile_error!(
    "sitw-reactor binds the Linux epoll/eventfd syscalls directly; \
     ports to other platforms need a kqueue/poll backend here"
);

mod epoll;
mod rlimit;
mod slab;
mod sys;
mod wake;

pub use epoll::{Epoll, Event, Events, Interest};
pub use rlimit::raise_nofile_limit;
pub use slab::Slab;
pub use wake::Waker;
