//! Raw Linux syscall bindings — the only `unsafe` in the workspace.
//!
//! Declarations mirror the glibc/musl prototypes; constants mirror the
//! kernel ABI (`<sys/epoll.h>`, `<sys/eventfd.h>`, `<sys/resource.h>`).
//! Everything here is `pub(crate)` and consumed through the safe
//! wrappers in the sibling modules.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;

pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

/// The kernel's `struct epoll_event`. Packed on x86-64 (a quirk the ABI
/// froze in); naturally aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

pub(crate) fn sys_epoll_create() -> io::Result<c_int> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

pub(crate) fn sys_epoll_ctl(
    epfd: c_int,
    op: c_int,
    fd: c_int,
    events: u32,
    data: u64,
) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Waits for readiness; retries on `EINTR`. Returns the number of
/// events written into `buf`.
pub(crate) fn sys_epoll_wait(
    epfd: c_int,
    buf: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

pub(crate) fn sys_eventfd() -> io::Result<c_int> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Adds 1 to an eventfd counter. `EAGAIN` (counter saturated) is fine —
/// the reader is already guaranteed a wakeup.
pub(crate) fn sys_eventfd_signal(fd: c_int) {
    let one: u64 = 1;
    unsafe { write(fd, (&one as *const u64).cast(), 8) };
}

/// Reads (and thereby zeroes) an eventfd counter; `EAGAIN` when it was
/// already zero.
pub(crate) fn sys_eventfd_drain(fd: c_int) {
    let mut counter: u64 = 0;
    unsafe { read(fd, (&mut counter as *mut u64).cast(), 8) };
}

pub(crate) fn sys_close(fd: c_int) {
    unsafe { close(fd) };
}

/// Raises the soft `RLIMIT_NOFILE` toward `min(target, hard)`; returns
/// the soft limit now in effect.
pub(crate) fn sys_raise_nofile(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    let want = target.min(lim.max);
    if want > lim.cur {
        let new = Rlimit {
            cur: want,
            max: lim.max,
        };
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
        return Ok(want);
    }
    Ok(lim.cur)
}
