//! Serverless in the Wild — a Rust reproduction.
//!
//! This crate re-exports the workspace's components behind one façade so
//! examples and downstream users need a single dependency:
//!
//! * [`stats`] — statistics substrate (Welford, weighted percentiles,
//!   range-limited histograms, ECDFs, the paper's log-normal/Burr fits);
//! * [`arima`] — from-scratch ARIMA with automatic order selection;
//! * [`trace`] — workload model, synthetic Azure-Functions-like trace
//!   generation, AzurePublicDataset schema I/O, characterization
//!   analysis;
//! * [`core`] — the keep-alive policies: fixed, no-unloading, the
//!   **hybrid histogram policy**, and the §6 production-style manager;
//! * [`fleet`] — the multi-tenant fleet subsystem: tenant registry,
//!   Burr-sampled memory footprints, the cluster memory ledger, and
//!   budgeted eviction;
//! * [`sim`] — the §5.1 cold-start simulator and policy sweep driver;
//! * [`platform`] — the OpenWhisk-model discrete-event platform for the
//!   §5.3 experiments;
//! * [`serve`] — the online decision service: a sharded HTTP/1.1 daemon
//!   serving the policy engine the way §6 deploys it, plus a
//!   trace-driven load generator.
//!
//! # Quickstart
//!
//! ```
//! use serverless_in_the_wild::prelude::*;
//!
//! // 1. Build a small workload; default config generates one week.
//! let pop = build_population(&PopulationConfig { num_apps: 50, seed: 7 });
//! let cfg = TraceConfig::default();
//!
//! // 2. Compare the provider default against the paper's policy.
//! let specs = vec![
//!     PolicySpec::fixed_minutes(10),
//!     PolicySpec::Hybrid(HybridConfig::default()),
//! ];
//! let results = run_sweep(&pop, &cfg, &specs, 2);
//!
//! // 3. The hybrid policy cuts cold starts.
//! assert!(results[1].cold_starts <= results[0].cold_starts);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sitw_arima as arima;
pub use sitw_core as core;
pub use sitw_fleet as fleet;
pub use sitw_platform as platform;
pub use sitw_serve as serve;
pub use sitw_sim as sim;
pub use sitw_stats as stats;
pub use sitw_trace as trace;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use sitw_core::{
        AppPolicy, DecisionKind, FixedKeepAlive, HybridConfig, HybridPolicy, NoUnloading,
        PolicyFactory, ProductionConfig, ProductionManager, ProductionPolicy, RecencyWeighting,
        Windows,
    };
    pub use sitw_fleet::{
        fleet_verdict_trace, footprint_mb, FleetEvent, FleetSim, FleetVerdict, TenantLedger,
        TenantRegistry, TenantSpec,
    };
    pub use sitw_platform::{run_platform, PlatformConfig, PlatformReport};
    pub use sitw_serve::{run_loadgen, LoadGenConfig, LoadGenReport, Proto, ServeConfig, Server};
    pub use sitw_sim::{
        pareto_points, production_verdict_trace, run_sweep, simulate_app, simulate_app_with_exec,
        verdict_trace, AppSimResult, InvocationVerdict, PolicyAggregate, PolicySpec,
    };
    pub use sitw_stats::{Ecdf, RangeHistogram, Welford};
    pub use sitw_trace::{
        build_population, generate_trace, AppProfile, Population, PopulationConfig, TimeMs, Trace,
        TraceConfig, TriggerType, DAY_MS, HOUR_MS, MINUTE_MS, WEEK_MS,
    };
}
