//! Heterogeneous policy configuration: one value naming any of the
//! crate's keep-alive policies, with a parse/format round trip.
//!
//! [`PolicySpec`] started life in the simulation sweep driver, but the
//! fleet subsystem needs it too — per-tenant policies are specs, tenant
//! config files and the serving daemon's CLI parse the same strings, and
//! snapshots persist them — so it lives here, next to the policy types
//! it names. `sitw_sim` re-exports it, keeping the old path working.

use crate::fixed::{FixedKeepAlive, NoUnloading};
use crate::hybrid::HybridConfig;
use crate::policy::{AppPolicy, PolicyFactory, MINUTE_MS};
use crate::production::{ProductionConfig, RecencyWeighting};

/// A heterogeneous policy configuration for sweeps, tenants, and the
/// serving daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Fixed keep-alive baseline.
    Fixed(FixedKeepAlive),
    /// Never unload (upper bound).
    NoUnloading,
    /// The hybrid histogram policy.
    Hybrid(HybridConfig),
    /// The production-manager scheme (§6): daily histograms with
    /// retention and recency-weighted aggregation.
    Production(ProductionConfig),
}

impl PolicySpec {
    /// Convenience constructor: fixed keep-alive in minutes.
    pub fn fixed_minutes(minutes: u64) -> Self {
        PolicySpec::Fixed(FixedKeepAlive::minutes(minutes))
    }

    /// The label used in aggregates and reports.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Fixed(f) => f.label(),
            PolicySpec::NoUnloading => NoUnloading.label(),
            PolicySpec::Hybrid(h) => h.label(),
            PolicySpec::Production(p) => p.label(),
        }
    }

    /// Creates the per-app policy instance.
    ///
    /// For [`PolicySpec::Production`] this is the single-app
    /// [`crate::ProductionPolicy`] adapter (trace-relative day
    /// boundaries); daemon-parity replays use
    /// `sitw_sim::production_verdict_trace` with absolute timestamps.
    pub fn new_policy(&self) -> Box<dyn AppPolicy + Send> {
        match self {
            PolicySpec::Fixed(f) => Box::new(f.new_policy()),
            PolicySpec::NoUnloading => Box::new(NoUnloading),
            PolicySpec::Hybrid(h) => Box::new(h.new_policy()),
            PolicySpec::Production(p) => Box::new(p.new_policy()),
        }
    }

    /// Parses the CLI/config-file grammar shared by the daemon, tenant
    /// configs, and snapshots:
    ///
    /// * `hybrid` (paper defaults), `hybrid:<hours>h` (histogram range);
    /// * `fixed:<minutes>` / `fixed:<minutes>min` (fixed keep-alive);
    /// * `no-unloading`;
    /// * `production` and its variants `production:<days>d` (retention),
    ///   `production:<decay>` (per-day exponential decay, e.g.
    ///   `production:0.5`), `production:uniform` (no recency weighting).
    pub fn parse(s: &str) -> Result<PolicySpec, String> {
        if s == "production" {
            return Ok(PolicySpec::Production(ProductionConfig::default()));
        }
        if let Some(rest) = s.strip_prefix("production:") {
            let mut cfg = ProductionConfig::default();
            if rest == "uniform" {
                cfg.weighting = RecencyWeighting::Uniform;
            } else if let Some(days) = rest.strip_suffix('d') {
                cfg.retention_days = days
                    .parse()
                    .map_err(|_| format!("bad retention '{rest}'"))?;
                if cfg.retention_days == 0 {
                    // Zero retention would expire even the current day:
                    // the aggregate stays empty and the policy never
                    // learns.
                    return Err("retention must be at least 1 day".into());
                }
            } else {
                let decay: f64 = rest.parse().map_err(|_| format!("bad decay '{rest}'"))?;
                if !(0.0..=1.0).contains(&decay) || decay == 0.0 {
                    return Err(format!("decay must be in (0, 1]: '{rest}'"));
                }
                cfg.weighting = RecencyWeighting::Exponential { decay };
            }
            return Ok(PolicySpec::Production(cfg));
        }
        if s == "hybrid" {
            return Ok(PolicySpec::Hybrid(HybridConfig::default()));
        }
        if let Some(rest) = s.strip_prefix("hybrid:") {
            let hours: usize = rest
                .trim_end_matches('h')
                .parse()
                .map_err(|_| format!("bad hybrid range '{rest}'"))?;
            return Ok(PolicySpec::Hybrid(HybridConfig::with_range_hours(hours)));
        }
        if let Some(rest) = s.strip_prefix("fixed:") {
            let minutes: u64 = rest
                .trim_end_matches("min")
                .parse()
                .map_err(|_| format!("bad fixed keep-alive '{rest}'"))?;
            return Ok(PolicySpec::fixed_minutes(minutes));
        }
        if s == "no-unloading" {
            return Ok(PolicySpec::NoUnloading);
        }
        Err(format!("unknown policy '{s}'"))
    }

    /// The canonical [`PolicySpec::parse`] string for this spec, when one
    /// exists. Specs built programmatically with knobs the grammar does
    /// not cover (custom cutoffs, decays plus retention, …) return
    /// `None`; persisting those requires the caller to re-supply the
    /// configuration (exactly like the daemon's own `--policy` restore
    /// contract).
    pub fn spec_str(&self) -> Option<String> {
        match self {
            PolicySpec::Fixed(f) if f.keep_alive_ms % MINUTE_MS == 0 => {
                Some(format!("fixed:{}", f.keep_alive_ms / MINUTE_MS))
            }
            PolicySpec::Fixed(_) => None,
            PolicySpec::NoUnloading => Some("no-unloading".into()),
            PolicySpec::Hybrid(h) => {
                let canonical = if h.range_minutes % 60 == 0 {
                    HybridConfig::with_range_hours(h.range_minutes / 60)
                } else {
                    return None;
                };
                if *h == canonical {
                    Some(if h.range_minutes == 240 {
                        "hybrid".into()
                    } else {
                        format!("hybrid:{}h", h.range_minutes / 60)
                    })
                } else {
                    None
                }
            }
            PolicySpec::Production(p) => {
                let default = ProductionConfig::default();
                let base = ProductionConfig {
                    retention_days: p.retention_days,
                    weighting: p.weighting,
                    ..default
                };
                if *p != base {
                    return None;
                }
                match (p.retention_days, p.weighting) {
                    (d, w) if d == default.retention_days && w == default.weighting => {
                        Some("production".into())
                    }
                    (d, w) if w == default.weighting => Some(format!("production:{d}d")),
                    (d, RecencyWeighting::Uniform) if d == default.retention_days => {
                        Some("production:uniform".into())
                    }
                    (d, RecencyWeighting::Exponential { decay }) if d == default.retention_days => {
                        Some(format!("production:{decay}"))
                    }
                    _ => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_production_variants() {
        assert_eq!(
            PolicySpec::parse("production").unwrap().label(),
            "production-240m-14d[5,99]exp0.85"
        );
        assert_eq!(
            PolicySpec::parse("production:7d").unwrap().label(),
            "production-240m-7d[5,99]exp0.85"
        );
        assert_eq!(
            PolicySpec::parse("production:0.5").unwrap().label(),
            "production-240m-14d[5,99]exp0.5"
        );
        assert_eq!(
            PolicySpec::parse("production:uniform").unwrap().label(),
            "production-240m-14d[5,99]uni"
        );
        assert!(PolicySpec::parse("production:nope").is_err());
        assert!(PolicySpec::parse("production:1.5").is_err());
        assert!(PolicySpec::parse("production:0").is_err());
        assert!(
            PolicySpec::parse("production:0d").is_err(),
            "zero retention would never learn"
        );
    }

    #[test]
    fn parse_base_forms() {
        assert_eq!(
            PolicySpec::parse("hybrid").unwrap().label(),
            "hybrid-4h[5,99]cv2"
        );
        assert_eq!(
            PolicySpec::parse("hybrid:2h").unwrap().label(),
            "hybrid-2h[5,99]cv2"
        );
        assert_eq!(
            PolicySpec::parse("fixed:10").unwrap().label(),
            "fixed-10min"
        );
        assert_eq!(
            PolicySpec::parse("fixed:10min").unwrap().label(),
            "fixed-10min"
        );
        assert_eq!(
            PolicySpec::parse("no-unloading").unwrap().label(),
            "no-unloading"
        );
        assert!(PolicySpec::parse("bogus").is_err());
    }

    #[test]
    fn spec_str_round_trips_parseable_specs() {
        for s in [
            "hybrid",
            "hybrid:2h",
            "fixed:10",
            "no-unloading",
            "production",
            "production:7d",
            "production:0.5",
            "production:uniform",
        ] {
            let spec = PolicySpec::parse(s).unwrap();
            let canon = spec.spec_str().unwrap();
            assert_eq!(PolicySpec::parse(&canon).unwrap(), spec, "{s} -> {canon}");
        }
        // `fixed:10min` normalizes to `fixed:10`.
        assert_eq!(
            PolicySpec::parse("fixed:10min")
                .unwrap()
                .spec_str()
                .unwrap(),
            "fixed:10"
        );
    }

    #[test]
    fn spec_str_refuses_unparseable_configs() {
        let custom = PolicySpec::Hybrid(HybridConfig::default().with_cv_threshold(5.0));
        assert_eq!(custom.spec_str(), None);
        let odd_fixed = PolicySpec::Fixed(FixedKeepAlive {
            keep_alive_ms: 90_500,
        });
        assert_eq!(odd_fixed.spec_str(), None);
    }

    #[test]
    fn new_policy_dispatches() {
        let mut p = PolicySpec::fixed_minutes(10).new_policy();
        assert_eq!(
            p.on_invocation(None),
            crate::Windows::keep_loaded(10 * MINUTE_MS)
        );
    }
}
