//! Reactor-model integration tests: connection-churn leak-freedom, the
//! slowloris idle-timeout regression, mid-frame disconnects while
//! batches are in flight, high fan-in on a small reactor pool, and
//! shutdown liveness with stuck clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sitw_serve::wire::{self, encode_request_frame, BinReply, ServerFrameDecode};
use sitw_serve::{ServeConfig, Server};
use sitw_sim::PolicySpec;

fn start_server(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("server start")
}

fn base_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    }
}

/// Polls `cond` until it holds or `timeout` passes.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Reads one SITW-BIN reply frame (blocking stream).
fn read_reply(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Vec<BinReply> {
    loop {
        match wire::decode_server_frame(buf) {
            ServerFrameDecode::Reply { records, consumed } => {
                buf.drain(..consumed);
                return records;
            }
            ServerFrameDecode::Incomplete => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk).expect("read");
                assert!(n > 0, "server closed mid-reply");
                buf.extend_from_slice(&chunk[..n]);
            }
            other => panic!("{other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Satellite bugfix regression: a slowloris client that sends half a
// message and stalls used to hold its connection (and, at shutdown, its
// thread) forever — there was no idle/read deadline at all. The reactor
// enforces `idle_timeout` on half-received messages.

#[test]
fn slowloris_half_message_is_disconnected_after_idle_timeout() {
    let server = start_server(ServeConfig {
        idle_timeout: Duration::from_millis(200),
        ..base_config()
    });

    // Half an HTTP header, then silence.
    let mut http = TcpStream::connect(server.addr()).unwrap();
    http.write_all(b"POST /inv").unwrap();
    // Half a SITW-BIN frame (magic + version only), then silence.
    let mut bin = TcpStream::connect(server.addr()).unwrap();
    bin.write_all(&[wire::BIN_MAGIC, wire::BIN_VERSION])
        .unwrap();
    // A malformed-but-delimited frame whose declared payload is only
    // partially sent, then silence: the typed error is answered but the
    // connection is mid-*skip* (parse buffer empty, the peer still owes
    // skip bytes) — the idle clock must cover that state too.
    let mut skip = TcpStream::connect(server.addr()).unwrap();
    let mut bad = vec![wire::BIN_MAGIC, wire::BIN_VERSION, wire::FRAME_REQUEST];
    // 1000 declared records cannot fit a 4 KiB payload: malformed,
    // decidable from the header alone, so the payload is a lazy skip.
    bad.extend_from_slice(&4096u32.to_le_bytes()); // payload_len
    bad.extend_from_slice(&1000u32.to_le_bytes()); // count
    bad.extend_from_slice(&[0u8; 64]); // only 64 of the 4096 skip bytes
    skip.write_all(&bad).unwrap();

    // All three must be disconnected (FIN ⇒ read reaches 0, after any
    // queued error frame) well within a few sweep ticks of the 200 ms
    // timeout. Before the reactor, these reads would sit here until the
    // test harness gave up.
    for stream in [&mut http, &mut bin, &mut skip] {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut chunk = [0u8; 256];
        loop {
            let n = stream.read(&mut chunk).expect("expected FIN, got timeout");
            if n == 0 {
                break; // Closed — possibly after a typed error frame.
            }
        }
    }
    assert!(
        wait_until(Duration::from_secs(2), || server.metrics().conns.live == 0),
        "slowloris connections must release their slab entries"
    );

    // A *fully idle* keep-alive connection is never timed out: after
    // sitting well past the idle timeout it still serves.
    let mut idle = TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(600));
    let body = br#"{"app":"patient","ts":1}"#;
    idle.write_all(
        format!(
            "POST /invoke HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    idle.write_all(body).unwrap();
    let mut resp = [0u8; 512];
    let n = idle.read(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp[..n]);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");

    // A slowloris that *resumes* within the timeout is served normally.
    let mut slow = TcpStream::connect(server.addr()).unwrap();
    slow.write_all(b"GET /heal").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    slow.write_all(b"thz HTTP/1.1\r\n\r\n").unwrap();
    let n = slow.read(&mut resp).unwrap();
    let text = String::from_utf8_lossy(&resp[..n]);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");

    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Connection-churn correctness: sequential connect/request/disconnect
// cycles must leak no reactor slab entries.

#[test]
fn thousand_connection_churn_leaks_nothing() {
    let server = start_server(base_config());
    let cycles = 1_000u64;
    for i in 0..cycles {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut frame = Vec::new();
        encode_request_frame(
            &mut frame,
            &[(format!("churn-{:03}", i % 500).as_str(), i * 7)],
        );
        stream.write_all(&frame).unwrap();
        let mut buf = Vec::new();
        let records = read_reply(&mut stream, &mut buf);
        assert_eq!(records.len(), 1);
        // Drop without shutdown: the reactor sees EOF (or RST) and must
        // retire the slab entry either way.
    }
    assert!(
        wait_until(Duration::from_secs(5), || server.metrics().conns.live == 0),
        "live connections must return to 0 after churn; got {}",
        server.metrics().conns.live
    );
    let m = server.metrics();
    assert!(m.conns.accepted >= cycles, "accepted {}", m.conns.accepted);
    assert!(
        m.conns.peak < 50,
        "sequential churn must not accumulate live connections (peak {})",
        m.conns.peak
    );
    assert_eq!(m.invocations(), cycles);
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Mid-frame disconnects: a client that dies while its batch is in
// flight must drop the pending frame without poisoning the shard reply
// path or the slab slot's next occupant.

#[test]
fn mid_frame_disconnect_drops_pending_batch_without_poisoning() {
    let server = start_server(base_config());

    // Scenario A: a full 1000-record frame, connection torn down
    // immediately — replies land after the connection is gone and must
    // be dropped by the slab generation check.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let records: Vec<(String, u64)> = (0..1_000)
            .map(|i| (format!("gone-{:03}", i % 200), 1_000 + i as u64))
            .collect();
        let borrowed: Vec<(&str, u64)> = records.iter().map(|(a, t)| (a.as_str(), *t)).collect();
        let mut frame = Vec::new();
        encode_request_frame(&mut frame, &borrowed);
        stream.write_all(&frame).unwrap();
        drop(stream); // No read: the reply hits a dead connection.
    }

    // Scenario B: half a frame, then disconnect mid-message.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut frame = Vec::new();
        encode_request_frame(&mut frame, &[("half", 1), ("frame", 2)]);
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(stream);
    }

    assert!(
        wait_until(Duration::from_secs(5), || server.metrics().conns.live == 0),
        "dead connections must be retired"
    );

    // The server is fully healthy: new connections serve, the same apps
    // keep their (already applied) state, and churned slab slots serve
    // their new occupants correctly.
    for round in 0..20 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut frame = Vec::new();
        encode_request_frame(
            &mut frame,
            &[("gone-000", 1_000_000 + round), ("fresh", 5 + round)],
        );
        stream.write_all(&frame).unwrap();
        let mut buf = Vec::new();
        let records = read_reply(&mut stream, &mut buf);
        assert_eq!(records.len(), 2, "round {round}");
        assert!(matches!(records[0], BinReply::Verdict { .. }));
    }

    // Scenario A's decisions were applied (the invocation happened even
    // though the reply was undeliverable) — the ledger of record is the
    // shard, not the connection.
    let m = server.metrics();
    assert!(m.invocations() >= 1_000 + 40);
    assert_eq!(m.proto.proto_errors, 0);
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// High fan-in: hundreds of concurrent keep-alive connections on the
// default two reactor threads (the CI smoke drives 256 via
// sitw-loadgen; the ignored stress below goes to 2048).

#[test]
fn two_hundred_fifty_six_concurrent_keepalive_connections() {
    let server = start_server(base_config());
    let n = 256usize;
    let mut conns: Vec<TcpStream> = (0..n)
        .map(|_| TcpStream::connect(server.addr()).unwrap())
        .collect();

    // All connections send one single-record frame...
    for (i, stream) in conns.iter_mut().enumerate() {
        let mut frame = Vec::new();
        encode_request_frame(&mut frame, &[(format!("fan-{i:03}").as_str(), 9)]);
        stream.write_all(&frame).unwrap();
    }
    // ...and all replies come back while every connection stays open.
    for stream in conns.iter_mut() {
        let mut buf = Vec::new();
        let records = read_reply(stream, &mut buf);
        assert!(matches!(records[0], BinReply::Verdict { cold: true, .. }));
    }
    let m = server.metrics();
    assert_eq!(m.conns.live as usize, n);
    assert!(m.conns.peak as usize >= n);
    assert_eq!(m.conns.reactor_threads, 2);
    assert_eq!(m.invocations(), n as u64);

    drop(conns);
    assert!(
        wait_until(Duration::from_secs(5), || server.metrics().conns.live == 0),
        "disconnects must drain the live gauge"
    );
    server.shutdown().unwrap();
}

/// The acceptance-scale stress: 2048 concurrent keep-alive connections
/// served by 4 reactor threads. Ignored in the default run (it wants a
/// raised file-descriptor limit and a few seconds); run with
/// `cargo test -p sitw-serve --test reactor -- --ignored`.
#[test]
#[ignore = "2048-connection stress; needs ~4300 fds and a few seconds"]
fn stress_2048_concurrent_connections_on_4_reactor_threads() {
    let fds = sitw_reactor_nofile(16_384);
    assert!(fds >= 6_000, "could not raise RLIMIT_NOFILE (got {fds})");
    let server = start_server(ServeConfig {
        reactor_threads: 4,
        ..base_config()
    });
    let n = 2_048usize;
    let mut conns: Vec<TcpStream> = (0..n)
        .map(|_| TcpStream::connect(server.addr()).unwrap())
        .collect();
    for (i, stream) in conns.iter_mut().enumerate() {
        let mut frame = Vec::new();
        encode_request_frame(&mut frame, &[(format!("mass-{i:04}").as_str(), 1)]);
        stream.write_all(&frame).unwrap();
    }
    for stream in conns.iter_mut() {
        let mut buf = Vec::new();
        let records = read_reply(stream, &mut buf);
        assert!(matches!(records[0], BinReply::Verdict { cold: true, .. }));
    }
    let m = server.metrics();
    assert_eq!(m.conns.live as usize, n);
    assert_eq!(m.conns.reactor_threads, 4);
    assert_eq!(m.invocations(), n as u64);

    // Mostly idle from here on: hold everything open a moment, then one
    // more request over a random survivor to prove the pool still
    // serves while loaded with idle sockets.
    std::thread::sleep(Duration::from_millis(300));
    let mut frame = Vec::new();
    encode_request_frame(&mut frame, &[("mass-0000", 120_000)]);
    conns[1_024].write_all(&frame).unwrap();
    let mut buf = Vec::new();
    let records = read_reply(&mut conns[1_024], &mut buf);
    assert!(matches!(records[0], BinReply::Verdict { .. }));

    drop(conns);
    assert!(
        wait_until(Duration::from_secs(10), || server.metrics().conns.live == 0),
        "2048 disconnects must drain the live gauge"
    );
    server.shutdown().unwrap();
}

/// Raises RLIMIT_NOFILE via the reactor crate (kept out of the test
/// body so the ignored test reads cleanly).
fn sitw_reactor_nofile(target: u64) -> u64 {
    sitw_reactor::raise_nofile_limit(target).unwrap_or(0)
}

// ---------------------------------------------------------------------
// Shutdown liveness: stuck clients (idle or slowloris) cannot hang a
// graceful shutdown.

#[test]
fn shutdown_completes_under_idle_and_slowloris_connections() {
    let server = start_server(base_config());
    let idle: Vec<TcpStream> = (0..50)
        .map(|_| TcpStream::connect(server.addr()).unwrap())
        .collect();
    let mut slow = TcpStream::connect(server.addr()).unwrap();
    slow.write_all(b"POST /invoke HTTP/1.1\r\ncontent-le")
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(2), || {
            server.metrics().conns.live == 51
        }),
        "all test connections registered"
    );

    let started = Instant::now();
    server.shutdown().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not wait on stuck clients (took {:?})",
        started.elapsed()
    );
    drop(idle);
    drop(slow);
}
