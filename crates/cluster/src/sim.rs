//! The offline cluster model: QoS admission composed with the fleet
//! simulator — the ground truth an online cluster is measured against.
//!
//! [`ClusterSim`] deliberately has no notion of nodes or placement.
//! Migration moves a tenant's complete state (policy histograms, ledger,
//! per-app windows) bit-for-bit via the snapshot text format, so *which*
//! node serves a tenant is invisible to verdicts: a single
//! [`FleetSim`] over the union registry models any placement, including
//! placements that change mid-replay. What the router adds beyond a
//! fleet node is exactly one thing — cluster-wide QoS admission — so the
//! model is `Admission ∘ FleetSim`, in arrival order:
//!
//! 1. a named tenant's invocation first passes the token bucket
//!    ([`ClusterOutcome::Throttled`] if it fails — no policy or ledger
//!    state advances, matching the router's reject-before-forward);
//! 2. admitted invocations step the fleet simulator, producing the same
//!    [`FleetVerdict`] / [`FleetError`] a node serves.
//!
//! The default tenant (id 0) never passes admission — the router cannot
//! rate-limit traffic it cannot attribute, and the model matches.

use sitw_fleet::{
    Admission, FleetError, FleetSim, FleetVerdict, QosPolicy, TenantId, TenantLedger,
    TenantRegistry, DEFAULT_TENANT,
};

/// The cluster's answer to one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterOutcome {
    /// Admitted and served: the node's verdict.
    Served(FleetVerdict),
    /// Rejected by QoS admission before reaching any node (HTTP 429 /
    /// the `Throttled` verdict bit). No state advanced.
    Throttled,
    /// Rejected by the serving node itself (unknown tenant, out of
    /// order).
    Rejected(FleetError),
}

/// Offline replay engine for a whole cluster: admission in front of one
/// fleet simulator over the union registry.
pub struct ClusterSim {
    fleet: FleetSim,
    admission: Admission,
    /// Tenant names by id (admission is name-keyed).
    names: Vec<String>,
}

impl ClusterSim {
    /// Builds the model from the cluster's union registry and its QoS
    /// table (`(tenant name, policy)`; tenants absent from `qos` admit
    /// everything).
    pub fn new(registry: &TenantRegistry, qos: &[(String, QosPolicy)]) -> Self {
        let mut admission = Admission::new();
        for (name, policy) in qos {
            admission.set_policy(name, *policy);
        }
        Self {
            fleet: FleetSim::new(registry),
            admission,
            names: registry.tenants().iter().map(|t| t.name.clone()).collect(),
        }
    }

    /// Replays one invocation, in cluster arrival order.
    pub fn step(&mut self, tenant: TenantId, app: &str, ts: u64) -> ClusterOutcome {
        if tenant != DEFAULT_TENANT {
            let Some(name) = self.names.get(tenant as usize) else {
                return ClusterOutcome::Rejected(FleetError::UnknownTenant(tenant));
            };
            if !self.admission.admit(name, ts) {
                return ClusterOutcome::Throttled;
            }
        }
        match self.fleet.step(tenant, app, ts) {
            Ok(v) => ClusterOutcome::Served(v),
            Err(e) => ClusterOutcome::Rejected(e),
        }
    }

    /// The ledger of one tenant (conservation assertions).
    pub fn ledger(&self, tenant: TenantId) -> Option<&TenantLedger> {
        self.fleet.ledger(tenant)
    }

    /// Throttle counts per tenant, sorted by name.
    pub fn throttled(&self) -> Vec<(String, u64)> {
        self.admission.throttled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::PolicySpec;
    use sitw_fleet::RateLimit;

    fn registry() -> TenantRegistry {
        let mut r = TenantRegistry::new(PolicySpec::fixed_minutes(10));
        r.register("gold", PolicySpec::fixed_minutes(10), 0)
            .unwrap();
        r.register("bronze", PolicySpec::fixed_minutes(10), 0)
            .unwrap();
        r
    }

    fn limited(per_sec: u32, burst: u32) -> QosPolicy {
        QosPolicy {
            class: Default::default(),
            rate: Some(RateLimit { per_sec, burst }),
        }
    }

    #[test]
    fn throttle_advances_no_state() {
        let r = registry();
        let tid = r.resolve("bronze").unwrap();
        let mut sim = ClusterSim::new(&r, &[("bronze".into(), limited(1, 1))]);
        assert!(matches!(sim.step(tid, "a", 0), ClusterOutcome::Served(_)));
        // Bucket empty: throttled, and the app's timeline is untouched —
        // the next admitted invocation still sees the original gap.
        assert_eq!(sim.step(tid, "a", 100), ClusterOutcome::Throttled);
        match sim.step(tid, "a", 1_000) {
            ClusterOutcome::Served(v) => assert!(!v.cold, "warm within keep-alive"),
            other => panic!("{other:?}"),
        }
        assert_eq!(sim.throttled(), vec![("bronze".into(), 1)]);
    }

    #[test]
    fn unlimited_tenants_and_default_always_admit() {
        let r = registry();
        let gold = r.resolve("gold").unwrap();
        let mut sim = ClusterSim::new(&r, &[("bronze".into(), limited(1, 1))]);
        for i in 0..50u64 {
            assert!(
                matches!(sim.step(gold, "g", i), ClusterOutcome::Served(_)),
                "no qos entry admits everything"
            );
            assert!(matches!(
                sim.step(DEFAULT_TENANT, "d", i),
                ClusterOutcome::Served(_)
            ));
        }
    }

    #[test]
    fn node_rejections_pass_through() {
        let r = registry();
        let tid = r.resolve("gold").unwrap();
        let mut sim = ClusterSim::new(&r, &[]);
        sim.step(tid, "a", 10_000);
        assert_eq!(
            sim.step(tid, "a", 5_000),
            ClusterOutcome::Rejected(FleetError::OutOfOrder { last_ts: 10_000 })
        );
        assert_eq!(
            sim.step(99, "a", 0),
            ClusterOutcome::Rejected(FleetError::UnknownTenant(99))
        );
    }
}
