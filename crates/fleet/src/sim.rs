//! The offline fleet simulator: the ground truth a fleet-mode daemon is
//! measured against.
//!
//! [`FleetSim`] replays a merged multi-tenant `(tenant, app, ts)` stream
//! through per-tenant policies and [`crate::TenantLedger`]s, producing
//! the exact verdict the daemon serves for each invocation — cold/warm,
//! pre-warm load, decision branch, the next windows, **and** the
//! eviction downgrades memory pressure forces. `sitw_sim` re-exports
//! [`fleet_verdict_trace`] next to its single-policy `verdict_trace`.
//!
//! The composition rule per invocation (identical in the daemon's shard
//! workers — the parity tests pin the two bit-for-bit):
//!
//! 1. classify the idle gap through
//!    [`sitw_core::Windows::classify_gap`] (single source of truth);
//! 2. if the app's image was **evicted during the gap**, downgrade the
//!    verdict to cold (and suppress the phantom pre-warm load);
//! 3. advance the tenant's policy to get the next windows;
//! 4. charge the ledger: the app is warm until
//!    [`sitw_core::Windows::loaded_until`], holding its deterministic
//!    Burr footprint; any victims the budget forces out are marked
//!    evicted for *their* next invocation.

use std::collections::HashMap;

use sitw_core::{AppKey, AppPolicy, DecisionKind, PolicySpec, ProductionManager, Windows};

use crate::footprint::footprint_mb;
use crate::ledger::TenantLedger;
use crate::registry::{TenantId, TenantRegistry};

/// One invocation of the merged multi-tenant stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEvent {
    /// Tenant the app belongs to.
    pub tenant: TenantId,
    /// Application id (namespaced per tenant).
    pub app: String,
    /// Invocation timestamp (trace milliseconds).
    pub ts: u64,
}

/// The verdict for one fleet invocation — exactly what the daemon
/// answers, so online and offline runs compare element by element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetVerdict {
    /// The invocation found no loaded image.
    pub cold: bool,
    /// A pre-warm load occurred in the gap ending here.
    pub prewarm_load: bool,
    /// The image was evicted for memory pressure during the gap (the
    /// verdict was downgraded to cold).
    pub evicted: bool,
    /// The policy branch that produced the windows.
    pub kind: DecisionKind,
    /// Windows governing the gap until the app's next invocation.
    pub windows: Windows,
}

/// Why a fleet invocation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The tenant id is not in the registry.
    UnknownTenant(TenantId),
    /// The timestamp is older than the app's last accepted one.
    OutOfOrder {
        /// The app's last accepted timestamp.
        last_ts: u64,
    },
}

/// Per-app offline state.
struct AppSim {
    /// Per-app policy instance (`None` in production mode, where state
    /// lives in the tenant's manager).
    policy: Option<Box<dyn AppPolicy + Send>>,
    /// Key into the tenant's production manager (production mode only).
    prod_key: AppKey,
    last_kind: DecisionKind,
    windows: Windows,
    last_ts: u64,
    /// The image was evicted during the gap in progress.
    evicted: bool,
    /// Deterministic Burr footprint, computed once at first sight
    /// (mirrors the daemon's per-app cache).
    footprint_mb: u64,
}

/// Per-tenant offline state.
struct TenantSim {
    name: String,
    policy: PolicySpec,
    ledger: TenantLedger,
    apps: HashMap<String, AppSim>,
    /// `Some` iff `policy` is [`PolicySpec::Production`].
    production: Option<ProductionManager>,
    next_key: AppKey,
}

/// The offline multi-tenant replay engine.
pub struct FleetSim {
    tenants: HashMap<TenantId, TenantSim>,
}

impl FleetSim {
    /// Builds a simulator for every tenant in `registry`.
    pub fn new(registry: &TenantRegistry) -> Self {
        let tenants = registry
            .tenants()
            .iter()
            .map(|spec| {
                let production = match &spec.policy {
                    PolicySpec::Production(cfg) => Some(ProductionManager::new(*cfg)),
                    _ => None,
                };
                (
                    spec.id,
                    TenantSim {
                        name: spec.name.clone(),
                        policy: spec.policy.clone(),
                        ledger: TenantLedger::new(spec.budget_mb),
                        apps: HashMap::new(),
                        production,
                        next_key: 0,
                    },
                )
            })
            .collect();
        Self { tenants }
    }

    /// Replays one invocation.
    pub fn step(
        &mut self,
        tenant: TenantId,
        app: &str,
        ts: u64,
    ) -> Result<FleetVerdict, FleetError> {
        let t = self
            .tenants
            .get_mut(&tenant)
            .ok_or(FleetError::UnknownTenant(tenant))?;

        let (verdict, mb) = match t.apps.get_mut(app) {
            None => {
                // First invocation: cold by definition (§5.1).
                let (policy, prod_key, windows, kind) = match &mut t.production {
                    Some(manager) => {
                        let key = t.next_key;
                        t.next_key += 1;
                        let (windows, kind) = manager.on_invocation(key, ts, None);
                        (None, key, windows, kind)
                    }
                    None => {
                        let mut policy = t.policy.new_policy();
                        let windows = policy.on_invocation(None);
                        let kind = policy.last_decision();
                        (Some(policy), 0, windows, kind)
                    }
                };
                let mb = footprint_mb(&t.name, app);
                t.apps.insert(
                    app.to_owned(),
                    AppSim {
                        policy,
                        prod_key,
                        last_kind: kind,
                        windows,
                        last_ts: ts,
                        evicted: false,
                        footprint_mb: mb,
                    },
                );
                (
                    FleetVerdict {
                        cold: true,
                        prewarm_load: false,
                        evicted: false,
                        kind,
                        windows,
                    },
                    mb,
                )
            }
            Some(state) => {
                if ts < state.last_ts {
                    return Err(FleetError::OutOfOrder {
                        last_ts: state.last_ts,
                    });
                }
                let idle = ts - state.last_ts;
                let outcome = state.windows.classify_gap(idle);
                let was_evicted = state.evicted;
                state.evicted = false;
                let (windows, kind) = match (&mut t.production, &mut state.policy) {
                    (Some(manager), _) => manager.on_invocation(state.prod_key, ts, Some(idle)),
                    (None, Some(policy)) => {
                        let windows = policy.on_invocation(Some(idle));
                        (windows, policy.last_decision())
                    }
                    (None, None) => unreachable!("non-production app has a policy"),
                };
                state.windows = windows;
                state.last_kind = kind;
                state.last_ts = ts;
                (
                    FleetVerdict {
                        cold: outcome.cold || was_evicted,
                        prewarm_load: outcome.prewarm_load && !was_evicted,
                        evicted: was_evicted,
                        kind,
                        windows,
                    },
                    state.footprint_mb,
                )
            }
        };

        // Charge the ledger and apply budget pressure. The just-invoked
        // app can itself be the victim when its footprint cannot fit.
        let expiry = verdict.windows.loaded_until(ts);
        for victim in t.ledger.charge(app, ts, expiry, mb) {
            if let Some(v) = t.apps.get_mut(&victim) {
                v.evicted = true;
            }
        }
        Ok(verdict)
    }

    /// The ledger of one tenant (stats/assertions).
    pub fn ledger(&self, tenant: TenantId) -> Option<&TenantLedger> {
        self.tenants.get(&tenant).map(|t| &t.ledger)
    }
}

/// Replays a merged multi-tenant event stream and returns one result per
/// event, in stream order — the offline ground truth for the fleet-mode
/// daemon (`sitw_serve`). Timestamps must be monotone non-decreasing per
/// `(tenant, app)`; violations surface as [`FleetError::OutOfOrder`],
/// exactly like the daemon's 409.
pub fn fleet_verdict_trace(
    events: &[FleetEvent],
    registry: &TenantRegistry,
) -> Vec<Result<FleetVerdict, FleetError>> {
    let mut sim = FleetSim::new(registry);
    events
        .iter()
        .map(|e| sim.step(e.tenant, &e.app, e.ts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::MINUTE_MS;

    fn registry(budget_mb: u64) -> TenantRegistry {
        let mut r = TenantRegistry::new(PolicySpec::fixed_minutes(10));
        r.register("metered", PolicySpec::fixed_minutes(10), budget_mb)
            .unwrap();
        r
    }

    #[test]
    fn unbudgeted_tenant_matches_plain_policy_semantics() {
        let r = registry(0);
        let mut sim = FleetSim::new(&r);
        let v0 = sim.step(0, "a", 0).unwrap();
        assert!(v0.cold && !v0.evicted);
        let v1 = sim.step(0, "a", 5 * MINUTE_MS).unwrap();
        assert!(!v1.cold);
        let v2 = sim.step(0, "a", 30 * MINUTE_MS).unwrap();
        assert!(
            v2.cold && !v2.evicted,
            "keep-alive lapse is not an eviction"
        );
        assert_eq!(sim.ledger(0).unwrap().stats().evictions, 0);
    }

    #[test]
    fn budget_pressure_downgrades_warm_to_cold_with_evicted_flag() {
        // A budget that fits exactly one of the tenant's apps: every
        // invocation of the other app evicts the first.
        let mut r = TenantRegistry::new(PolicySpec::fixed_minutes(10));
        let mb_a = footprint_mb("m", "a");
        let mb_b = footprint_mb("m", "b");
        let budget = mb_a.max(mb_b); // Holds either, never both.
        r.register("m", PolicySpec::fixed_minutes(10), budget)
            .unwrap();
        let tid = r.resolve("m").unwrap();
        let mut sim = FleetSim::new(&r);

        assert!(sim.step(tid, "a", 0).unwrap().cold);
        let vb = sim.step(tid, "b", 1_000).unwrap();
        assert!(vb.cold && !vb.evicted, "b's first invocation: plain cold");
        // a was evicted to fit b: its return inside the keep-alive window
        // is downgraded to cold and flagged.
        let va = sim.step(tid, "a", 2_000).unwrap();
        assert!(va.cold, "would be warm, but the image was evicted");
        assert!(va.evicted);
        assert!(!va.prewarm_load);
        assert!(sim.ledger(tid).unwrap().stats().evictions >= 1);
    }

    #[test]
    fn out_of_order_and_unknown_tenant_surface_as_errors() {
        let r = registry(0);
        let mut sim = FleetSim::new(&r);
        sim.step(0, "a", 10_000).unwrap();
        assert_eq!(
            sim.step(0, "a", 5_000),
            Err(FleetError::OutOfOrder { last_ts: 10_000 })
        );
        assert_eq!(sim.step(9, "a", 0), Err(FleetError::UnknownTenant(9)));
    }

    #[test]
    fn trace_matches_per_policy_verdict_trace_when_unbudgeted() {
        // With no budgets, the fleet trace must equal the single-policy
        // verdict trace app by app.
        let r = registry(0);
        let events: Vec<FleetEvent> = (0..120u64)
            .map(|i| FleetEvent {
                tenant: 0,
                app: format!("app-{}", i % 3),
                ts: i * 4 * MINUTE_MS,
            })
            .collect();
        let fleet = fleet_verdict_trace(&events, &r);

        for app_idx in 0..3u64 {
            let app = format!("app-{app_idx}");
            let stream: Vec<u64> = events
                .iter()
                .filter(|e| e.app == app)
                .map(|e| e.ts)
                .collect();
            let mut policy = PolicySpec::fixed_minutes(10).new_policy();
            let offline = sitw_sim_free_verdicts(&stream, policy.as_mut());
            let fleet_app: Vec<&FleetVerdict> = events
                .iter()
                .zip(&fleet)
                .filter(|(e, _)| e.app == app)
                .map(|(_, v)| v.as_ref().unwrap())
                .collect();
            assert_eq!(fleet_app.len(), offline.len());
            for (f, (cold, windows)) in fleet_app.iter().zip(&offline) {
                assert_eq!(f.cold, *cold);
                assert_eq!(f.windows, *windows);
                assert!(!f.evicted);
            }
        }
    }

    /// A minimal inline reimplementation of `sitw_sim::verdict_trace`
    /// (sim depends on this crate, not the other way around).
    fn sitw_sim_free_verdicts(
        events: &[u64],
        policy: &mut (dyn AppPolicy + Send),
    ) -> Vec<(bool, Windows)> {
        let mut out = Vec::new();
        let mut windows = policy.on_invocation(None);
        out.push((true, windows));
        let mut prev = events[0];
        for &t in &events[1..] {
            let outcome = windows.classify_gap(t - prev);
            windows = policy.on_invocation(Some(t - prev));
            out.push((outcome.cold, windows));
            prev = t;
        }
        out
    }

    #[test]
    fn production_tenant_day_aware_replay() {
        let mut r = TenantRegistry::new(PolicySpec::fixed_minutes(10));
        r.register("prod", PolicySpec::parse("production").unwrap(), 0)
            .unwrap();
        let tid = r.resolve("prod").unwrap();
        let events: Vec<FleetEvent> = (0..(3 * 48) as u64)
            .map(|i| FleetEvent {
                tenant: tid,
                app: "x".into(),
                ts: i * 30 * MINUTE_MS,
            })
            .collect();
        let verdicts = fleet_verdict_trace(&events, &r);
        let tail_ok = verdicts[verdicts.len() / 2..]
            .iter()
            .all(|v| !v.as_ref().unwrap().cold);
        assert!(tail_ok, "the 30-minute pattern must be learned");
    }
}
