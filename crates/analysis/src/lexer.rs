//! A hand-rolled Rust lexer, just deep enough to lint on: it separates
//! code from string literals and comments (so a banned token inside a
//! `"..."` or a `//` comment never fires), understands raw strings with
//! arbitrary `#` fences, nested block comments, byte strings, and the
//! `'a` lifetime vs `'a'` char-literal ambiguity, and tags every token
//! with its 1-based source line.
//!
//! No `syn` exists in this offline workspace; none is needed — every
//! rule in [`crate::rules`] works on this flat token stream plus brace
//! tracking.

/// What a token is. Punctuation is one character per token (`::` is two
/// `Punct(':')` tokens); rules match short sequences instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident`s).
    Ident,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`, `br"…"`); the token
    /// text is the literal's *content*, quotes and fences stripped, raw.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`); content text.
    Char,
    /// A lifetime (`'a`, `'static`); text without the tick.
    Lifetime,
    /// A numeric literal, consumed loosely (`0xFF_u64`, `1.5e3`).
    Num,
    /// One punctuation character.
    Punct(char),
    /// A `//…` or `/*…*/` comment; text without the delimiters.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind`] for what is stripped).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated literals consume
/// to end-of-file (the lint then sees fewer tokens, which is safe — a
/// file that does not parse does not compile either, and the compiler
/// is the authority on that).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let line = self.line;
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => self.string(line, self.i + 1, 0, false),
                b'r' | b'b' => self.raw_or_byte_prefix(),
                b'\'' => self.tick(line),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line),
                b'0'..=b'9' => self.number(line),
                _ => {
                    // Multi-byte UTF-8 only occurs inside literals,
                    // comments, and idents in this workspace; a stray
                    // byte becomes punctuation and is skipped whole.
                    let ch = char::from(c);
                    self.push(TokenKind::Punct(ch), ch.to_string(), line);
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1; // continuation bytes of the same char
                    }
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i + 2;
        let mut j = start;
        while j < self.b.len() && self.b[j] != b'\n' {
            j += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
        self.push(TokenKind::Comment, text, line);
        self.i = j;
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i + 2;
        let mut depth = 1usize;
        let mut j = start;
        while j < self.b.len() && depth > 0 {
            if self.b[j] == b'\n' {
                self.line += 1;
                j += 1;
            } else if self.b[j] == b'/' && self.b.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.b[j] == b'*' && self.b.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
            } else {
                j += 1;
            }
        }
        let end = j.saturating_sub(2).max(start);
        let text = String::from_utf8_lossy(&self.b[start..end]).into_owned();
        self.push(TokenKind::Comment, text, line);
        self.i = j;
    }

    /// A string literal starting at `content` (past the opening quote),
    /// closed by `"` followed by `fence` `#` characters; `raw` strings
    /// take backslashes literally.
    fn string(&mut self, line: u32, content: usize, fence: usize, raw: bool) {
        let mut j = content;
        loop {
            match self.b.get(j) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    j += 1;
                }
                Some(b'\\') if !raw => {
                    // A `\<newline>` continuation still ends a source
                    // line — count it, or every token after the string
                    // reports a stale line number.
                    if self.b.get(j + 1) == Some(&b'\n') {
                        self.line += 1;
                    }
                    j += 2;
                }
                Some(b'"') => {
                    let hashes = self.b[j + 1..]
                        .iter()
                        .take(fence)
                        .take_while(|&&c| c == b'#')
                        .count();
                    if hashes == fence {
                        let text = String::from_utf8_lossy(&self.b[content..j]).into_owned();
                        self.push(TokenKind::Str, text, line);
                        self.i = j + 1 + fence;
                        return;
                    }
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.b[content..]).into_owned();
        self.push(TokenKind::Str, text, line);
        self.i = self.b.len();
    }

    /// Dispatches `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `b'…'`, and raw
    /// idents `r#ident`; anything else starting with `r`/`b` is a plain
    /// identifier.
    fn raw_or_byte_prefix(&mut self) {
        let line = self.line;
        let c0 = self.b[self.i];
        let raw = c0 == b'r' || self.peek(1) == Some(b'r');
        let mut j = self.i + 1;
        if c0 == b'b' && self.peek(1) == Some(b'r') {
            j += 1;
        }
        // Count the # fence (raw strings and raw idents only).
        let fence_start = j;
        while raw && self.b.get(j) == Some(&b'#') {
            j += 1;
        }
        let fence = j - fence_start;
        match self.b.get(j) {
            Some(b'"') if raw || fence == 0 => {
                // r"…", r#"…"#, br"…", b"…".
                self.string(line, j + 1, fence, raw);
            }
            Some(b'\'') if c0 == b'b' && fence == 0 && self.b[self.i + 1] == b'\'' => {
                self.i = j;
                self.tick(line);
            }
            _ if fence > 0 && c0 == b'r' => {
                // Raw identifier r#ident.
                self.i = fence_start + 1; // past r#
                self.ident(line);
            }
            _ => self.ident(line),
        }
    }

    /// `'` — a char literal or a lifetime.
    fn tick(&mut self, line: u32) {
        let mut j = self.i + 1;
        match self.b.get(j) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing tick.
                j += 2;
                while j < self.b.len() && self.b[j] != b'\'' {
                    j += 1;
                }
                let text = String::from_utf8_lossy(&self.b[self.i + 1..j]).into_owned();
                self.push(TokenKind::Char, text, line);
                self.i = (j + 1).min(self.b.len());
            }
            Some(c) if c.is_ascii_alphanumeric() || *c == b'_' || *c & 0x80 != 0 => {
                // Identifier-ish run: `'x'` is a char, `'xyz` a lifetime.
                let start = j;
                while j < self.b.len()
                    && (self.b[j].is_ascii_alphanumeric()
                        || self.b[j] == b'_'
                        || self.b[j] & 0x80 != 0)
                {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
                    self.push(TokenKind::Char, text, line);
                    self.i = j + 1;
                } else {
                    let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
                    self.push(TokenKind::Lifetime, text, line);
                    self.i = j;
                }
            }
            _ => {
                // `'(' )` etc. — a quoted punctuation char literal, or a
                // stray tick; consume to the closing tick if adjacent.
                if self.b.get(j + 1) == Some(&b'\'') {
                    let text = String::from_utf8_lossy(&self.b[j..j + 1]).into_owned();
                    self.push(TokenKind::Char, text, line);
                    self.i = j + 2;
                } else {
                    self.push(TokenKind::Punct('\''), "'".to_string(), line);
                    self.i = j;
                }
            }
        }
    }

    fn ident(&mut self, line: u32) {
        let start = self.i;
        let mut j = self.i;
        while j < self.b.len()
            && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_' || self.b[j] & 0x80 != 0)
        {
            j += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
        self.push(TokenKind::Ident, text, line);
        self.i = j;
    }

    fn number(&mut self, line: u32) {
        let start = self.i;
        let mut j = self.i;
        while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
            j += 1;
        }
        // A fractional part or exponent: `1.5`, `1.5e-3` — but never a
        // range (`0..10`) or a method call on a literal (`1.max(2)`).
        if self.b.get(j) == Some(&b'.') && self.b.get(j + 1).is_some_and(u8::is_ascii_digit) {
            j += 1;
            while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
                j += 1;
            }
            if (self.b.get(j.wrapping_sub(1)) == Some(&b'e')
                || self.b.get(j.wrapping_sub(1)) == Some(&b'E'))
                && (self.b.get(j) == Some(&b'+') || self.b.get(j) == Some(&b'-'))
            {
                j += 1;
                while j < self.b.len() && self.b[j].is_ascii_digit() {
                    j += 1;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
        self.push(TokenKind::Num, text, line);
        self.i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn main() {\n    let x = 1;\n}");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("main"));
        assert!(toks[2].is_punct('('));
        assert_eq!(toks[0].line, 1);
        let let_tok = toks.iter().find(|t| t.is_ident("let")).unwrap();
        assert_eq!(let_tok.line, 2);
        assert_eq!(toks.last().unwrap().line, 3);
    }

    #[test]
    fn banned_words_inside_strings_and_comments_are_not_idents() {
        let toks = lex(r#"let s = "unsafe unwrap()"; // unsafe here too"#);
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1,
            "one string literal"
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Comment).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r####"let a = r#"say "unsafe""#; let b = r"x";"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, [r#"say "unsafe""#, "x"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"GET "; let c = b'\n'; let r = br"raw";"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, ["GET ", "raw"]);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\''; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0], "x");
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Comment).count(),
            1
        );
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert!(!toks.iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#fn = 1;");
        assert!(
            toks.iter().any(|t| t.is_ident("fn")),
            "r#fn lexes as ident fn"
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("for i in 0..10 { let x = 1.max(2); let f = 1.5e-3; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1", "2", "1.5e-3"]);
        assert!(toks.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panicking() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Str);
    }

    #[test]
    fn multiline_string_advances_line_counter() {
        let toks = lex("let s = \"a\nb\";\nfn f() {}");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn backslash_newline_continuation_advances_line_counter() {
        // Regression: the `\<newline>` escape used to be skipped as two
        // bytes without counting the newline, shifting every diagnostic
        // after such a string up by one line.
        let toks = lex("let s = \"a \\\n   b\";\nfn f() {}");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
    }
}
