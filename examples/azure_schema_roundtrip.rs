//! AzurePublicDataset interoperability: export a synthetic day in the
//! released trace's CSV layouts, read it back, and drive the simulator
//! from the reconstructed (minute-binned) trace — exactly what you would
//! do with the real Azure Functions trace files.
//!
//! Run with: `cargo run --release --example azure_schema_roundtrip`

#![forbid(unsafe_code)]

use serverless_in_the_wild::prelude::*;
use serverless_in_the_wild::sim::simulate_app;
use serverless_in_the_wild::trace::schema::{
    read_invocations_csv, trace_from_rows, write_durations_csv, write_invocations_csv,
    write_memory_csv,
};

fn main() {
    let population = build_population(&PopulationConfig {
        num_apps: 120,
        seed: 5,
    });
    let trace = generate_trace(
        &population,
        &TraceConfig {
            horizon_ms: DAY_MS,
            cap_per_day: 2_000.0,
            seed: 9,
        },
    );

    // Export the three dataset files for day 1.
    let mut invocations_csv = Vec::new();
    write_invocations_csv(&trace, 0, &mut invocations_csv).unwrap();
    let mut durations_csv = Vec::new();
    write_durations_csv(&population, &mut durations_csv).unwrap();
    let mut memory_csv = Vec::new();
    write_memory_csv(&population, &mut memory_csv).unwrap();
    println!(
        "exported: invocations {} KB, durations {} KB, memory {} KB",
        invocations_csv.len() / 1024,
        durations_csv.len() / 1024,
        memory_csv.len() / 1024
    );

    // Read the invocation counts back and rebuild a minute-binned trace.
    let rows = read_invocations_csv(invocations_csv.as_slice()).unwrap();
    println!(
        "parsed {} function rows ({} total invocations)",
        rows.len(),
        rows.iter()
            .map(|r| r.counts.iter().map(|&c| c as u64).sum::<u64>())
            .sum::<u64>()
    );
    let rebuilt = trace_from_rows(&[rows]);

    // Drive the simulator from the reconstructed trace.
    let mut colds_fixed = 0u64;
    let mut colds_hybrid = 0u64;
    for app in &rebuilt.apps {
        let mut fixed = FixedKeepAlive::minutes(10).new_policy();
        colds_fixed += simulate_app(&app.invocations, rebuilt.horizon_ms, &mut fixed).cold_starts;
        let mut hybrid = HybridConfig::default().new_policy();
        colds_hybrid += simulate_app(&app.invocations, rebuilt.horizon_ms, &mut hybrid).cold_starts;
    }
    println!(
        "simulated from the rebuilt trace: fixed-10min {colds_fixed} cold starts, \
         hybrid {colds_hybrid} cold starts"
    );
    println!(
        "drop the real AzurePublicDataset CSVs into `read_invocations_csv` to \
         replay production data instead"
    );
}
