//! Trace-generation throughput: population sampling and per-archetype
//! event stream generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sitw_trace::archetype::{generate_events, Archetype, TimerSpec};
use sitw_trace::{build_population, PopulationConfig, DAY_MS, HOUR_MS, MINUTE_MS};

fn bench_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_population");
    for n in [100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(build_population(&PopulationConfig {
                    num_apps: n,
                    seed: 1,
                }))
            })
        });
    }
    group.finish();
}

fn bench_archetypes(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_events_1day");
    let cases: Vec<(&str, Archetype, f64)> = vec![
        ("poisson_1k", Archetype::Poisson, 1_000.0),
        (
            "diurnal_1k",
            Archetype::Diurnal { peak_hour: 13.0 },
            1_000.0,
        ),
        (
            "bursty_1k",
            Archetype::Bursty {
                mean_burst_size: 8.0,
                intra_gap_ms: 10_000.0,
                peak_hour: 13.0,
            },
            1_000.0,
        ),
        (
            "timers_288",
            Archetype::Timers(vec![TimerSpec {
                period_ms: 5 * MINUTE_MS,
                phase_ms: 0,
            }]),
            288.0,
        ),
        (
            "rare_periodic",
            Archetype::RarePeriodic {
                period_ms: 6 * HOUR_MS,
                jitter_ms: 60_000.0,
            },
            4.0,
        ),
    ];
    for (name, arch, rate) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(generate_events(&arch, rate, DAY_MS, 1e9, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_population, bench_archetypes);
criterion_main!(benches);
