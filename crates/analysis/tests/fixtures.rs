//! Fixture self-tests: each seeded-violation fixture under
//! `tests/fixtures/<rule>/` must produce exactly its expected
//! diagnostics, and the clean fixture exactly none. These pin the
//! diagnostic format (`file:line: error[rule]: message`) — CI greps it.

use std::path::PathBuf;

use sitw_analysis::rules::Workspace;

fn fixture(name: &str) -> Workspace {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    Workspace::load(&root).expect("fixture tree readable")
}

fn rendered(ws: &Workspace) -> Vec<String> {
    ws.lint().iter().map(|d| d.to_string()).collect()
}

#[test]
fn unsafe_confinement_fixture_reports_both_findings() {
    assert_eq!(
        rendered(&fixture("unsafe_confinement")),
        [
            "src/lib.rs:1: error[unsafe-confinement]: crate root missing \
             `#![forbid(unsafe_code)]`",
            "src/lib.rs:5: error[unsafe-confinement]: `unsafe` outside crates/reactor \
             (the workspace's only unsafe crate)",
        ]
    );
}

#[test]
fn hot_path_alloc_fixture_reports_the_allocation() {
    assert_eq!(
        rendered(&fixture("hot_path_alloc")),
        [
            "src/lib.rs:7: error[hot-path-alloc]: `.to_string()` allocates a fresh String \
          inside a hot-path function"
        ]
    );
}

#[test]
fn panic_freedom_fixture_reports_the_unwrap() {
    assert_eq!(
        rendered(&fixture("panic_freedom")),
        [
            "src/lib.rs:7: error[panic-freedom]: `.unwrap()` can panic inside a hot-path \
          function; handle the None/Err arm"
        ]
    );
}

#[test]
fn clock_discipline_fixture_reports_the_instant() {
    assert_eq!(
        rendered(&fixture("clock_discipline")),
        [
            "src/lib.rs:8: error[clock-discipline]: `Instant::now` outside crates/telemetry \
          — route time through a telemetry Clock (or allow this bookkeeping site \
          explicitly)"
        ]
    );
}

#[test]
fn metrics_registry_fixture_reports_contract_breaks() {
    assert_eq!(
        rendered(&fixture("metrics_registry")),
        [
            "src/lib.rs:10: error[metrics-registry]: counter `sitw_serve_requests` must \
             end in `_total`",
            "src/lib.rs:10: error[metrics-registry]: series `sitw_serve_requests` is \
             declared but never used outside the registry",
            "src/lib.rs:16: error[metrics-registry]: series `sitw_serve_mystery_total` \
             is not declared in the metrics registry",
        ]
    );
}

#[test]
fn clean_fixture_is_clean() {
    let diags = fixture("clean").lint();
    assert!(
        diags.is_empty(),
        "golden fixture must lint clean: {diags:#?}"
    );
}

#[test]
fn the_workspace_itself_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace readable");
    let diags = ws.lint();
    assert!(
        diags.is_empty(),
        "the workspace must satisfy its own invariants:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
