//! Policy playground: feed hand-crafted idle-time sequences to one
//! hybrid-policy instance and watch its decisions evolve — the
//! per-application view of §4.2 and Figure 10.
//!
//! Run with: `cargo run --release --example policy_playground`

#![forbid(unsafe_code)]

use serverless_in_the_wild::prelude::*;

fn show(policy: &mut HybridPolicy, name: &str, idle_times_min: &[u64]) {
    println!("\n--- {name} ---");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>18}",
        "step", "IT (min)", "pre-warm", "keep-alive", "decision"
    );
    let mut w = policy.on_invocation(None);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>18?}",
        0,
        "-",
        fmt_min(w.pre_warm_ms),
        fmt_min(w.keep_alive_ms),
        policy.last_decision()
    );
    for (i, &it) in idle_times_min.iter().enumerate() {
        w = policy.on_invocation(Some(it * MINUTE_MS));
        // Print a sparse log: early steps and every 10th.
        if i < 3 || (i + 1) % 10 == 0 || i + 1 == idle_times_min.len() {
            println!(
                "{:>6} {:>10} {:>12} {:>12} {:>18?}",
                i + 1,
                it,
                fmt_min(w.pre_warm_ms),
                fmt_min(w.keep_alive_ms),
                policy.last_decision()
            );
        }
    }
    let d = policy.decisions();
    println!(
        "decisions: histogram {} | standard keep-alive {} | ARIMA {}",
        d.histogram, d.standard, d.arima
    );
}

fn fmt_min(ms: u64) -> String {
    if ms == u64::MAX {
        "inf".to_owned()
    } else {
        format!("{:.1}m", ms as f64 / MINUTE_MS as f64)
    }
}

fn main() {
    // 1. A sharply periodic app (cron-like, 10-minute period): the
    //    histogram concentrates and the policy unloads + pre-warms.
    let mut p = HybridConfig::default().new_policy();
    show(&mut p, "periodic every 10 minutes", &[10; 30]);

    // 2. Sub-minute chatter: idle times land in bin 0, so the policy
    //    keeps the app loaded with a tight keep-alive.
    let mut p = HybridConfig::default().new_policy();
    show(&mut p, "sub-minute chatter", &[0; 20]);

    // 3. Widely spread idle times: the bin-count CV stays low, so the
    //    policy stays conservative (standard keep-alive = histogram
    //    range).
    let mut p = HybridConfig::default().new_policy();
    let spread: Vec<u64> = (0..60).map(|i| (i * 37) % 239 + 1).collect();
    show(&mut p, "widely spread idle times", &spread);

    // 4. A rare IoT-style reporter with ~5 h idle times: out of the
    //    histogram's bounds, served by the ARIMA forecast with the
    //    paper's ±15% margin (5 h → pre-warm 4.25 h, keep-alive 1.5 h).
    let mut p = HybridConfig::default().new_policy();
    show(
        &mut p,
        "rare periodic (~300 min)",
        &[300, 302, 299, 301, 300, 298, 300, 301, 299, 300],
    );

    // 5. Regime change: 10-minute pattern shifts to 60 minutes; the
    //    histogram spreads (conservative) and then re-concentrates.
    let mut p = HybridConfig::default().new_policy();
    let mut regime: Vec<u64> = vec![10; 25];
    regime.extend(std::iter::repeat_n(60, 120));
    show(&mut p, "regime change 10 min → 60 min", &regime);
}
