//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `Bencher::iter` and
//! `Bencher::iter_batched_ref`) as a compact wall-clock harness: each
//! benchmark runs for a fixed time budget and reports mean time per
//! iteration plus derived throughput.
//!
//! Not statistically rigorous — no outlier analysis or regression
//! tracking — but sufficient to compare configurations and spot
//! order-of-magnitude changes. The per-benchmark budget defaults to
//! 300 ms and can be overridden with `SITW_BENCH_MS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default measurement budget per benchmark, in milliseconds.
const DEFAULT_BUDGET_MS: u64 = 300;

fn budget() -> Duration {
    let ms = std::env::var("SITW_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_BUDGET_MS);
    Duration::from_millis(ms.max(10))
}

/// Throughput annotation for a benchmark (scales the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How batched inputs are sized; accepted and ignored (the shim times
/// each routine invocation individually).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier of a parameterized benchmark, e.g. `fixed/10000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Measures closures: handed to benchmark callbacks as `|b| b.iter(..)`.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            total: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times repeated invocations of `routine` until the budget elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // Warm-up (fills caches, triggers lazy init).
                              // Benchmark harness: measuring wall time IS the job.
                              // sitw-lint: allow(clock-discipline)
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.total = elapsed;
                self.iters = iters;
                return;
            }
        }
    }

    /// Times `routine` against a fresh input from `setup` per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut warm = setup();
        black_box(routine(&mut warm));
        // sitw-lint: allow(clock-discipline)
        let wall = Instant::now();
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let mut input = setup();
            // sitw-lint: allow(clock-discipline)
            let start = Instant::now();
            black_box(routine(&mut input));
            measured += start.elapsed();
            iters += 1;
            if wall.elapsed() >= self.budget {
                self.total = measured;
                self.iters = iters;
                return;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1_000_000.0 {
        format!("{:.2} M{unit}/s", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("{:.2} K{unit}/s", per_sec / 1_000.0)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{name:<50} (no iterations)");
        return;
    }
    let per_iter = bencher.total / bencher.iters as u32;
    let per_iter_secs = bencher.total.as_secs_f64() / bencher.iters as f64;
    let mut line = format!(
        "{name:<50} {:>12}/iter ({} iters)",
        fmt_duration(per_iter),
        bencher.iters
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if per_iter_secs > 0.0 {
            line.push_str(&format!(
                "  {}",
                fmt_rate(count as f64 / per_iter_secs, unit)
            ));
        }
    }
    println!("{line}");
}

/// The top-level benchmark driver.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(budget());
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation applied to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim is time-budgeted rather
    /// than sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkId, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new(budget());
        f(&mut b);
        report(&full, &b, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<N: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new(budget());
        f(&mut b, input);
        report(&full, &b, self.throughput);
        self
    }

    /// Closes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(20));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters > 0);
        assert!(n >= b.iters);
    }

    #[test]
    fn batched_ref_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(20));
        b.iter_batched_ref(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("SITW_BENCH_MS", "10");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(8)).sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        std::env::remove_var("SITW_BENCH_MS");
    }
}
