//! Per-tenant QoS classes and deterministic admission rate limits.
//!
//! Memory budgets (the [`crate::ledger`]) bound how much a tenant may
//! *hold*; QoS bounds how fast it may *invoke*. A [`QosPolicy`] names a
//! service class and an optional [`RateLimit`]; admission is decided by
//! a [`TokenBucket`] that runs on **trace time** — the invocation
//! timestamps already flowing through every wire protocol — never the
//! wall clock. That choice is what keeps the repo's online==offline
//! discipline intact one level up: a router admitting a stream online
//! and `ClusterSim` replaying the same stream offline consult byte-for-
//! byte identical bucket states, so the throttled set is a pure function
//! of the event stream.
//!
//! Buckets are integer-valued (milli-tokens), like every other piece of
//! accounting in the fleet: no float drift, no platform variance.

use std::collections::HashMap;

/// A tenant's service class. Classes are ordered best-first; today they
/// are a label carried in metrics and admission decisions (all classes
/// admit until their rate limit says otherwise) — the scheduling hooks
/// for class-aware queueing sit one PR further out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum QosClass {
    /// Latency-sensitive, production traffic.
    Gold,
    /// Standard traffic (the default).
    #[default]
    Silver,
    /// Batch / best-effort traffic.
    Bronze,
}

impl QosClass {
    /// Parses `gold` | `silver` | `bronze`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "gold" => Ok(QosClass::Gold),
            "silver" => Ok(QosClass::Silver),
            "bronze" => Ok(QosClass::Bronze),
            other => Err(format!("unknown QoS class '{other}' (gold|silver|bronze)")),
        }
    }

    /// The metrics/CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            QosClass::Gold => "gold",
            QosClass::Silver => "silver",
            QosClass::Bronze => "bronze",
        }
    }
}

/// An invocation rate limit: sustained `per_sec` with a `burst` bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained invocations per second (trace time). Must be > 0.
    pub per_sec: u32,
    /// Bucket capacity in invocations; a quiet tenant may burst this
    /// many back-to-back. Always ≥ 1.
    pub burst: u32,
}

/// One tenant's QoS policy: a class plus an optional rate limit
/// (`None` = unlimited admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QosPolicy {
    /// Service class label.
    pub class: QosClass,
    /// Admission rate limit; `None` admits everything.
    pub rate: Option<RateLimit>,
}

impl QosPolicy {
    /// Parses the CLI grammar `CLASS[:rate=R[:burst=B]]`, e.g. `gold`,
    /// `silver:rate=100`, `bronze:rate=50:burst=200`. `burst` defaults
    /// to `rate` (a full second of credit).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let class = QosClass::parse(parts.next().unwrap_or(""))?;
        let mut rate: Option<u32> = None;
        let mut burst: Option<u32> = None;
        for part in parts {
            if let Some(v) = part.strip_prefix("rate=") {
                let r: u32 = v.parse().map_err(|_| format!("bad rate '{v}'"))?;
                if r == 0 {
                    return Err("rate must be > 0 (omit for unlimited)".into());
                }
                rate = Some(r);
            } else if let Some(v) = part.strip_prefix("burst=") {
                burst = Some(v.parse().map_err(|_| format!("bad burst '{v}'"))?);
            } else {
                return Err(format!(
                    "unknown QoS option '{part}' (expected rate=R or burst=B)"
                ));
            }
        }
        if burst.is_some() && rate.is_none() {
            return Err("burst without rate".into());
        }
        Ok(QosPolicy {
            class,
            rate: rate.map(|per_sec| RateLimit {
                per_sec,
                burst: burst.unwrap_or(per_sec).max(1),
            }),
        })
    }

    /// The canonical string form (`parse` round-trips it).
    pub fn label(&self) -> String {
        match self.rate {
            None => self.class.label().to_owned(),
            Some(r) => format!(
                "{}:rate={}:burst={}",
                self.class.label(),
                r.per_sec,
                r.burst
            ),
        }
    }
}

/// A deterministic token bucket in trace time.
///
/// State is integer milli-tokens: capacity `burst * 1000`, refill
/// `per_sec` milli-tokens per trace millisecond, one admission costs
/// `1000`. Timestamps may arrive non-monotone (merged multi-app
/// streams); a step backwards refills nothing but still charges, so the
/// decision sequence is a pure function of the *arrival-ordered* event
/// stream — the same contract [`crate::ledger::TenantLedger`] gives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    limit: RateLimit,
    level_milli: u64,
    last_ms: u64,
}

impl TokenBucket {
    /// A full bucket under `limit`.
    pub fn new(limit: RateLimit) -> Self {
        Self {
            limit,
            level_milli: limit.burst as u64 * 1000,
            last_ms: 0,
        }
    }

    /// Admits or throttles one invocation at trace time `ts_ms`.
    pub fn admit(&mut self, ts_ms: u64) -> bool {
        let dt = ts_ms.saturating_sub(self.last_ms);
        self.last_ms = self.last_ms.max(ts_ms);
        let cap = self.limit.burst as u64 * 1000;
        self.level_milli = cap.min(
            self.level_milli
                .saturating_add(dt.saturating_mul(self.limit.per_sec as u64)),
        );
        if self.level_milli >= 1000 {
            self.level_milli -= 1000;
            true
        } else {
            false
        }
    }
}

/// The admission table: per-tenant QoS policies and live bucket state,
/// keyed by tenant name (names survive restarts and id renumbering
/// across nodes, the same reason tenant→shard routing hashes names).
#[derive(Debug, Default)]
pub struct Admission {
    policies: HashMap<String, QosPolicy>,
    buckets: HashMap<String, TokenBucket>,
    throttled: HashMap<String, u64>,
}

impl Admission {
    /// An empty table (admits everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a tenant's policy; bucket state resets.
    pub fn set_policy(&mut self, tenant: &str, policy: QosPolicy) {
        match policy.rate {
            Some(limit) => {
                self.buckets
                    .insert(tenant.to_owned(), TokenBucket::new(limit));
            }
            None => {
                self.buckets.remove(tenant);
            }
        }
        self.policies.insert(tenant.to_owned(), policy);
    }

    /// The tenant's policy, if configured.
    pub fn policy(&self, tenant: &str) -> Option<&QosPolicy> {
        self.policies.get(tenant)
    }

    /// Admits or throttles one invocation of `tenant` at trace time
    /// `ts_ms`. Unconfigured tenants always admit.
    pub fn admit(&mut self, tenant: &str, ts_ms: u64) -> bool {
        match self.buckets.get_mut(tenant) {
            None => true,
            Some(bucket) => {
                let ok = bucket.admit(ts_ms);
                if !ok {
                    *self.throttled.entry(tenant.to_owned()).or_insert(0) += 1;
                }
                ok
            }
        }
    }

    /// Throttle counts per tenant, sorted by name.
    pub fn throttled(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .throttled
            .iter()
            .map(|(k, n)| (k.clone(), *n))
            .collect();
        v.sort();
        v
    }

    /// Configured policies, sorted by tenant name.
    pub fn policies(&self) -> Vec<(String, QosPolicy)> {
        let mut v: Vec<(String, QosPolicy)> =
            self.policies.iter().map(|(k, p)| (k.clone(), *p)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_policy_grammar_round_trips() {
        for s in [
            "gold",
            "silver:rate=100:burst=100",
            "bronze:rate=5:burst=20",
        ] {
            let p = QosPolicy::parse(s).unwrap();
            assert_eq!(p.label(), s);
            assert_eq!(QosPolicy::parse(&p.label()).unwrap(), p);
        }
        // burst defaults to rate.
        let p = QosPolicy::parse("silver:rate=7").unwrap();
        assert_eq!(p.rate.unwrap().burst, 7);
        assert!(QosPolicy::parse("platinum").is_err());
        assert!(QosPolicy::parse("gold:rate=0").is_err());
        assert!(QosPolicy::parse("gold:burst=5").is_err());
        assert!(QosPolicy::parse("gold:nope=1").is_err());
    }

    #[test]
    fn bucket_bursts_then_throttles_then_refills() {
        let mut b = TokenBucket::new(RateLimit {
            per_sec: 1,
            burst: 2,
        });
        // Full bucket: two back-to-back admits, third throttles.
        assert!(b.admit(0));
        assert!(b.admit(0));
        assert!(!b.admit(0));
        // 1/s refill: at t=999 ms still short, at t=1000 one token back.
        assert!(!b.admit(999));
        assert!(b.admit(1_000));
        assert!(!b.admit(1_000));
    }

    #[test]
    fn bucket_is_deterministic_and_monotone_safe() {
        let limit = RateLimit {
            per_sec: 10,
            burst: 5,
        };
        let ts = [0u64, 100, 50, 200, 200, 5_000, 5_001, 5_002];
        let run = |ts: &[u64]| {
            let mut b = TokenBucket::new(limit);
            ts.iter().map(|&t| b.admit(t)).collect::<Vec<_>>()
        };
        // Same stream, same verdicts — including the backwards step.
        assert_eq!(run(&ts), run(&ts));
    }

    #[test]
    fn admission_table_counts_throttles_per_tenant() {
        let mut a = Admission::new();
        a.set_policy("t1", QosPolicy::parse("bronze:rate=1:burst=1").unwrap());
        assert!(a.admit("t0", 0), "unconfigured tenants always admit");
        assert!(a.admit("t1", 0));
        assert!(!a.admit("t1", 0));
        assert!(!a.admit("t1", 10));
        assert_eq!(a.throttled(), vec![("t1".to_owned(), 2)]);
        assert_eq!(a.policy("t1").unwrap().class, QosClass::Bronze);
        assert!(a.policy("t0").is_none());
    }
}
