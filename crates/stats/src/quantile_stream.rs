//! Streaming quantile estimation (the P² algorithm).
//!
//! Platform-side latency percentiles (§5.3 reports the 99th-percentile
//! execution time) should not require retaining every sample; P² (Jain &
//! Chlamtac, 1985) tracks one quantile with five markers in O(1) memory
//! and O(1) per observation, which is what a production controller would
//! deploy.

/// P² estimator for a single quantile.
///
/// # Examples
///
/// ```
/// use sitw_stats::quantile_stream::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5);
/// for i in 1..=1000 {
///     q.observe(i as f64);
/// }
/// let median = q.estimate().unwrap();
/// assert!((median - 500.0).abs() < 25.0);
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the quantile positions).
    heights: [f64; 5],
    /// Marker positions (1-based sample ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// The first five observations, before the estimator activates.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile (`0 < p < 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        Self {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find the cell containing x and bump marker positions.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers with parabolic (or linear) moves.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate; `None` before any observation. For fewer than
    /// five observations, falls back to the exact order statistic.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut xs = self.initial.clone();
            xs.sort_by(f64::total_cmp);
            let idx = ((xs.len() as f64 - 1.0) * self.p).round() as usize;
            return Some(xs[idx]);
        }
        Some(self.heights[2])
    }
}

/// A bundle of P² estimators for the percentiles platform reports need
/// (p50, p75, p90, p99 by default).
#[derive(Debug, Clone)]
pub struct StreamingPercentiles {
    estimators: Vec<P2Quantile>,
}

impl StreamingPercentiles {
    /// Creates the default p50/p75/p90/p99 bundle.
    pub fn standard() -> Self {
        Self::for_quantiles(&[0.50, 0.75, 0.90, 0.99])
    }

    /// Creates estimators for arbitrary quantiles.
    ///
    /// # Panics
    ///
    /// Panics when `qs` is empty or contains values outside `(0, 1)`.
    pub fn for_quantiles(qs: &[f64]) -> Self {
        assert!(!qs.is_empty());
        Self {
            estimators: qs.iter().map(|&q| P2Quantile::new(q)).collect(),
        }
    }

    /// Adds one observation to all estimators.
    pub fn observe(&mut self, x: f64) {
        for e in &mut self.estimators {
            e.observe(x);
        }
    }

    /// Current `(quantile, estimate)` pairs (empty before data arrives).
    pub fn estimates(&self) -> Vec<(f64, f64)> {
        self.estimators
            .iter()
            .filter_map(|e| e.estimate().map(|v| (e.quantile(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert!(q.estimate().is_none());
        q.observe(10.0);
        assert_eq!(q.estimate(), Some(10.0));
        q.observe(20.0);
        q.observe(0.0);
        let est = q.estimate().unwrap();
        assert_eq!(est, 10.0);
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut q = P2Quantile::new(0.5);
        for _ in 0..100_000 {
            q.observe(rng.random::<f64>());
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median {est}");
    }

    #[test]
    fn p99_of_exponential_stream() {
        // Exp(1): p99 = ln(100) ≈ 4.605.
        let mut rng = StdRng::seed_from_u64(2);
        let mut q = P2Quantile::new(0.99);
        for _ in 0..200_000 {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            q.observe(-u.ln());
        }
        let est = q.estimate().unwrap();
        assert!((est - 4.605).abs() < 0.25, "p99 {est}");
    }

    #[test]
    fn monotone_streams_track() {
        let mut q = P2Quantile::new(0.9);
        for i in 0..10_000 {
            q.observe(i as f64);
        }
        let est = q.estimate().unwrap();
        assert!((est - 9_000.0).abs() < 300.0, "p90 {est}");
    }

    #[test]
    fn bundle_is_ordered() {
        let mut s = StreamingPercentiles::standard();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            s.observe(rng.random::<f64>() * 100.0);
        }
        let est = s.estimates();
        assert_eq!(est.len(), 4);
        assert!(est.windows(2).all(|w| w[0].1 <= w[1].1), "{est:?}");
        assert!((est[0].1 - 50.0).abs() < 2.0);
        assert!((est[3].1 - 99.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_bad_quantile() {
        P2Quantile::new(1.0);
    }
}
