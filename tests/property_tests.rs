//! Property-based tests (proptest) over the core data structures and the
//! simulator's conservation laws.

use proptest::prelude::*;
use serverless_in_the_wild::prelude::*;
use serverless_in_the_wild::sim::simulate_app;
use serverless_in_the_wild::stats::{percentile_sorted, RangeHistogram, Welford};

proptest! {
    /// Welford must match the two-pass mean/variance on any input.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.population_variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    /// Merging two Welford accumulators equals accumulating everything.
    #[test]
    fn welford_merge_associative(
        xs in prop::collection::vec(-1.0e3f64..1.0e3, 0..100),
        ys in prop::collection::vec(-1.0e3f64..1.0e3, 0..100),
    ) {
        let mut a = Welford::new();
        for &x in &xs { a.push(x); }
        let mut b = Welford::new();
        for &y in &ys { b.push(y); }
        a.merge(&b);
        let mut whole = Welford::new();
        for &v in xs.iter().chain(&ys) { whole.push(v); }
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    /// Percentiles are monotone in `p` and bounded by min/max.
    #[test]
    fn percentiles_monotone(
        mut xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        xs.sort_by(f64::total_cmp);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile_sorted(&xs, lo);
        let b = percentile_sorted(&xs, hi);
        prop_assert!(a <= b);
        prop_assert!(a >= xs[0] && b <= *xs.last().unwrap());
    }

    /// Histogram counts are conserved and percentile bins ordered.
    #[test]
    fn histogram_invariants(values in prop::collection::vec(0u64..500, 0..300)) {
        let mut h = RangeHistogram::new(240, 1);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total_count(), values.len() as u64);
        let in_bounds = values.iter().filter(|&&v| v < 240).count() as u64;
        prop_assert_eq!(h.in_bounds_count(), in_bounds);
        prop_assert_eq!(h.bins().iter().map(|&c| c as u64).sum::<u64>(), in_bounds);
        if in_bounds > 0 {
            let head = h.head_value(5.0).unwrap();
            let tail = h.tail_value(99.0).unwrap();
            prop_assert!(head < tail);
            // Head/tail bracket the in-bounds values: with 1-unit bins
            // the head's lower edge is at least the minimum value and
            // the tail's upper edge at most the maximum + 1.
            let min_in = *values.iter().filter(|&&v| v < 240).min().unwrap();
            let max_in = *values.iter().filter(|&&v| v < 240).max().unwrap();
            prop_assert!(head >= min_in);
            prop_assert!(tail <= max_in + 1);
        } else {
            prop_assert!(h.head_value(5.0).is_none());
        }
    }

    /// The simulator conserves invocations and bounds waste by the
    /// horizon-scaled load for any policy and event sequence.
    #[test]
    fn simulator_conservation(
        gaps in prop::collection::vec(0u64..500, 1..80),
        ka_minutes in 1u64..300,
    ) {
        // Build a sorted event sequence from minute gaps.
        let mut events = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in &gaps {
            t += g * 60_000;
            events.push(t);
        }
        let horizon = t + 10 * 60_000;

        let mut fixed = FixedKeepAlive::minutes(ka_minutes).new_policy();
        let r = simulate_app(&events, horizon, &mut fixed);
        prop_assert_eq!(r.invocations, events.len() as u64);
        prop_assert!(r.cold_starts >= 1);
        prop_assert!(r.cold_starts <= r.invocations);
        // Waste under a fixed policy is at most ka per gap plus the tail.
        let bound = (events.len() as u64) * ka_minutes * 60_000;
        prop_assert!(r.wasted_ms <= bound);

        let mut hybrid = HybridConfig::default().new_policy();
        let rh = simulate_app(&events, horizon, &mut hybrid);
        prop_assert_eq!(rh.invocations, events.len() as u64);
        prop_assert!(rh.cold_starts >= 1);
        // The hybrid policy can never hold memory beyond the horizon's
        // total span per "loaded" stretch: waste < total horizon.
        prop_assert!(rh.wasted_ms <= horizon);
    }

    /// The hybrid policy always emits sane windows: keep-alive positive,
    /// pre-warm bounded by the ARIMA/histogram ranges.
    #[test]
    fn hybrid_windows_sane(its in prop::collection::vec(0u64..2_000, 1..120)) {
        let mut policy = HybridConfig::default().new_policy();
        let mut w = policy.on_invocation(None);
        for &it in &its {
            prop_assert!(w.keep_alive_ms > 0);
            w = policy.on_invocation(Some(it * 60_000));
        }
        let d = policy.decisions();
        prop_assert_eq!(d.total(), its.len() as u64 + 1);
    }

    /// Longer fixed keep-alive never yields more cold starts on the same
    /// stream (per-app monotonicity backing Figure 14).
    #[test]
    fn fixed_keepalive_monotone(gaps in prop::collection::vec(1u64..400, 1..60)) {
        let mut events = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in &gaps {
            t += g * 60_000;
            events.push(t);
        }
        let horizon = t + 60_000;
        let mut prev = u64::MAX;
        for ka in [5u64, 15, 45, 120, 360] {
            let mut p = FixedKeepAlive::minutes(ka).new_policy();
            let r = simulate_app(&events, horizon, &mut p);
            prop_assert!(r.cold_starts <= prev);
            prev = r.cold_starts;
        }
    }

    /// ECDF quantiles are inverse-consistent with evaluation.
    #[test]
    fn ecdf_quantile_consistency(xs in prop::collection::vec(-1.0e3f64..1.0e3, 1..200)) {
        let e = Ecdf::new(xs);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = e.quantile(q);
            // At least a q-fraction of samples is ≤ v (within one step).
            let f = e.eval(v);
            prop_assert!(f + 1.0 / e.len() as f64 + 1e-12 >= q);
        }
    }
}
