//! The daemon: listener, acceptor, the reactor pool, and lifecycle
//! (restore → serve → snapshot → shutdown).
//!
//! Threading model: **one acceptor thread, a small fixed pool of
//! reactor threads** ([`ServeConfig::reactor_threads`], see
//! [`crate::reactor`]), **and N shard worker threads**. The acceptor
//! only accepts: each new socket is made non-blocking and handed
//! round-robin to a reactor, which multiplexes all of its connections
//! over epoll — thousands of mostly idle keep-alive clients cost a slab
//! entry each, not an OS thread and stack. A reactor parses messages
//! incrementally ([`crate::http::ConnBuf::read_event_into`]), routes
//! `(tenant, app)` to a shard — default-tenant apps by app hash, named
//! tenants whole by tenant hash (see
//! [`sitw_fleet::TenantRegistry::shard_of`]) — and dispatches with a
//! [`crate::reactor::ReplySink`] naming the connection's slab token;
//! shards reply out of band into the reactor's eventfd-woken queue.
//!
//! Per connection, every inbound message (JSON request, SITW-BIN frame,
//! control request) occupies one slot in an ordered response pipeline
//! ([`crate::conn`]); responses render strictly from the head, so
//! HTTP/1.1 response ordering — and frame ordering under server-side
//! SITW-BIN pipelining, and ordering across protocol switches — holds by
//! construction while any number of decisions are in flight (bounded by
//! [`ServeConfig::pipeline_window`] per connection).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sitw_core::HybridConfig;
use sitw_fleet::{
    LedgerExport, TenantId, TenantRegistry, TenantSpec, DEFAULT_TENANT, DEFAULT_TENANT_NAME,
};
use sitw_reactor::Waker;
use sitw_sim::PolicySpec;

use sitw_telemetry::{EventKind, EventRing, FlightRecorder, LifecycleEvent, WallClock};

use crate::http::{write_response, Request};
use crate::metrics::{ConnStats, MetricsReport, ProtoStats, ReactorStats, ReplStats, ShardStats};
use crate::reactor::{reactor_loop, ReactorMsg, ReactorRef};
use crate::shard::{shard_of, ShardMsg, ShardWorker, TenantRestore};
use crate::snapshot::{
    decode_tenant_section, encode_tenant_section, AppRecord, ShardExport, Snapshot, SnapshotError,
    TenantSnapshot,
};
use crate::telem::{merge_spans, ShardTelem, TelemClock, TelemCtx, EVENT_RING, TRACE_RING};
use crate::wire::{self, push_u64, ControlReply, ControlRequest, TenantUsage};

/// One tenant in the server configuration (CLI `--tenant`, a tenants
/// file, or programmatic [`ServeConfig::tenants`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Tenant name.
    pub name: String,
    /// The policy the tenant's apps are served under.
    pub policy: PolicySpec,
    /// Keep-alive memory budget in MB (0 = unlimited).
    pub budget_mb: u64,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS choose.
    pub addr: String,
    /// Number of shard worker threads (≥ 1).
    pub shards: usize,
    /// The policy the default tenant's applications are served under.
    pub policy: PolicySpec,
    /// Named tenants (each with its own policy and budget); registered
    /// in order, ids 1..=N. More can be added at runtime via
    /// `POST /admin/tenants`.
    pub tenants: Vec<TenantConfig>,
    /// When set, a snapshot is written here on graceful shutdown and on
    /// `POST /admin/snapshot`.
    pub snapshot_path: Option<PathBuf>,
    /// When set and the file exists, state is restored from it at start.
    pub restore_path: Option<PathBuf>,
    /// An in-memory snapshot to restore from, taking precedence over
    /// [`ServeConfig::restore_path`] — the promotion path: a follower
    /// hands the replicated state it accumulated straight to the server
    /// it starts, no disk round-trip.
    pub restore_snapshot: Option<Snapshot>,
    /// The reactor poll tick: bounds how quickly shutdowns propagate and
    /// how often the slowloris sweep runs. (Historically the per-socket
    /// read timeout, which bounded the same things.)
    pub read_timeout: Duration,
    /// Maximum in-flight decisions per connection (JSON requests, and
    /// records across in-flight SITW-BIN frames).
    pub pipeline_window: usize,
    /// Event-loop threads multiplexing the connections (≥ 1). A handful
    /// serves thousands of mostly idle keep-alive connections; the shard
    /// count, not this, sets decision throughput.
    pub reactor_threads: usize,
    /// How long a *half-received* message may sit without progress
    /// before the connection is closed (slowloris defense, and the bound
    /// on how long a dead client can hold a slab slot mid-message).
    /// Fully idle keep-alive connections are never timed out.
    pub idle_timeout: Duration,
    /// Flight-recorder + per-stage histogram telemetry (on by default).
    /// When off, the hot path does no clock reads at all; `/metrics`
    /// still serves throughput counters, but stage histograms and the
    /// `/debug/*` endpoints come back empty.
    pub telemetry: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7071".into(),
            shards: 4,
            policy: PolicySpec::Hybrid(HybridConfig::default()),
            tenants: Vec::new(),
            snapshot_path: None,
            restore_path: None,
            restore_snapshot: None,
            read_timeout: Duration::from_millis(50),
            pipeline_window: 128,
            reactor_threads: 2,
            idle_timeout: Duration::from_secs(10),
            telemetry: true,
        }
    }
}

/// Replication-source bookkeeping: one logical follower pulling the
/// delta stream. Guarded by a plain mutex — rounds are control-plane
/// (one per pull interval), never on the decision path.
#[derive(Debug, Default)]
struct ReplState {
    /// Epoch of the last committed round (0 = no round served yet).
    epoch: u64,
    /// Per-shard dirty frontiers: the `mutation_seq` each shard
    /// reported last round, fed back as `since` on the next. Empty
    /// until the first full sync.
    frontiers: Vec<u64>,
    rounds: u64,
    full_syncs: u64,
    apps_streamed: u64,
    bytes_streamed: u64,
    /// Uptime ms of the last served pull (0 = never pulled).
    last_pull_ms: u64,
}

/// Shared state every reactor thread sees.
pub(crate) struct ServerCtx {
    pub(crate) cfg: ServeConfig,
    addr: SocketAddr,
    pub(crate) shard_txs: Vec<Sender<ShardMsg>>,
    /// The tenant registry. Read-locked briefly per message to resolve
    /// names/ids and routes; write-locked only by the admin registration
    /// path. Decision state itself stays lock-free in the shards.
    pub(crate) registry: RwLock<TenantRegistry>,
    pub(crate) shutdown: AtomicBool,
    started: Instant,
    /// SITW-BIN frames served (server-wide; connections are unsharded).
    pub(crate) frames: AtomicU64,
    /// Decisions delivered through batched binary frames.
    pub(crate) batched_decisions: AtomicU64,
    /// Typed SITW-BIN protocol errors answered.
    pub(crate) proto_errors: AtomicU64,
    /// SITW-BIN control frames served (reports + budget pushes).
    pub(crate) ctrl_frames: AtomicU64,
    /// Connections accepted since start.
    pub(crate) conns_accepted: AtomicU64,
    /// Connections currently registered with a reactor (or in flight to
    /// one). Incremented by the acceptor, decremented when a reactor
    /// retires the slab entry — so "live returns to 0" proves the slab
    /// leaked nothing.
    pub(crate) conns_live: AtomicU64,
    /// High-water mark of `conns_live`.
    pub(crate) conns_peak: AtomicU64,
    /// The reactor pool's queues and wakers.
    pub(crate) reactors: Vec<ReactorRef>,
    /// Shared telemetry state: per-reactor flight recorders/histograms,
    /// per-shard recorders, and inbox depth gauges.
    pub(crate) telem: TelemCtx,
    /// Replication-source state (followers pull via `FRAME_REPL_ACK`).
    repl: Mutex<ReplState>,
    /// Why the configured restore was skipped at start (corrupt
    /// snapshot file): the daemon serves from empty state and surfaces
    /// the reason on `/healthz` instead of refusing to start.
    restore_error: Option<String>,
}

impl ServerCtx {
    fn scrape(&self) -> MetricsReport {
        let mut shards: Vec<ShardStats> = Vec::with_capacity(self.shard_txs.len());
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardMsg::Scrape(reply_tx)).is_ok() {
                if let Ok(stats) = reply_rx.recv() {
                    shards.push(stats);
                }
            }
        }
        shards.sort_by_key(|s| s.shard);
        let mut reactors: Vec<ReactorStats> = Vec::new();
        if self.telem.enabled {
            for (i, shared) in self.telem.reactors.iter().enumerate() {
                // Brief blocking lock: recording sites only try_lock and
                // never hold the guard across a wait, so this settles fast.
                let t = shared.lock().expect("reactor telemetry poisoned");
                let (queue_depth, queue_peak) = self.telem.reactor_gauges[i].read();
                reactors.push(ReactorStats {
                    reactor: i,
                    read: t.read.clone(),
                    decode: t.decode.clone(),
                    render: t.render.clone(),
                    write: t.write.clone(),
                    epoll_waits: t.epoll_waits,
                    epoll_wait_ns: t.epoll_wait_ns,
                    wakeups: t.wakeups,
                    events_per_wake: t.events_per_wake.clone(),
                    write_bursts: t.write_bursts.clone(),
                    bp_pauses: t.bp_pauses,
                    bp_resumes: t.bp_resumes,
                    queue_depth,
                    queue_peak,
                });
            }
        }
        MetricsReport {
            shards,
            reactors,
            proto: ProtoStats {
                frames: self.frames.load(Ordering::Relaxed),
                batched_decisions: self.batched_decisions.load(Ordering::Relaxed),
                proto_errors: self.proto_errors.load(Ordering::Relaxed),
                control_frames: self.ctrl_frames.load(Ordering::Relaxed),
            },
            conns: ConnStats {
                live: self.conns_live.load(Ordering::Relaxed),
                accepted: self.conns_accepted.load(Ordering::Relaxed),
                peak: self.conns_peak.load(Ordering::Relaxed),
                reactor_threads: self.reactors.len() as u64,
            },
            repl: {
                let uptime_ms = self.started.elapsed().as_millis() as u64;
                let repl = match self.repl.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                ReplStats {
                    epoch: repl.epoch,
                    rounds: repl.rounds,
                    full_syncs: repl.full_syncs,
                    apps_streamed: repl.apps_streamed,
                    bytes_streamed: repl.bytes_streamed,
                    lag_ms: if repl.last_pull_ms == 0 {
                        0
                    } else {
                        uptime_ms.saturating_sub(repl.last_pull_ms)
                    },
                }
            },
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }

    /// Resolves `(tenant name, app)` to the owning shard and asks it to
    /// render the app's live policy state (decision provenance). `None`
    /// when the tenant name or app is unknown.
    fn policy_probe(&self, tenant: &str, app: &str) -> Option<String> {
        let (id, shard) = {
            let registry = match self.registry.read() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let id = registry.resolve(tenant)?;
            (id, registry.shard_of(id, app, self.shard_txs.len()))
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        self.shard_txs[shard]
            .send(ShardMsg::PolicyProbe {
                tenant: id,
                app: app.to_owned(),
                reply: reply_tx,
            })
            .ok()?;
        reply_rx.recv().ok()?
    }

    fn snapshot(&self) -> Snapshot {
        let mut exports: Vec<ShardExport> = Vec::new();
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardMsg::Snapshot(reply_tx)).is_ok() {
                if let Ok(export) = reply_rx.recv() {
                    exports.push(export);
                }
            }
        }
        merge_exports(self.cfg.policy.label(), exports)
    }

    /// Asks one shard for its dirty export since `since`. `None` when
    /// the shard is shutting down.
    fn pull_dirty(&self, shard: usize, since: u64) -> Option<crate::shard::DirtyShardExport> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.shard_txs[shard]
            .send(ShardMsg::ExportDirty {
                since,
                reply: reply_tx,
            })
            .ok()?;
        reply_rx.recv().ok()
    }

    /// Serves one replication round to a pulling follower
    /// ([`wire::FRAME_REPL_ACK`]): a chunked full sync when the
    /// follower's epoch is stale (or 0), a chunked delta of the state
    /// mutated since the last round when it matches, or a lone commit
    /// (no epoch bump) when nothing changed. Each shard streams its
    /// dirty subset from its own mailbox turn — no shard pauses, and
    /// shards keep deciding while others export (the no-stop-the-world
    /// property the stage histograms assert).
    fn repl_round(&self, follower_epoch: u64, out: &mut Vec<u8>) {
        let uptime_ms = self.started.elapsed().as_millis() as u64;
        let mut repl = match self.repl.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        repl.rounds += 1;
        repl.last_pull_ms = uptime_ms.max(1);
        let shards = self.shard_txs.len();
        if follower_epoch == 0 || follower_epoch != repl.epoch || repl.frontiers.len() != shards {
            // Full sync. Frontiers are read *before* the snapshot: a
            // mutation landing in between is both in this sync and in
            // the next delta — re-sent, never skipped (records carry
            // absolute state, so re-application is idempotent).
            let mut frontiers = Vec::with_capacity(shards);
            for shard in 0..shards {
                // u64::MAX matches no app: this only reads the frontier.
                let seq = self.pull_dirty(shard, u64::MAX).map_or(0, |d| d.seq);
                frontiers.push(seq);
            }
            let doc = self.snapshot().encode();
            let epoch = repl.epoch + 1;
            wire::encode_repl_round(out, wire::FRAME_REPL_SYNC, epoch, doc.as_bytes());
            repl.epoch = epoch;
            repl.frontiers = frontiers;
            repl.full_syncs += 1;
            repl.bytes_streamed += doc.len() as u64;
            drop(repl);
            if self.telem.enabled {
                if let Ok(mut ring) = self.telem.events.try_lock() {
                    ring.push(LifecycleEvent {
                        ts_ms: uptime_ms,
                        kind: EventKind::ReplSync,
                        tenant: String::new(),
                        app: String::new(),
                        detail: format!("epoch {epoch}, {} bytes", doc.len()),
                    });
                }
            }
            return;
        }
        // Delta round: each shard's dirty subset since its frontier.
        let mut frontiers = Vec::with_capacity(shards);
        let mut exports: Vec<ShardExport> = Vec::with_capacity(shards);
        let mut dirty = false;
        for shard in 0..shards {
            let since = repl.frontiers[shard];
            match self.pull_dirty(shard, since) {
                Some(d) => {
                    dirty |= d.seq != since;
                    frontiers.push(d.seq);
                    exports.push(d.export);
                }
                None => {
                    // Shard unavailable (shutting down): hold the
                    // frontier so nothing is skipped if we come back.
                    frontiers.push(since);
                    exports.push(ShardExport {
                        tenants: Vec::new(),
                    });
                }
            }
        }
        if !dirty {
            // Nothing mutated since the last round: commit the epoch
            // the follower already holds, no bump, no document.
            wire::encode_repl_commit(out, repl.epoch);
            return;
        }
        let apps: u64 = exports
            .iter()
            .flat_map(|e| e.tenants.iter())
            .map(|t| t.apps.len() as u64)
            .sum();
        let doc = merge_exports(self.cfg.policy.label(), exports).encode_delta();
        let epoch = repl.epoch + 1;
        wire::encode_repl_round(out, wire::FRAME_REPL_DELTA, epoch, doc.as_bytes());
        repl.epoch = epoch;
        repl.frontiers = frontiers;
        repl.apps_streamed += apps;
        repl.bytes_streamed += doc.len() as u64;
    }

    /// Registers a tenant at runtime: the owning shard learns about it
    /// (and acks) *before* the registry exposes the name, so no request
    /// can race ahead of the shard's state.
    fn register_tenant(
        &self,
        name: &str,
        policy: PolicySpec,
        budget_mb: u64,
    ) -> Result<TenantSpec, String> {
        let mut registry = self.registry.write().expect("registry poisoned");
        let mut staged = registry.clone();
        let id = staged.register(name, policy, budget_mb)?;
        let spec = staged.get(id).expect("just registered").clone();
        let home = staged.shard_of(id, "", self.shard_txs.len());
        let (ack_tx, ack_rx) = mpsc::channel();
        self.shard_txs[home]
            .send(ShardMsg::AddTenant {
                spec: spec.clone(),
                ack: ack_tx,
            })
            .map_err(|_| "shard unavailable (shutting down)".to_owned())?;
        ack_rx
            .recv()
            .map_err(|_| "shard unavailable (shutting down)".to_owned())?;
        *registry = staged;
        Ok(spec)
    }

    /// Scrapes the shards and folds per-tenant usage by **name** — the
    /// cluster-stable key (ids are per-node registration order and
    /// diverge after migrations). Default-tenant slices sum across
    /// shards; named tenants live whole on one shard.
    fn tenant_usage(&self) -> Vec<TenantUsage> {
        let mut by_name: std::collections::BTreeMap<String, TenantUsage> =
            std::collections::BTreeMap::new();
        for tx in &self.shard_txs {
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(ShardMsg::Scrape(reply_tx)).is_ok() {
                if let Ok(stats) = reply_rx.recv() {
                    for t in stats.tenants {
                        let entry = by_name.entry(t.name.clone()).or_insert(TenantUsage {
                            name: t.name,
                            budget_mb: 0,
                            warm_mb: 0,
                            evictions: 0,
                            idle_mb_ms: 0,
                            invocations: 0,
                        });
                        entry.budget_mb = entry.budget_mb.max(t.budget_mb);
                        entry.warm_mb += t.warm_mb;
                        entry.evictions += t.evictions;
                        entry.idle_mb_ms += t.idle_mb_ms;
                        entry.invocations += t.invocations;
                    }
                }
            }
        }
        by_name.into_values().collect()
    }

    /// Applies a budget push: each named tenant's ledger budget is
    /// replaced by its owning shard (lazy enforcement — no retroactive
    /// verdict changes), and the registry copy follows for display
    /// coherence. Unknown names and the default tenant (whose sharded
    /// ledger cannot be budgeted) are skipped, not errors: the router
    /// reconciles against a snapshot of the node's tenant set, which a
    /// concurrent migration may have changed.
    fn set_budgets(&self, pairs: &[(String, u64)]) -> u32 {
        let mut applied = 0u32;
        for (name, budget_mb) in pairs {
            if name == DEFAULT_TENANT_NAME {
                continue;
            }
            let resolved = {
                let registry = match self.registry.read() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                registry
                    .resolve(name)
                    .map(|id| (id, registry.shard_of(id, "", self.shard_txs.len())))
            };
            let Some((id, home)) = resolved else { continue };
            let (ack_tx, ack_rx) = mpsc::channel();
            let sent = self.shard_txs[home]
                .send(ShardMsg::SetBudget {
                    tenant: id,
                    budget_mb: *budget_mb,
                    ack: ack_tx,
                })
                .is_ok();
            if sent && ack_rx.recv() == Ok(true) {
                if let Ok(mut registry) = self.registry.write() {
                    registry.set_budget(id, *budget_mb);
                }
                applied += 1;
            }
        }
        applied
    }

    /// Exports a tenant's complete state and removes it from this node
    /// (the source half of a migration). Returns the text payload the
    /// target node's `/admin/tenants/<name>/restore` accepts.
    fn take_tenant(&self, name: &str) -> Result<String, (u16, String)> {
        if name == DEFAULT_TENANT_NAME {
            return Err((400, "the default tenant cannot migrate".to_owned()));
        }
        let resolved = {
            let registry = match self.registry.read() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            registry
                .resolve(name)
                .map(|id| (id, registry.shard_of(id, "", self.shard_txs.len())))
        };
        let Some((id, home)) = resolved else {
            return Err((404, format!("unknown tenant '{name}'")));
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        self.shard_txs[home]
            .send(ShardMsg::TakeTenant {
                tenant: id,
                reply: reply_tx,
            })
            .map_err(|_| (503, "shard unavailable (shutting down)".to_owned()))?;
        match reply_rx.recv() {
            Ok(Some(export)) => Ok(encode_tenant_section(&export)),
            Ok(None) => Err((409, format!("tenant '{name}' already taken"))),
            Err(_) => Err((503, "shard unavailable (shutting down)".to_owned())),
        }
    }

    /// Installs a migrated tenant from a take payload (the target half).
    /// An unknown tenant is registered first from the payload's canonical
    /// policy spec; a known one must match policy labels. The restored
    /// state replaces whatever the shard held, bit-for-bit.
    fn restore_tenant(&self, text: &str) -> Result<TenantSpec, (u16, String)> {
        let section = decode_tenant_section(text).map_err(|e| (400, e))?;
        if section.name == DEFAULT_TENANT_NAME {
            return Err((400, "the default tenant cannot migrate".to_owned()));
        }
        let existing = {
            let registry = match self.registry.read() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            registry.resolve(&section.name).map(|id| {
                let spec = registry.get(id).expect("resolved id exists").clone();
                (spec, registry.shard_of(id, "", self.shard_txs.len()))
            })
        };
        let (mut spec, home) = match existing {
            Some((spec, home)) => {
                if spec.policy.label() != section.policy_label {
                    return Err((
                        409,
                        format!(
                            "tenant '{}': incoming policy '{}' does not match local '{}'",
                            section.name,
                            section.policy_label,
                            spec.policy.label()
                        ),
                    ));
                }
                (spec, home)
            }
            None => {
                let spec_str = section.spec_str.as_ref().ok_or_else(|| {
                    (
                        400,
                        format!(
                            "tenant '{}' has no canonical policy spec in the payload",
                            section.name
                        ),
                    )
                })?;
                let policy = PolicySpec::parse(spec_str).map_err(|e| (400u16, e))?;
                let spec = self
                    .register_tenant(&section.name, policy, section.budget_mb)
                    .map_err(|e| (400u16, e))?;
                let home = {
                    let registry = match self.registry.read() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    registry.shard_of(spec.id, "", self.shard_txs.len())
                };
                (spec, home)
            }
        };
        spec.budget_mb = section.budget_mb;
        if let Ok(mut registry) = self.registry.write() {
            registry.set_budget(spec.id, section.budget_mb);
        }
        let restore = TenantRestore {
            spec: spec.clone(),
            apps: section.apps,
            ledger: section.ledger,
            prod_clock: section.prod_clock,
        };
        let (ack_tx, ack_rx) = mpsc::channel();
        self.shard_txs[home]
            .send(ShardMsg::RestoreTenant {
                restore: Box::new(restore),
                ack: ack_tx,
            })
            .map_err(|_| (503, "shard unavailable (shutting down)".to_owned()))?;
        match ack_rx.recv() {
            Ok(Ok(())) => Ok(spec),
            Ok(Err(e)) => Err((400, e)),
            Err(_) => Err((503, "shard unavailable (shutting down)".to_owned())),
        }
    }

    /// Unblocks the acceptor's `accept()` after the shutdown flag flips.
    fn wake_acceptor(&self) {
        let _ = TcpStream::connect(self.addr);
    }

    /// Wakes every reactor unconditionally (shutdown must not wait out
    /// a poll tick).
    pub(crate) fn wake_reactors(&self) {
        for reactor in &self.reactors {
            reactor.waker.wake_force();
        }
    }
}

/// A running decision service.
pub struct Server {
    ctx: Arc<ServerCtx>,
    acceptor: Option<JoinHandle<()>>,
    reactor_handles: Vec<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<ShardExport>>,
}

/// Merges per-shard exports into one snapshot. Default-tenant state is
/// the union of per-shard slices (apps concatenated, ledger counters
/// summed, clocks as maxima); named tenants live whole on one shard.
fn merge_exports(policy_label: String, exports: Vec<ShardExport>) -> Snapshot {
    let mut apps: Vec<AppRecord> = Vec::new();
    let mut prod_clock: Option<u64> = None;
    let mut default_ledger = LedgerExport::default();
    let mut tenants: Vec<TenantSnapshot> = Vec::new();
    for export in exports {
        for te in export.tenants {
            if te.id == DEFAULT_TENANT {
                apps.extend(te.apps);
                prod_clock = prod_clock.max(te.prod_clock);
                default_ledger.warm.extend(te.ledger.warm);
                default_ledger.evictions += te.ledger.evictions;
                default_ledger.idle_mb_ms = default_ledger
                    .idle_mb_ms
                    .saturating_add(te.ledger.idle_mb_ms);
                default_ledger.cursor_ms = default_ledger.cursor_ms.max(te.ledger.cursor_ms);
            } else {
                tenants.push(TenantSnapshot {
                    id: te.id,
                    name: te.name,
                    policy_label: te.policy_label,
                    spec_str: te.spec_str,
                    budget_mb: te.budget_mb,
                    prod_clock: te.prod_clock,
                    ledger: te.ledger,
                    apps: te.apps,
                });
            }
        }
    }
    apps.sort_by(|a, b| a.app.cmp(&b.app));
    default_ledger.warm.sort();
    tenants.sort_by_key(|t| t.id);
    Snapshot {
        policy_label,
        prod_clock,
        apps,
        default_ledger,
        tenants,
    }
}

/// Builds the tenant registry for a start: snapshot tenants first (ids
/// preserved), configured tenants verified against or appended to them.
fn build_registry(cfg: &ServeConfig, snap: Option<&Snapshot>) -> Result<TenantRegistry, String> {
    let mut registry = TenantRegistry::new(cfg.policy.clone());
    if let Some(snap) = snap {
        for t in &snap.tenants {
            // Configured spec wins when present (it carries the actual
            // PolicySpec; the snapshot only proves the label). A tenant
            // the new process was not configured with is rebuilt from
            // its canonical spec string.
            let configured = cfg.tenants.iter().find(|c| c.name == t.name);
            let (policy, budget_mb) = match configured {
                Some(c) => {
                    if c.policy.label() != t.policy_label {
                        return Err(format!(
                            "tenant '{}': snapshot policy '{}' does not match configured '{}'",
                            t.name,
                            t.policy_label,
                            c.policy.label()
                        ));
                    }
                    (c.policy.clone(), c.budget_mb)
                }
                None => {
                    let spec_str = t.spec_str.as_ref().ok_or_else(|| {
                        format!(
                            "tenant '{}' has no canonical spec in the snapshot; \
                             configure it explicitly to restore",
                            t.name
                        )
                    })?;
                    (PolicySpec::parse(spec_str)?, t.budget_mb)
                }
            };
            let id = registry.register(&t.name, policy, budget_mb)?;
            if id != t.id {
                return Err(format!(
                    "tenant '{}': snapshot id {} cannot be preserved (got {id})",
                    t.name, t.id
                ));
            }
        }
    }
    for c in &cfg.tenants {
        if registry.resolve(&c.name).is_none() {
            registry.register(&c.name, c.policy.clone(), c.budget_mb)?;
        }
    }
    Ok(registry)
}

/// Partitions restored state across shards: default-tenant apps and
/// warm entries by app hash, named tenants whole to their home shard.
fn partition_restore(
    registry: &TenantRegistry,
    snap: Option<Snapshot>,
    shards: usize,
) -> Vec<Vec<TenantRestore>> {
    let default_spec = registry
        .get(DEFAULT_TENANT)
        .expect("default tenant always exists")
        .clone();
    let mut per_shard: Vec<Vec<TenantRestore>> = (0..shards)
        .map(|_| vec![TenantRestore::fresh(default_spec.clone())])
        .collect();
    let Some(snap) = snap else {
        for spec in registry.tenants() {
            if spec.id != DEFAULT_TENANT {
                let home = registry.shard_of(spec.id, "", shards);
                per_shard[home].push(TenantRestore::fresh(spec.clone()));
            }
        }
        return per_shard;
    };
    for rec in snap.apps {
        let shard = shard_of(&rec.app, shards);
        per_shard[shard][0].apps.push(rec);
    }
    for (app, expiry, mb) in snap.default_ledger.warm {
        let shard = shard_of(&app, shards);
        per_shard[shard][0].ledger.warm.push((app, expiry, mb));
    }
    for shard in per_shard.iter_mut() {
        shard[0].prod_clock = snap.prod_clock;
        shard[0].ledger.cursor_ms = snap.default_ledger.cursor_ms;
    }
    // The merged integral/eviction counters are scalars; seed them on
    // shard 0 so the aggregate `/metrics` view stays continuous.
    per_shard[0][0].ledger.evictions = snap.default_ledger.evictions;
    per_shard[0][0].ledger.idle_mb_ms = snap.default_ledger.idle_mb_ms;

    let mut snap_tenants: std::collections::HashMap<TenantId, TenantSnapshot> =
        snap.tenants.into_iter().map(|t| (t.id, t)).collect();
    for spec in registry.tenants() {
        if spec.id == DEFAULT_TENANT {
            continue;
        }
        let home = registry.shard_of(spec.id, "", shards);
        let restore = match snap_tenants.remove(&spec.id) {
            Some(t) => TenantRestore {
                spec: spec.clone(),
                apps: t.apps,
                ledger: t.ledger,
                prod_clock: t.prod_clock,
            },
            None => TenantRestore::fresh(spec.clone()),
        };
        per_shard[home].push(restore);
    }
    per_shard
}

impl Server {
    /// Binds, restores state if configured, and starts serving.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        if cfg.shards == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "shards == 0"));
        }
        if cfg.reactor_threads == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "reactor_threads == 0",
            ));
        }

        // The telemetry epoch: span timestamps are nanoseconds since
        // this instant, on every thread. The one place the serve crate
        // reads the wall clock directly — to construct that epoch.
        // sitw-lint: allow(clock-discipline)
        let started = Instant::now();
        let telem = TelemCtx {
            enabled: cfg.telemetry,
            clock: TelemClock::Wall(WallClock::new(started)),
            reactors: (0..cfg.reactor_threads).map(|_| Arc::default()).collect(),
            reactor_gauges: (0..cfg.reactor_threads).map(|_| Arc::default()).collect(),
            shard_recorders: (0..cfg.shards)
                .map(|_| Arc::new(std::sync::Mutex::new(FlightRecorder::new(TRACE_RING))))
                .collect(),
            shard_gauges: (0..cfg.shards).map(|_| Arc::default()).collect(),
            events: Arc::new(std::sync::Mutex::new(EventRing::new(EVENT_RING))),
        };

        // Restore before any thread exists. An in-memory snapshot (the
        // follower-promotion path) wins over the file; a corrupt file
        // degrades to empty state with the reason on /healthz — losing
        // learned histograms costs cold starts, refusing to start
        // costs availability (the regression this guards).
        let mut snap: Option<Snapshot> = cfg.restore_snapshot.clone();
        let mut restore_error: Option<String> = None;
        if snap.is_none() {
            if let Some(path) = &cfg.restore_path {
                if path.exists() {
                    match Snapshot::load(path) {
                        Ok(loaded) => {
                            let expected = cfg.policy.label();
                            if loaded.policy_label != expected {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!(
                                        "snapshot policy '{}' does not match configured \
                                         '{expected}'",
                                        loaded.policy_label
                                    ),
                                ));
                            }
                            snap = Some(loaded);
                        }
                        Err(SnapshotError::Corrupt(e)) => {
                            eprintln!(
                                "sitw-serve: snapshot {} is corrupt, serving from empty \
                                 state: {e}",
                                path.display()
                            );
                            restore_error = Some(e);
                        }
                        // The file exists but cannot be read (permissions,
                        // I/O): a transient environment problem, so fail
                        // loudly instead of silently dropping state.
                        Err(SnapshotError::Io(e)) => return Err(e),
                    }
                }
            }
        }
        let registry = build_registry(&cfg, snap.as_ref())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let per_shard = partition_restore(&registry, snap, cfg.shards);

        let mut shard_txs = Vec::with_capacity(cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        for (id, restore) in per_shard.into_iter().enumerate() {
            let worker = ShardWorker::new(id, restore)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                .with_telem(ShardTelem {
                    enabled: telem.enabled,
                    clock: telem.clock.clone(),
                    recorder: Arc::clone(&telem.shard_recorders[id]),
                    gauge: Arc::clone(&telem.shard_gauges[id]),
                    queue: Default::default(),
                    decide: Default::default(),
                    events: Arc::clone(&telem.events),
                });
            let (tx, rx) = mpsc::channel();
            shard_txs.push(tx);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("sitw-shard-{id}"))
                    .spawn(move || worker.run(rx))?,
            );
        }

        // The reactor pool's plumbing exists before the context so the
        // context can carry every reactor's queue and waker.
        let mut reactors: Vec<ReactorRef> = Vec::with_capacity(cfg.reactor_threads);
        let mut reactor_parts = Vec::with_capacity(cfg.reactor_threads);
        for _ in 0..cfg.reactor_threads {
            let (tx, rx) = mpsc::channel::<ReactorMsg>();
            let waker = Arc::new(Waker::new()?);
            reactors.push(ReactorRef {
                tx: tx.clone(),
                waker: Arc::clone(&waker),
            });
            reactor_parts.push((rx, tx, waker));
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(ServerCtx {
            cfg,
            addr,
            shard_txs,
            registry: RwLock::new(registry),
            shutdown: AtomicBool::new(false),
            started,
            frames: AtomicU64::new(0),
            batched_decisions: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            ctrl_frames: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_live: AtomicU64::new(0),
            conns_peak: AtomicU64::new(0),
            reactors,
            telem,
            repl: Mutex::new(ReplState::default()),
            restore_error,
        });

        let mut reactor_handles = Vec::with_capacity(reactor_parts.len());
        for (id, (rx, tx, waker)) in reactor_parts.into_iter().enumerate() {
            let reactor_ctx = Arc::clone(&ctx);
            reactor_handles.push(
                std::thread::Builder::new()
                    .name(format!("sitw-reactor-{id}"))
                    .spawn(move || reactor_loop(id, reactor_ctx, rx, tx, waker))?,
            );
        }

        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::Builder::new()
            .name("sitw-acceptor".into())
            .spawn(move || accept_loop(listener, acceptor_ctx))?;

        Ok(Server {
            ctx,
            acceptor: Some(acceptor),
            reactor_handles,
            shard_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Scrapes all shards (in-process equivalent of `GET /metrics`).
    pub fn metrics(&self) -> MetricsReport {
        self.ctx.scrape()
    }

    /// Captures a snapshot of all shards without stopping the server.
    pub fn snapshot(&self) -> Snapshot {
        self.ctx.snapshot()
    }

    /// Registers a tenant at runtime (in-process equivalent of
    /// `POST /admin/tenants`).
    pub fn register_tenant(
        &self,
        name: &str,
        policy: PolicySpec,
        budget_mb: u64,
    ) -> Result<TenantSpec, String> {
        self.ctx.register_tenant(name, policy, budget_mb)
    }

    /// Exports a tenant's state and removes it from this node
    /// (in-process equivalent of `POST /admin/tenants/<name>/take`).
    /// Returns the migration payload for [`Server::restore_tenant`].
    pub fn take_tenant(&self, name: &str) -> Result<String, String> {
        self.ctx.take_tenant(name).map_err(|(_, e)| e)
    }

    /// Installs a migrated tenant from a take payload (in-process
    /// equivalent of `POST /admin/tenants/<name>/restore`).
    pub fn restore_tenant(&self, payload: &str) -> Result<TenantSpec, String> {
        self.ctx.restore_tenant(payload).map_err(|(_, e)| e)
    }

    /// True once a shutdown has been requested (e.g. via
    /// `POST /admin/shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested.
    pub fn wait(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// Gracefully stops: settles and closes connections (bounded — a
    /// client that never drains its responses is cut off after a grace
    /// period instead of hanging the daemon), stops shards, and writes
    /// the final snapshot to [`ServeConfig::snapshot_path`] when set.
    /// Returns the final state.
    pub fn shutdown(mut self) -> io::Result<Snapshot> {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.wake_acceptor();
        self.ctx.wake_reactors();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Reactors keep the shards' reply sinks alive until every
        // connection settles; only then may the shards stop.
        for handle in self.reactor_handles.drain(..) {
            let _ = handle.join();
        }
        for tx in &self.ctx.shard_txs {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        let mut exports: Vec<ShardExport> = Vec::new();
        for handle in self.shard_handles.drain(..) {
            match handle.join() {
                Ok(export) => exports.push(export),
                Err(_) => {
                    return Err(io::Error::other("shard panicked"));
                }
            }
        }
        let snapshot = merge_exports(self.ctx.cfg.policy.label(), exports);
        if let Some(path) = &self.ctx.cfg.snapshot_path {
            snapshot.write_to(path)?;
        }
        Ok(snapshot)
    }
}

/// The acceptor: accepts, counts, and hands each connection round-robin
/// to a reactor. No per-connection thread exists anywhere.
fn accept_loop(listener: TcpListener, ctx: Arc<ServerCtx>) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        ctx.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let live = ctx.conns_live.fetch_add(1, Ordering::Relaxed) + 1;
        ctx.conns_peak.fetch_max(live, Ordering::Relaxed);
        let idx = next % ctx.reactors.len();
        let reactor = &ctx.reactors[idx];
        next = next.wrapping_add(1);
        if reactor.tx.send(ReactorMsg::Conn(stream)).is_err() {
            // Reactor gone (shutting down): the stream just dropped.
            ctx.conns_live.fetch_sub(1, Ordering::Relaxed);
        } else {
            reactor.waker.wake();
        }
    }
}

/// Parses an `/invoke` body and resolves its tenant and shard.
pub(crate) fn parse_and_route(
    body: &[u8],
    ctx: &ServerCtx,
) -> Result<(TenantId, usize, wire::InvokeRequest), String> {
    let inv = wire::parse_invoke(body)?;
    let registry = ctx.registry.read().expect("registry poisoned");
    let tenant = match &inv.tenant {
        None => DEFAULT_TENANT,
        Some(name) => registry
            .resolve(name)
            .ok_or_else(|| format!("unknown tenant '{name}'"))?,
    };
    let shard = registry.shard_of(tenant, &inv.app, ctx.shard_txs.len());
    Ok((tenant, shard, inv))
}

/// Executes one SITW-BIN control frame (the cluster control plane).
/// Like [`handle_control`], this runs when the frame reaches the head of
/// its connection's response pipeline: a usage report reflects every
/// earlier decision on the connection, and a budget push lands between
/// frames, never inside one.
pub(crate) fn handle_ctrl_frame(req: &ControlRequest, ctx: &ServerCtx, out: &mut Vec<u8>) {
    ctx.ctrl_frames.fetch_add(1, Ordering::Relaxed);
    match req {
        ControlRequest::Report => {
            let usage = ctx.tenant_usage();
            wire::encode_control_reply(out, &ControlReply::Report(usage));
        }
        ControlRequest::BudgetSet(pairs) => {
            let applied = ctx.set_budgets(pairs);
            wire::encode_control_reply(out, &ControlReply::BudgetAck { applied });
        }
        ControlRequest::ReplPull { epoch } => {
            ctx.repl_round(*epoch, out);
        }
    }
}

/// Non-invoke endpoints: health, metrics, admin.
/// Runs on a reactor thread when the request reaches the head of its
/// connection's response pipeline (i.e. once every earlier message has
/// answered, preserving the settle-then-serve semantics of the
/// thread-per-connection model).
pub(crate) fn handle_control(req: &Request, ctx: &ServerCtx, out: &mut Vec<u8>) {
    use std::fmt::Write as _;
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let mut body = Vec::with_capacity(96);
            body.extend_from_slice(b"{\"status\":\"ok\",\"policy\":\"");
            body.extend_from_slice(ctx.cfg.policy.label().as_bytes());
            body.extend_from_slice(b"\",\"shards\":");
            push_u64(&mut body, ctx.shard_txs.len() as u64);
            body.extend_from_slice(b",\"tenants\":");
            push_u64(
                &mut body,
                ctx.registry.read().expect("registry poisoned").len() as u64,
            );
            body.extend_from_slice(b",\"uptime_ms\":");
            push_u64(&mut body, ctx.started.elapsed().as_millis() as u64);
            body.extend_from_slice(b",\"repl_epoch\":");
            let epoch = match ctx.repl.lock() {
                Ok(guard) => guard.epoch,
                Err(poisoned) => poisoned.into_inner().epoch,
            };
            push_u64(&mut body, epoch);
            if let Some(e) = &ctx.restore_error {
                body.extend_from_slice(b",\"restore_error\":\"");
                body.extend_from_slice(wire::json_escape(e).as_bytes());
                body.push(b'"');
            }
            body.push(b'}');
            write_response(out, 200, "application/json", &body);
        }
        ("GET", "/metrics") => {
            let report = ctx.scrape();
            write_response(
                out,
                200,
                "text/plain; version=0.0.4",
                report.render().as_bytes(),
            );
        }
        ("GET", "/admin/tenants") => {
            let registry = ctx.registry.read().expect("registry poisoned");
            let mut body = Vec::with_capacity(128);
            body.push(b'[');
            for (i, t) in registry.tenants().iter().enumerate() {
                if i > 0 {
                    body.push(b',');
                }
                body.extend_from_slice(b"{\"id\":");
                push_u64(&mut body, t.id as u64);
                body.extend_from_slice(b",\"name\":\"");
                body.extend_from_slice(t.name.as_bytes());
                body.extend_from_slice(b"\",\"policy\":\"");
                body.extend_from_slice(t.policy.label().as_bytes());
                body.extend_from_slice(b"\",\"budget_mb\":");
                push_u64(&mut body, t.budget_mb);
                body.push(b'}');
            }
            body.push(b']');
            write_response(out, 200, "application/json", &body);
        }
        ("POST", "/admin/tenants") => {
            // Body: the CLI argument grammar, `NAME=POLICY[,budget=MB]`.
            let arg = String::from_utf8_lossy(&req.body);
            let result = sitw_fleet::registry::parse_tenant_arg(arg.trim())
                .and_then(|(name, policy, budget)| ctx.register_tenant(&name, policy, budget));
            match result {
                Ok(spec) => {
                    let mut body = Vec::with_capacity(64);
                    body.extend_from_slice(b"{\"id\":");
                    push_u64(&mut body, spec.id as u64);
                    body.extend_from_slice(b",\"name\":\"");
                    body.extend_from_slice(spec.name.as_bytes());
                    body.extend_from_slice(b"\"}");
                    write_response(out, 200, "application/json", &body);
                }
                Err(e) => {
                    let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                    write_response(out, 400, "application/json", body.as_bytes());
                }
            }
        }
        ("POST", "/admin/snapshot") => match &ctx.cfg.snapshot_path {
            Some(path) => {
                let snapshot = ctx.snapshot();
                match snapshot.write_to(path) {
                    Ok(()) => {
                        let mut body = Vec::with_capacity(64);
                        body.extend_from_slice(b"{\"apps\":");
                        push_u64(&mut body, snapshot.apps.len() as u64);
                        body.push(b'}');
                        write_response(out, 200, "application/json", &body);
                    }
                    Err(e) => {
                        let body =
                            format!("{{\"error\":\"{}\"}}", wire::json_escape(&e.to_string()));
                        write_response(out, 500, "application/json", body.as_bytes());
                    }
                }
            }
            None => {
                write_response(
                    out,
                    400,
                    "application/json",
                    b"{\"error\":\"no snapshot path configured\"}",
                );
            }
        },
        ("GET", "/debug/trace") => {
            let mut last = 64usize;
            let mut json = false;
            for pair in query.split('&') {
                if let Some(v) = pair.strip_prefix("n=") {
                    if let Ok(k) = v.parse::<usize>() {
                        last = k.min(4096);
                    }
                } else if pair == "format=json" {
                    json = true;
                }
            }
            // Blocking locks are safe here: recording sites only ever
            // try_lock, and no guard is held while this control request
            // executes. Holding all guards at once gives a consistent
            // cross-thread snapshot to merge.
            let mut reactor_guards = Vec::new();
            let mut shard_guards = Vec::new();
            if ctx.telem.enabled {
                for shared in &ctx.telem.reactors {
                    reactor_guards.push(shared.lock().expect("reactor telemetry poisoned"));
                }
                for rec in &ctx.telem.shard_recorders {
                    shard_guards.push(rec.lock().expect("shard recorder poisoned"));
                }
            }
            let mut sources: Vec<(String, &sitw_telemetry::FlightRecorder)> = Vec::new();
            for (i, g) in reactor_guards.iter().enumerate() {
                sources.push((format!("reactor-{i}"), &g.recorder));
            }
            for (i, g) in shard_guards.iter().enumerate() {
                sources.push((format!("shard-{i}"), &**g));
            }
            let spans = merge_spans(&sources, last);
            drop(reactor_guards);
            drop(shard_guards);
            if json {
                let mut body = String::with_capacity(64 + spans.len() * 96);
                body.push('[');
                for (i, (source, ev)) in spans.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    let _ = write!(
                        body,
                        "{{\"span\":{},\"stage\":\"{}\",\"start_ns\":{},\"end_ns\":{},\
                         \"source\":\"{source}\"}}",
                        ev.span,
                        ev.stage.name(),
                        ev.start_ns,
                        ev.end_ns,
                    );
                }
                body.push(']');
                write_response(out, 200, "application/json", body.as_bytes());
            } else {
                let mut body = String::with_capacity(64 + spans.len() * 72);
                body.push_str("# start_ns end_ns dur_ns span stage source\n");
                for (source, ev) in &spans {
                    let _ = writeln!(
                        body,
                        "{} {} {} {:#018x} {} {source}",
                        ev.start_ns,
                        ev.end_ns,
                        ev.end_ns.saturating_sub(ev.start_ns),
                        ev.span,
                        ev.stage.name(),
                    );
                }
                write_response(out, 200, "text/plain", body.as_bytes());
            }
        }
        ("GET", "/debug/hist") => {
            // Raw per-stage bucket vectors — the federation wire format
            // a cluster router reconstructs and merges exactly (its
            // `/metrics/fleet` bucket counts equal the sum over nodes).
            let report = ctx.scrape();
            write_response(out, 200, "text/plain", report.render_raw().as_bytes());
        }
        ("GET", "/debug/events") => {
            // Snapshot the ring under the lock, render outside it.
            let (pushed, events) = if ctx.telem.enabled {
                let ring = ctx.telem.events.lock().expect("event ring poisoned");
                (ring.pushed(), ring.events().cloned().collect::<Vec<_>>())
            } else {
                (0, Vec::new())
            };
            let mut body = String::with_capacity(64 + events.len() * 96);
            let _ = write!(body, "{{\"pushed\":{pushed},\"events\":[");
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(
                    body,
                    "{{\"ts_ms\":{},\"kind\":\"{}\",\"tenant\":\"{}\",\"app\":\"{}\",\
                     \"detail\":\"{}\"}}",
                    ev.ts_ms,
                    ev.kind.name(),
                    wire::json_escape(&ev.tenant),
                    wire::json_escape(&ev.app),
                    wire::json_escape(&ev.detail),
                );
            }
            body.push_str("]}");
            write_response(out, 200, "application/json", body.as_bytes());
        }
        ("GET", "/debug/policy") => {
            let mut tenant = DEFAULT_TENANT_NAME;
            let mut app = "";
            for pair in query.split('&') {
                if let Some(v) = pair.strip_prefix("tenant=") {
                    tenant = v;
                } else if let Some(v) = pair.strip_prefix("app=") {
                    app = v;
                }
            }
            if app.is_empty() {
                write_response(
                    out,
                    400,
                    "application/json",
                    b"{\"error\":\"missing app= query parameter\"}",
                );
            } else {
                match ctx.policy_probe(tenant, app) {
                    Some(body) => write_response(out, 200, "application/json", body.as_bytes()),
                    None => write_response(
                        out,
                        404,
                        "application/json",
                        b"{\"error\":\"unknown tenant or app\"}",
                    ),
                }
            }
        }
        ("GET", "/debug/threads") => {
            let mut body = String::with_capacity(512);
            body.push_str("{\"reactors\":[");
            if ctx.telem.enabled {
                for (i, shared) in ctx.telem.reactors.iter().enumerate() {
                    let t = shared.lock().expect("reactor telemetry poisoned");
                    let (queue_depth, queue_peak) = ctx.telem.reactor_gauges[i].read();
                    if i > 0 {
                        body.push(',');
                    }
                    let _ = write!(
                        body,
                        "{{\"id\":{i},\"epoll_waits\":{},\"epoll_wait_ns\":{},\"wakeups\":{},\
                         \"events_per_wake_mean\":{:.2},\"events_per_wake_max\":{},\
                         \"write_burst_mean_bytes\":{:.0},\"bp_pauses\":{},\"bp_resumes\":{},\
                         \"queue_depth\":{queue_depth},\"queue_peak\":{queue_peak}}}",
                        t.epoll_waits,
                        t.epoll_wait_ns,
                        t.wakeups,
                        t.events_per_wake.mean().unwrap_or(0.0),
                        t.events_per_wake.max_bound().unwrap_or(0),
                        t.write_bursts.mean().unwrap_or(0.0),
                        t.bp_pauses,
                        t.bp_resumes,
                    );
                }
            }
            body.push_str("],\"shards\":[");
            if ctx.telem.enabled {
                for (i, gauge) in ctx.telem.shard_gauges.iter().enumerate() {
                    let (depth, peak) = gauge.read();
                    if i > 0 {
                        body.push(',');
                    }
                    let _ = write!(
                        body,
                        "{{\"id\":{i},\"mailbox_depth\":{depth},\"mailbox_peak\":{peak}}}"
                    );
                }
            }
            let _ = write!(
                body,
                "],\"conns\":{}}}",
                ctx.conns_live.load(Ordering::Relaxed)
            );
            write_response(out, 200, "application/json", body.as_bytes());
        }
        (method, p) if p.starts_with("/admin/tenants/") => {
            // Migration endpoints: `POST /admin/tenants/<name>/take`
            // exports-and-removes; `POST /admin/tenants/<name>/restore`
            // installs the take payload on this node.
            let rest = &p["/admin/tenants/".len()..];
            match (method, rest.rsplit_once('/')) {
                ("POST", Some((name, "take"))) => match ctx.take_tenant(name) {
                    Ok(payload) => write_response(out, 200, "text/plain", payload.as_bytes()),
                    Err((status, e)) => {
                        let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                        write_response(out, status, "application/json", body.as_bytes());
                    }
                },
                ("POST", Some((_, "restore"))) => {
                    // The payload itself names the tenant; the path
                    // segment is advisory (symmetry with /take).
                    let text = String::from_utf8_lossy(&req.body);
                    match ctx.restore_tenant(&text) {
                        Ok(spec) => {
                            let mut body = Vec::with_capacity(64);
                            body.extend_from_slice(b"{\"id\":");
                            push_u64(&mut body, spec.id as u64);
                            body.extend_from_slice(b",\"name\":\"");
                            body.extend_from_slice(spec.name.as_bytes());
                            body.extend_from_slice(b"\"}");
                            write_response(out, 200, "application/json", &body);
                        }
                        Err((status, e)) => {
                            let body = format!("{{\"error\":\"{}\"}}", wire::json_escape(&e));
                            write_response(out, status, "application/json", body.as_bytes());
                        }
                    }
                }
                (_, Some((_, "take" | "restore"))) => {
                    write_response(
                        out,
                        405,
                        "application/json",
                        b"{\"error\":\"method not allowed\"}",
                    );
                }
                _ => {
                    write_response(out, 404, "application/json", b"{\"error\":\"not found\"}");
                }
            }
        }
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            ctx.wake_acceptor();
            ctx.wake_reactors();
            write_response(out, 200, "application/json", b"{\"status\":\"stopping\"}");
        }
        ("POST", "/invoke") => unreachable!("handled by the caller"),
        (
            _,
            "/invoke" | "/healthz" | "/metrics" | "/debug/trace" | "/debug/threads" | "/debug/hist"
            | "/debug/events" | "/debug/policy" | "/admin/tenants" | "/admin/snapshot"
            | "/admin/shutdown",
        ) => {
            write_response(
                out,
                405,
                "application/json",
                b"{\"error\":\"method not allowed\"}",
            );
        }
        _ => {
            write_response(out, 404, "application/json", b"{\"error\":\"not found\"}");
        }
    }
}
