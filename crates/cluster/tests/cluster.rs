//! Cluster-mode integration tests: both protocols routed through an
//! in-process `Router` over real `sitw-serve` nodes — placement
//! determinism, batched-frame split/reassembly, typed QoS throttling,
//! typed node-down errors with explicit ring-drop recovery, and budget
//! reconciliation over control frames.

mod common;

use std::net::SocketAddr;

use common::{http, start_node, BinClient, BinResponse, JsonClient};
use sitw_cluster::{control_roundtrip, ClusterRing, Router, RouterConfig, RouterTenant};
use sitw_serve::wire::{BinErrorCode, BinReply, ControlReply, ControlRequest};

fn router_over(nodes: &[SocketAddr], tenants: &[&str]) -> Router {
    Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        nodes: nodes.iter().map(|a| a.to_string()).collect(),
        tenants: tenants
            .iter()
            .map(|t| RouterTenant::parse(t).expect("tenant spec"))
            .collect(),
        reconcile_ms: 0, // Tests reconcile explicitly for determinism.
        ..RouterConfig::default()
    })
    .expect("router starts")
}

#[test]
fn routes_both_protocols_and_reassembles_batches() {
    let nodes = [start_node(), start_node(), start_node()];
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    let router = router_over(&addrs, &["t0=fixed:10", "t1=fixed:10", "t2=fixed:10"]);

    // JSON: cold then warm per tenant — the second hit lands on the same
    // node as the first, or it could not be warm.
    let mut json = JsonClient::connect(router.addr());
    for tenant in [Some("t0"), Some("t1"), Some("t2"), None] {
        let (status, body) = json.invoke(tenant, "app-j", 0);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"verdict\":\"cold\""), "{body}");
        let (status, body) = json.invoke(tenant, "app-j", 10_000);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"verdict\":\"warm\""), "{body}");
    }

    // BIN v2: one frame mixing every tenant and the default — the router
    // splits it across nodes and reassembles replies in request order.
    let mut bin = BinClient::connect(router.addr());
    let batch: Vec<(u16, &str, u64)> = vec![
        (1, "app-b", 20_000),
        (2, "app-b", 20_000),
        (0, "app-b", 20_000),
        (3, "app-b", 20_000),
        (1, "app-c", 20_000),
    ];
    let replies = bin.batch(&batch);
    assert_eq!(replies.len(), batch.len());
    for (i, r) in replies.iter().enumerate() {
        match r {
            BinReply::Verdict { cold, .. } => assert!(*cold, "record {i} must be cold: {r:?}"),
            other => panic!("record {i}: {other:?}"),
        }
    }
    // Same shape again within keep-alive: all warm — per-record routing
    // is deterministic across frames.
    let batch: Vec<(u16, &str, u64)> = batch.iter().map(|&(t, a, ts)| (t, a, ts + 1_000)).collect();
    for (i, r) in bin.batch(&batch).iter().enumerate() {
        match r {
            BinReply::Verdict { cold, .. } => assert!(!*cold, "record {i} must be warm: {r:?}"),
            other => panic!("record {i}: {other:?}"),
        }
    }

    // BIN v1 still works through the router (default tenant traffic).
    let mut v1 = BinClient::connect(router.addr());
    let replies = v1.batch_v1(&[("app-v1", 30_000), ("app-b", 30_000)]);
    assert_eq!(replies.len(), 2);
    assert!(matches!(replies[1], BinReply::Verdict { cold: false, .. }));

    // Observability surface.
    let (status, body) = http(router.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"role\":\"router\"") && body.contains("\"live\":3"),
        "{body}"
    );
    let (status, ring) = http(router.addr(), "GET", "/admin/ring", "");
    assert_eq!(status, 200);
    assert!(ring.contains("\"epoch\":0"), "{ring}");
    let (status, listing) = http(router.addr(), "GET", "/admin/tenants", "");
    assert_eq!(status, 200);
    assert!(
        listing.contains("\"id\":1,\"name\":\"t0\"") && listing.contains("\"id\":0"),
        "{listing}"
    );
    let (status, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in [
        "sitw_router_requests_total{proto=\"json\"} 8",
        "sitw_router_requests_total{proto=\"bin\"} 3",
        "sitw_router_records_total 12",
        "sitw_router_forwarded_subframes_total",
        "sitw_router_nodes_live 3",
        "sitw_router_ring_epoch 0",
    ] {
        assert!(
            metrics.contains(family),
            "missing `{family}` in:\n{metrics}"
        );
    }

    router.shutdown();
    for n in nodes {
        n.shutdown().unwrap();
    }
}

#[test]
fn qos_throttling_is_typed_in_both_protocols() {
    let node = start_node();
    let router = router_over(
        &[node.addr()],
        &[
            "bronze=fixed:10,qos=bronze:rate=1:burst=1",
            "brassy=fixed:10,qos=bronze:rate=1:burst=1",
        ],
    );

    // JSON: the bucket admits one per second; the second hit in the same
    // second is a local 429 — the node never sees it.
    let mut json = JsonClient::connect(router.addr());
    let (status, _) = json.invoke(Some("bronze"), "a", 0);
    assert_eq!(status, 200);
    let (status, body) = json.invoke(Some("bronze"), "a", 100);
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("throttled"), "{body}");
    let (status, _) = json.invoke(Some("bronze"), "a", 2_000);
    assert_eq!(status, 200, "bucket refills");

    // BIN: the throttled record comes back as the typed verdict bit,
    // spliced into the reply frame alongside served records.
    let mut bin = BinClient::connect(router.addr());
    let replies = bin.batch(&[(2, "b", 0), (2, "b", 100), (2, "b", 2_000)]);
    assert!(matches!(replies[0], BinReply::Verdict { .. }));
    assert!(
        matches!(replies[1], BinReply::Throttled),
        "{:?}",
        replies[1]
    );
    assert!(matches!(replies[2], BinReply::Verdict { .. }));

    let (_, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert!(
        metrics.contains("sitw_router_throttled_total 2"),
        "{metrics}"
    );

    router.shutdown();
    node.shutdown().unwrap();
}

#[test]
fn dead_node_yields_typed_errors_and_ring_drop_recovers() {
    let nodes = [start_node(), start_node()];
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    // Find tenant names hashing to each node so the kill is meaningful.
    let ring = ClusterRing::new(2);
    let mut on_node = [None::<String>, None::<String>];
    for i in 0..32 {
        let name = format!("t{i}");
        let owner = ring.node_of_tenant(&name).unwrap();
        if on_node[owner].is_none() {
            on_node[owner] = Some(name);
        }
    }
    let victim = on_node[1].clone().unwrap();
    let survivor_tenant = on_node[0].clone().unwrap();
    let specs: Vec<String> = on_node
        .iter()
        .map(|t| format!("{}=fixed:10", t.clone().unwrap()))
        .collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let router = router_over(&addrs, &spec_refs);
    // Config order is on_node order, so the victim (on_node[1]) has
    // wire id 2.
    let victim_id = 2u16;

    // Kill node 1 — connections to it now fail immediately.
    let [node0, node1] = nodes;
    node1.shutdown().unwrap();

    // JSON to the dead node's tenant: typed 503 naming the node.
    let mut json = JsonClient::connect(router.addr());
    let (status, body) = json.invoke(Some(&victim), "a", 0);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("node") && body.contains("down"), "{body}");
    // The survivor's tenant still serves.
    let (status, _) = json.invoke(Some(&survivor_tenant), "a", 0);
    assert_eq!(status, 200);

    // BIN to the dead node's tenant: typed Unavailable error frame.
    let mut bin = BinClient::connect(router.addr());
    match bin.batch_raw(&[(victim_id, "a", 100)]) {
        BinResponse::Error { code, detail } => {
            assert_eq!(code, BinErrorCode::Unavailable, "{detail}");
            assert!(detail.contains("down"), "{detail}");
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
    // The same connection stays usable for live-node traffic after the
    // typed error (the error is recoverable, not a connection teardown).
    // Default-tenant traffic routes by app hash, so pick an app that
    // lands on the survivor.
    let alive_app = (0..32)
        .map(|i| format!("app-{i}"))
        .find(|a| ring.node_of_app(a) == Some(0))
        .unwrap();
    let replies = bin.batch(&[(0, alive_app.as_str(), 100)]);
    assert_eq!(replies.len(), 1);

    // Operator acknowledges the loss: epoch advances, tenants rehash
    // over the survivors, and the victim tenant serves again (cold — its
    // state died with the node).
    let (status, body) = http(router.addr(), "POST", "/admin/ring/drop?node=1", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"dropped\":true") && body.contains("\"epoch\":1"),
        "{body}"
    );
    let (status, body) = json.invoke(Some(&victim), "a", 200);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verdict\":\"cold\""), "{body}");

    let (_, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert!(metrics.contains("sitw_router_ring_epoch 1"), "{metrics}");
    assert!(metrics.contains("sitw_router_nodes_live 1"), "{metrics}");
    let err_line = metrics
        .lines()
        .find(|l| l.contains("sitw_router_node_errors_total") && l.contains(&addrs[1].to_string()))
        .expect("per-node error series");
    let count: u64 = err_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 2, "both protocols counted: {err_line}");

    router.shutdown();
    node0.shutdown().unwrap();
}

#[test]
fn reconciler_pushes_budgets_to_ring_owners() {
    let nodes = [start_node(), start_node()];
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    let router = router_over(&addrs, &["metered=hybrid,budget=48", "free=hybrid"]);

    let mut json = JsonClient::connect(router.addr());
    for i in 0..5u64 {
        let (status, _) = json.invoke(Some("metered"), &format!("app-{i}"), i * 1_000);
        assert_eq!(status, 200);
    }

    let (nodes_ok, pushes) = router.reconcile_now();
    assert_eq!(nodes_ok, 2, "both nodes report");
    assert_eq!(pushes, 1, "one budgeted tenant, one owner share");

    // The owner node's ledger carries the budget and the invocations.
    let owner = ClusterRing::new(2).node_of_tenant("metered").unwrap();
    let reply = control_roundtrip(addrs[owner], &ControlRequest::Report).unwrap();
    let ControlReply::Report(tenants) = reply else {
        panic!("expected a report, got {reply:?}");
    };
    let metered = tenants.iter().find(|t| t.name == "metered").unwrap();
    assert_eq!(metered.budget_mb, 48);
    assert_eq!(metered.invocations, 5);

    // The aggregated view lands on the router's /metrics, and the admin
    // endpoint drives the same cycle.
    let (_, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert!(
        metrics.contains("sitw_router_tenant_budget_mb{tenant=\"metered\"} 48"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sitw_router_tenant_invocations_total{tenant=\"metered\"} 5"),
        "{metrics}"
    );
    let (status, body) = http(router.addr(), "POST", "/admin/reconcile", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"nodes\":2"), "{body}");

    router.shutdown();
    for n in nodes {
        n.shutdown().unwrap();
    }
}

#[test]
fn shutdown_endpoint_stops_the_router() {
    let node = start_node();
    let router = router_over(&[node.addr()], &[]);
    let (status, body) = http(router.addr(), "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("stopping"), "{body}");
    assert!(router.shutdown_requested());
    router.wait();
    node.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Fleet observability plane: trace propagation across the router hop
// and exact metric federation.

/// One parsed line of the router's merged `/debug/trace` text output.
#[derive(Debug)]
struct TraceLine {
    start_ns: u64,
    end_ns: u64,
    span: String,
    stage: String,
    source: String,
}

fn parse_trace_text(body: &str) -> Vec<TraceLine> {
    body.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let f: Vec<&str> = l.split_ascii_whitespace().collect();
            assert_eq!(f.len(), 6, "bad trace line: {l}");
            TraceLine {
                start_ns: f[0].parse().expect("start_ns"),
                end_ns: f[1].parse().expect("end_ns"),
                span: f[3].to_owned(),
                stage: f[4].to_owned(),
                source: f[5].to_owned(),
            }
        })
        .collect()
}

#[test]
fn trace_ids_span_router_and_node_timelines() {
    let nodes = [start_node(), start_node()];
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        nodes: addrs.iter().map(|a| a.to_string()).collect(),
        tenants: ["t0=fixed:10", "t1=fixed:10"]
            .iter()
            .map(|t| RouterTenant::parse(t).expect("tenant spec"))
            .collect(),
        reconcile_ms: 0,
        trace_sample: 1,
        ..RouterConfig::default()
    })
    .expect("router starts");

    // One client-traced request per protocol, plus one untraced JSON
    // request the router self-samples (trace_sample = 1 tags them all).
    let json_id: u64 = (1 << 63) | 0x1001;
    let bin_id: u64 = (1 << 63) | 0x2002;
    let mut json = JsonClient::connect(router.addr());
    let (status, body) = json.invoke_traced(Some("t0"), "app-tr", 1_000, json_id);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json.invoke(Some("t1"), "app-tr", 1_500).0, 200);
    let mut bin = BinClient::connect(router.addr());
    let replies = bin.batch_traced(&[(1, "app-tb", 2_000), (2, "app-tb", 2_000)], bin_id);
    assert_eq!(replies.len(), 2);

    let (status, text) = http(router.addr(), "GET", "/debug/trace", "");
    assert_eq!(status, 200);
    let spans = parse_trace_text(&text);
    for id in [json_id, bin_id] {
        let hex = format!("{id:#018x}");
        let of_id: Vec<&TraceLine> = spans.iter().filter(|s| s.span == hex).collect();
        // The router recorded all six hop stages for this trace...
        for hop in [
            "ingress",
            "route",
            "forward",
            "await",
            "reassemble",
            "egress",
        ] {
            assert!(
                of_id.iter().any(|s| s.stage == hop && s.source == "router"),
                "router hop `{hop}` missing for {hex}:\n{text}"
            );
        }
        // ...and the node's pipeline stages arrived under the same id,
        // attributed to a node (`ADDR/reactor-i` or `ADDR/shard-i`).
        assert!(
            of_id
                .iter()
                .any(|s| s.stage == "decide" && s.source.contains("/shard-")),
            "node decide span missing for {hex}:\n{text}"
        );
        // Causal enclosure after rebasing: node spans sit inside the
        // router's forward→await window.
        let fwd_end = of_id
            .iter()
            .filter(|s| s.stage == "forward")
            .map(|s| s.end_ns)
            .max()
            .unwrap();
        let await_end = of_id
            .iter()
            .filter(|s| s.stage == "await")
            .map(|s| s.end_ns)
            .max()
            .unwrap();
        for s in of_id.iter().filter(|s| s.source != "router") {
            assert!(
                s.start_ns >= fwd_end && s.end_ns <= await_end,
                "node span {s:?} escapes the await window [{fwd_end}, {await_end}]"
            );
        }
    }

    // All three requests were traced (two propagated, one self-sampled);
    // a scrape is non-destructive.
    let (_, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert!(
        metrics.contains("sitw_router_traced_requests_total 3"),
        "{metrics}"
    );
    let again = http(router.addr(), "GET", "/debug/trace", "");
    assert_eq!(again, (200, text), "trace scrape was destructive");

    router.shutdown();
    for node in nodes {
        node.shutdown().unwrap();
    }
}

#[test]
fn fleet_federation_is_bucket_exact_and_events_record_provenance() {
    let nodes = [start_node(), start_node(), start_node()];
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    let router = router_over(&addrs, &["t0=fixed:10", "t1=fixed:10", "t2=fixed:10"]);

    let mut json = JsonClient::connect(router.addr());
    for i in 0..9u64 {
        let tenant = ["t0", "t1", "t2"][(i % 3) as usize];
        assert_eq!(json.invoke(Some(tenant), "app-f", 1_000 + i).0, 200);
    }
    let mut bin = BinClient::connect(router.addr());
    for f in 0..2u64 {
        let batch: Vec<(u16, String, u64)> = (0..6u64)
            .map(|i| ((i % 4) as u16, format!("app-b{i}"), 5_000 + f * 100 + i))
            .collect();
        let borrowed: Vec<(u16, &str, u64)> = batch
            .iter()
            .map(|(t, a, ts)| (*t, a.as_str(), *ts))
            .collect();
        assert_eq!(bin.batch(&borrowed).len(), 6);
    }

    // The federated scrape merges all three nodes, bucket-exactly: the
    // fleet decide count equals the requests routed, and equals the sum
    // of the node scrapes the router pulled.
    let (status, fleet) = http(router.addr(), "GET", "/metrics/fleet", "");
    assert_eq!(status, 200);
    assert!(fleet.contains("sitw_router_fleet_nodes 3"), "{fleet}");
    assert!(
        fleet.contains(
            "sitw_router_fleet_decision_latency_count{stage=\"decide\",proto=\"json\"} 9"
        ),
        "{fleet}"
    );
    assert!(
        fleet.contains(
            "sitw_router_fleet_decision_latency_count{stage=\"decide\",proto=\"bin\"} 12"
        ),
        "{fleet}"
    );
    let mut node_sum = 0u64;
    for addr in &addrs {
        let (status, hist) = http(*addr, "GET", "/debug/hist", "");
        assert_eq!(status, 200);
        let parsed = sitw_cluster::parse_hist_body(&hist).expect("well-formed node scrape");
        node_sum += parsed
            .stages
            .iter()
            .filter(|(stage, _, _)| stage == "decide")
            .map(|(_, _, h)| h.count())
            .sum::<u64>();
    }
    assert_eq!(node_sum, 21, "node scrapes must cover all requests");
    // Scraping federates live — it must not disturb the nodes.
    assert_eq!(
        http(router.addr(), "GET", "/metrics/fleet", "").1,
        fleet,
        "fleet scrape was destructive"
    );

    // Control-plane provenance: a migration leaves a migration and a
    // ring-epoch event in the router's ring.
    let (status, body) = http(router.addr(), "POST", "/admin/migrate?tenant=t0&to=0", "");
    assert_eq!(status, 200, "{body}");
    let (status, events) = http(router.addr(), "GET", "/debug/events", "");
    assert_eq!(status, 200);
    assert!(
        events.contains("\"kind\":\"migration\"") && events.contains("\"tenant\":\"t0\""),
        "{events}"
    );
    assert!(events.contains("\"kind\":\"ring-epoch\""), "{events}");

    router.shutdown();
    for node in nodes {
        node.shutdown().unwrap();
    }
}
