//! Wire format of the decision service: a fixed-schema JSON dialect,
//! parsed and emitted by hand (the workspace is dependency-free).
//!
//! Requests are small and their schema is closed, so the parser is a
//! single left-to-right scan that extracts the two fields it knows
//! (`"app"`: string, `"ts"`: non-negative integer milliseconds) and
//! tolerates any other well-formed members. It is not a general JSON
//! parser and does not try to be one.

use sitw_core::DecisionKind;

use crate::shard::Decision;

/// A parsed `POST /invoke` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeRequest {
    /// Application identifier (the unit of keep-alive, §2).
    pub app: String,
    /// Invocation timestamp in trace milliseconds. Must be monotone
    /// non-decreasing per application.
    pub ts: u64,
}

/// Parses an `/invoke` body: `{"app":"app-000123","ts":86400000}`.
pub fn parse_invoke(body: &[u8]) -> Result<InvokeRequest, String> {
    let mut app: Option<String> = None;
    let mut ts: Option<u64> = None;
    let mut i = 0usize;

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] == b' ' || b[i] == b'\t' || b[i] == b'\r' || b[i] == b'\n') {
            i += 1;
        }
        i
    }

    /// Reads the four hex digits of a `\uXXXX` escape starting at `i`.
    fn parse_hex4(b: &[u8], i: usize) -> Result<(u32, usize), String> {
        if i + 4 > b.len() {
            return Err("truncated \\u escape".into());
        }
        let mut v = 0u32;
        for &c in &b[i..i + 4] {
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit '{}' in \\u escape", c as char))?;
            v = v * 16 + d;
        }
        Ok((v, i + 4))
    }

    fn parse_string(b: &[u8], mut i: usize) -> Result<(String, usize), String> {
        if i >= b.len() || b[i] != b'"' {
            return Err("expected string".into());
        }
        i += 1;
        // Accumulate raw bytes and validate UTF-8 once at the end, so
        // multi-byte characters survive intact.
        let mut out: Vec<u8> = Vec::new();
        while i < b.len() {
            match b[i] {
                b'"' => {
                    let s = String::from_utf8(out).map_err(|_| "invalid utf-8 in string")?;
                    return Ok((s, i + 1));
                }
                b'\\' => {
                    i += 1;
                    if i >= b.len() {
                        break;
                    }
                    match b[i] {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0C),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let (unit, next) = parse_hex4(b, i + 1)?;
                            i = next;
                            let cp = match unit {
                                // High surrogate: a \uDC00..\uDFFF low
                                // surrogate must follow (RFC 8259 §7).
                                0xD800..=0xDBFF => {
                                    if b.get(i) != Some(&b'\\') || b.get(i + 1) != Some(&b'u') {
                                        return Err("unpaired high surrogate".into());
                                    }
                                    let (lo, next) = parse_hex4(b, i + 2)?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(format!("invalid low surrogate \\u{lo:04x}"));
                                    }
                                    i = next;
                                    0x10000 + ((unit - 0xD800) << 10) + (lo - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!("unpaired low surrogate \\u{unit:04x}"))
                                }
                                bmp => bmp,
                            };
                            let ch = char::from_u32(cp)
                                .ok_or_else(|| format!("invalid codepoint U+{cp:04X}"))?;
                            let mut utf8 = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut utf8).as_bytes());
                            continue; // `i` already points past the escape.
                        }
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                    i += 1;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        Err("unterminated string".into())
    }

    /// Skips any well-formed JSON value (scalar, object, or array)
    /// starting at `i`, returning the index just past it.
    fn skip_value(b: &[u8], mut i: usize) -> Result<usize, String> {
        match b.get(i) {
            Some(b'"') => {
                let (_, next) = parse_string(b, i)?;
                Ok(next)
            }
            Some(b'{') | Some(b'[') => {
                // Track nesting depth; strings inside may contain
                // brackets, so skip them wholesale.
                let mut depth = 0usize;
                while i < b.len() {
                    match b[i] {
                        b'"' => {
                            let (_, next) = parse_string(b, i)?;
                            i = next;
                        }
                        b'{' | b'[' => {
                            depth += 1;
                            i += 1;
                        }
                        b'}' | b']' => {
                            depth -= 1;
                            i += 1;
                            if depth == 0 {
                                return Ok(i);
                            }
                        }
                        _ => i += 1,
                    }
                }
                Err("unterminated container".into())
            }
            Some(_) => {
                // Number / true / false / null: runs to a delimiter.
                while i < b.len() && !matches!(b[i], b',' | b'}' | b']') {
                    i += 1;
                }
                Ok(i)
            }
            None => Err("expected value".into()),
        }
    }

    fn parse_u64(b: &[u8], mut i: usize) -> Result<(u64, usize), String> {
        let start = i;
        let mut v: u64 = 0;
        while i < b.len() && b[i].is_ascii_digit() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((b[i] - b'0') as u64))
                .ok_or("integer overflow")?;
            i += 1;
        }
        if i == start {
            return Err("expected integer".into());
        }
        Ok((v, i))
    }

    i = skip_ws(body, i);
    if i >= body.len() || body[i] != b'{' {
        return Err("expected object".into());
    }
    i = skip_ws(body, i + 1);
    if i < body.len() && body[i] == b'}' {
        // Empty object: fall through to the missing-field errors.
    } else {
        loop {
            i = skip_ws(body, i);
            let (key, next) = parse_string(body, i)?;
            i = skip_ws(body, next);
            if i >= body.len() || body[i] != b':' {
                return Err("expected ':'".into());
            }
            i = skip_ws(body, i + 1);
            match key.as_str() {
                "app" => {
                    let (v, next) = parse_string(body, i)?;
                    app = Some(v);
                    i = next;
                }
                "ts" => {
                    let (v, next) = parse_u64(body, i)?;
                    ts = Some(v);
                    i = next;
                }
                _ => {
                    i = skip_value(body, i)?;
                }
            }
            i = skip_ws(body, i);
            match body.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => break,
                _ => return Err("expected ',' or '}'".into()),
            }
        }
    }

    let app = app.ok_or("missing \"app\"")?;
    if app.is_empty() {
        return Err("empty \"app\"".into());
    }
    let ts = ts.ok_or("missing \"ts\"")?;
    Ok(InvokeRequest { app, ts })
}

/// Short stable name of a decision branch, used in responses and
/// snapshots.
pub fn kind_str(kind: DecisionKind) -> &'static str {
    match kind {
        DecisionKind::Histogram => "histogram",
        DecisionKind::StandardKeepAlive => "standard",
        DecisionKind::Arima => "arima",
        DecisionKind::Static => "static",
    }
}

/// Inverse of [`kind_str`].
pub fn kind_from_str(s: &str) -> Result<DecisionKind, String> {
    match s {
        "histogram" => Ok(DecisionKind::Histogram),
        "standard" => Ok(DecisionKind::StandardKeepAlive),
        "arima" => Ok(DecisionKind::Arima),
        "static" => Ok(DecisionKind::Static),
        other => Err(format!("unknown decision kind '{other}'")),
    }
}

/// Renders the `/invoke` response body for a decision.
pub fn render_decision(out: &mut Vec<u8>, d: &Decision) {
    out.extend_from_slice(b"{\"verdict\":\"");
    out.extend_from_slice(if d.cold { b"cold" } else { b"warm" });
    out.extend_from_slice(b"\",\"kind\":\"");
    out.extend_from_slice(kind_str(d.kind).as_bytes());
    out.extend_from_slice(b"\",\"pre_warm_ms\":");
    push_u64(out, d.windows.pre_warm_ms);
    out.extend_from_slice(b",\"keep_alive_ms\":");
    push_u64(out, d.windows.keep_alive_ms);
    out.extend_from_slice(b",\"prewarm_load\":");
    out.extend_from_slice(if d.prewarm_load { b"true" } else { b"false" });
    out.push(b'}');
}

/// Appends the decimal representation of `v` without allocating.
pub fn push_u64(out: &mut Vec<u8>, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::Windows;

    #[test]
    fn parse_roundtrip_and_field_order() {
        let r = parse_invoke(br#"{"app":"app-000017","ts":86400000}"#).unwrap();
        assert_eq!(r.app, "app-000017");
        assert_eq!(r.ts, 86_400_000);
        // Reversed field order and extra members are fine.
        let r = parse_invoke(br#"{ "ts": 5 , "app" : "x" , "extra": "y" }"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("x", 5));
    }

    #[test]
    fn parse_preserves_utf8_app_ids() {
        let r = parse_invoke("{\"app\":\"café-功能\",\"ts\":1}".as_bytes()).unwrap();
        assert_eq!(r.app, "café-功能");
    }

    #[test]
    fn parse_decodes_unicode_escapes() {
        // Regression: any valid JSON containing \uXXXX used to be
        // rejected with "unsupported escape \u".
        let r = parse_invoke(br#"{"app":"caf\u00e9-\u529f\u80fd","ts":1}"#).unwrap();
        assert_eq!(r.app, "caf\u{e9}-\u{529f}\u{80fd}");
        // Surrogate pair: \ud83d\ude80 decodes to U+1F680.
        let r = parse_invoke(br#"{"app":"\ud83d\ude80","ts":2}"#).unwrap();
        assert_eq!(r.app, "\u{1F680}");
        // Escapes in skipped members must parse too.
        let r = parse_invoke(br#"{"meta":"A\u0042\b\f","app":"a","ts":3}"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("a", 3));
        // Case-insensitive hex digits; literal text continues after.
        let r = parse_invoke(br#"{"app":"a\u004Bx","ts":4}"#).unwrap();
        assert_eq!(r.app, "aKx");
    }

    #[test]
    fn parse_rejects_invalid_unicode_escapes() {
        for body in [
            br#"{"app":"\u12","ts":1}"#.as_slice(),    // Truncated.
            br#"{"app":"\uzzzz","ts":1}"#.as_slice(),  // Not hex.
            br#"{"app":"\ud83d","ts":1}"#.as_slice(),  // Lone high surrogate.
            br#"{"app":"\ud83dx","ts":1}"#.as_slice(), // High + no escape.
            br#"{"app":"\ud83dA","ts":1}"#.as_slice(), // High + non-low.
            br#"{"app":"\ude80","ts":1}"#.as_slice(),  // Lone low surrogate.
        ] {
            assert!(
                parse_invoke(body).is_err(),
                "{}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn parse_skips_nested_unknown_members() {
        let r = parse_invoke(br#"{"meta":{"x":{"y":[1,2]},"s":"a}b"},"app":"a","ts":1}"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("a", 1));
        let r = parse_invoke(br#"{"app":"a","tags":[1,[2,3],"],"],"ts":7,"flag":true}"#).unwrap();
        assert_eq!((r.app.as_str(), r.ts), ("a", 7));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_invoke(b"").is_err());
        assert!(parse_invoke(b"[]").is_err());
        assert!(parse_invoke(br#"{"app":"x"}"#).is_err());
        assert!(parse_invoke(br#"{"ts":1}"#).is_err());
        assert!(parse_invoke(br#"{"app":"","ts":1}"#).is_err());
        assert!(parse_invoke(br#"{"app":"x","ts":-3}"#).is_err());
        assert!(parse_invoke(br#"{"app":"x","ts":99999999999999999999999}"#).is_err());
    }

    #[test]
    fn decision_renders_compact_json() {
        let mut out = Vec::new();
        render_decision(
            &mut out,
            &Decision {
                cold: true,
                prewarm_load: false,
                kind: sitw_core::DecisionKind::StandardKeepAlive,
                windows: Windows::keep_loaded(14_400_000),
            },
        );
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "{\"verdict\":\"cold\",\"kind\":\"standard\",\"pre_warm_ms\":0,\
             \"keep_alive_ms\":14400000,\"prewarm_load\":false}"
        );
    }

    #[test]
    fn kind_str_roundtrip() {
        use sitw_core::DecisionKind::*;
        for k in [Histogram, StandardKeepAlive, Arima, Static] {
            assert_eq!(kind_from_str(kind_str(k)).unwrap(), k);
        }
        assert!(kind_from_str("nope").is_err());
    }

    #[test]
    fn push_u64_formats() {
        let mut out = Vec::new();
        push_u64(&mut out, 0);
        out.push(b' ');
        push_u64(&mut out, u64::MAX);
        assert_eq!(out, b"0 18446744073709551615");
    }
}
