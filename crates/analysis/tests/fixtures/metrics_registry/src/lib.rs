//! Seeded violations for the `metrics-registry` rule: a counter without
//! the `_total` suffix (which is also never rendered), and a rendered
//! series that no registry entry declares.

#![forbid(unsafe_code)]

// sitw-lint: metrics-registry
pub const REGISTRY: &[(&str, &str, &str)] = &[
    ("sitw_serve_queue_depth", "gauge", "Decisions queued."),
    ("sitw_serve_requests", "counter", "Requests served."),
];

pub fn render() -> String {
    let mut out = String::new();
    out.push_str("sitw_serve_queue_depth 0\n");
    out.push_str("sitw_serve_mystery_total 1\n");
    out
}
