//! Shared harness for the figure-regeneration binary and the Criterion
//! benchmarks: canonical workload setups, the full policy grid of the
//! paper's evaluation, and output helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use sitw_core::HybridConfig;
use sitw_sim::{run_sweep, PolicyAggregate, PolicySpec};
use sitw_stats::report::{fnum, write_csv, TextTable};
use sitw_stats::Ecdf;
use sitw_trace::{build_population, Population, PopulationConfig, TraceConfig, WEEK_MS};

/// Harness-wide settings (CLI-controlled in the `figures` binary).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Applications for the policy-evaluation sweep (Figures 14–19).
    pub sim_apps: usize,
    /// Applications for the characterization figures (Figures 1–8).
    pub char_apps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-app daily event cap for simulation traces.
    pub sim_cap_per_day: f64,
    /// Per-app daily event cap for the characterization trace.
    pub char_cap_per_day: f64,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Output directory for CSV series.
    pub out_dir: PathBuf,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            sim_apps: 2_000,
            char_apps: 6_000,
            seed: 42,
            sim_cap_per_day: 5_000.0,
            char_cap_per_day: 2_000.0,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            out_dir: PathBuf::from("results"),
        }
    }
}

impl HarnessConfig {
    /// The population used for policy evaluation.
    pub fn sim_population(&self) -> Population {
        build_population(&PopulationConfig {
            num_apps: self.sim_apps,
            seed: self.seed,
        })
    }

    /// The (larger) population used for characterization.
    pub fn char_population(&self) -> Population {
        build_population(&PopulationConfig {
            num_apps: self.char_apps,
            seed: self.seed ^ 0xC11A5,
        })
    }

    /// One-week trace configuration for the policy sweep (§5.1 uses the
    /// first week of the trace).
    pub fn sim_trace_config(&self) -> TraceConfig {
        TraceConfig {
            horizon_ms: WEEK_MS,
            cap_per_day: self.sim_cap_per_day,
            seed: self.seed ^ 0x51E,
        }
    }

    /// Two-week trace configuration for characterization (Figure 4 spans
    /// the full collection window).
    pub fn char_trace_config(&self) -> TraceConfig {
        TraceConfig {
            horizon_ms: 2 * WEEK_MS,
            cap_per_day: self.char_cap_per_day,
            seed: self.seed ^ 0xC4A7,
        }
    }

    /// Output path for a named CSV artifact.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }
}

/// The fixed keep-alive lengths of Figure 14 (minutes).
pub const FIXED_MINUTES: [u64; 8] = [5, 10, 20, 30, 45, 60, 90, 120];

/// Hybrid histogram ranges of Figure 15 (hours).
pub const HYBRID_RANGE_HOURS: [usize; 4] = [1, 2, 3, 4];

/// Cutoff pairs of Figure 16.
pub const CUTOFFS: [(f64, f64); 6] = [
    (0.0, 100.0),
    (5.0, 100.0),
    (1.0, 99.0),
    (5.0, 99.0),
    (1.0, 95.0),
    (5.0, 95.0),
];

/// CV thresholds of Figure 18.
pub const CV_THRESHOLDS: [f64; 4] = [0.0, 2.0, 5.0, 10.0];

/// Builds the complete policy grid covering every evaluation figure.
/// Labels are unique; duplicate configurations are emitted once.
pub fn full_policy_grid() -> Vec<PolicySpec> {
    let mut specs: Vec<PolicySpec> = Vec::new();
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut push = |spec: PolicySpec, specs: &mut Vec<PolicySpec>| {
        if seen.insert(spec.label(), ()).is_none() {
            specs.push(spec);
        }
    };

    for minutes in FIXED_MINUTES {
        push(PolicySpec::fixed_minutes(minutes), &mut specs);
    }
    push(PolicySpec::fixed_minutes(240), &mut specs); // Figure 19 contrast.
    push(PolicySpec::NoUnloading, &mut specs);

    for hours in HYBRID_RANGE_HOURS {
        push(
            PolicySpec::Hybrid(HybridConfig::with_range_hours(hours)),
            &mut specs,
        );
    }
    for (head, tail) in CUTOFFS {
        push(
            PolicySpec::Hybrid(HybridConfig::default().with_cutoffs(head, tail)),
            &mut specs,
        );
    }
    for cv in CV_THRESHOLDS {
        push(
            PolicySpec::Hybrid(HybridConfig::default().with_cv_threshold(cv)),
            &mut specs,
        );
    }
    push(
        PolicySpec::Hybrid(HybridConfig::default().without_arima()),
        &mut specs,
    );
    push(
        PolicySpec::Hybrid(HybridConfig::default().without_pre_warming()),
        &mut specs,
    );
    specs
}

/// Runs the full grid and indexes aggregates by label.
pub fn run_full_grid(cfg: &HarnessConfig) -> HashMap<String, PolicyAggregate> {
    let population = cfg.sim_population();
    let trace_cfg = cfg.sim_trace_config();
    let specs = full_policy_grid();
    run_sweep(&population, &trace_cfg, &specs, cfg.threads)
        .into_iter()
        .map(|a| (a.label.clone(), a))
        .collect()
}

/// Label helpers matching [`PolicySpec::label`] output.
pub mod labels {
    /// Fixed keep-alive label.
    pub fn fixed(minutes: u64) -> String {
        format!("fixed-{minutes}min")
    }

    /// Default hybrid label for a range in hours.
    pub fn hybrid(hours: usize) -> String {
        format!("hybrid-{hours}h[5,99]cv2")
    }

    /// Hybrid label with explicit cutoffs (4-hour range).
    pub fn hybrid_cutoff(head: f64, tail: f64) -> String {
        format!("hybrid-4h[{head},{tail}]cv2")
    }

    /// Hybrid label with an explicit CV threshold (4-hour range).
    pub fn hybrid_cv(cv: f64) -> String {
        format!("hybrid-4h[5,99]cv{cv}")
    }

    /// The no-ARIMA hybrid label.
    pub fn hybrid_noarima() -> String {
        "hybrid-4h[5,99]cv2-noarima".to_owned()
    }

    /// The no-pre-warming hybrid label.
    pub fn hybrid_nopw() -> String {
        "hybrid-4h[5,99]cv2-nopw".to_owned()
    }

    /// The no-unloading label.
    pub fn no_unloading() -> String {
        "no-unloading".to_owned()
    }
}

/// Formats a CDF as `(x, F)` CSV rows labelled by series.
pub fn cdf_rows(series: &str, ecdf: &Ecdf, max_points: usize) -> Vec<Vec<String>> {
    ecdf.points_downsampled(max_points)
        .into_iter()
        .map(|(x, f)| vec![series.to_owned(), fnum(x, 4), fnum(f, 6)])
        .collect()
}

/// Writes labelled CDF series to a CSV artifact.
pub fn write_series(
    cfg: &HarnessConfig,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    write_csv(&cfg.csv_path(name), headers, rows)
}

/// Prints a table with a figure banner.
pub fn print_figure(id: &str, caption: &str, table: &TextTable) {
    println!("\n=== {id}: {caption} ===");
    print!("{}", table.render());
}

/// Convenience: percentile summary row of per-app cold percentages.
pub fn cold_summary_row(agg: &PolicyAggregate) -> Vec<String> {
    vec![
        agg.label.clone(),
        fnum(agg.cold_pct_percentile(25.0), 1),
        fnum(agg.cold_pct_percentile(50.0), 1),
        fnum(agg.cold_pct_percentile(75.0), 1),
        fnum(agg.cold_pct_percentile(90.0), 1),
        format!("{}", agg.cold_starts),
    ]
}

/// Returns true when `path` exists and is a directory (used by tests).
pub fn dir_exists(path: &Path) -> bool {
    path.is_dir()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_trace::DAY_MS;

    #[test]
    fn grid_has_unique_labels_and_covers_figures() {
        let specs = full_policy_grid();
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len(), "duplicate labels");

        for minutes in FIXED_MINUTES {
            assert!(labels.contains(&labels::fixed(minutes)));
        }
        assert!(labels.contains(&labels::no_unloading()));
        for hours in HYBRID_RANGE_HOURS {
            assert!(labels.contains(&labels::hybrid(hours)), "{hours}h");
        }
        for (h, t) in CUTOFFS {
            assert!(
                labels.contains(&labels::hybrid_cutoff(h, t)),
                "cutoff {h},{t}"
            );
        }
        for cv in CV_THRESHOLDS {
            assert!(labels.contains(&labels::hybrid_cv(cv)), "cv {cv}");
        }
        assert!(labels.contains(&labels::hybrid_noarima()));
        assert!(labels.contains(&labels::hybrid_nopw()));
    }

    #[test]
    fn label_helpers_match_policyspec() {
        assert_eq!(PolicySpec::fixed_minutes(10).label(), labels::fixed(10));
        assert_eq!(
            PolicySpec::Hybrid(HybridConfig::with_range_hours(2)).label(),
            labels::hybrid(2)
        );
        assert_eq!(
            PolicySpec::Hybrid(HybridConfig::default().with_cutoffs(1.0, 95.0)).label(),
            labels::hybrid_cutoff(1.0, 95.0)
        );
        assert_eq!(
            PolicySpec::Hybrid(HybridConfig::default().with_cv_threshold(10.0)).label(),
            labels::hybrid_cv(10.0)
        );
        assert_eq!(
            PolicySpec::Hybrid(HybridConfig::default().without_arima()).label(),
            labels::hybrid_noarima()
        );
        assert_eq!(
            PolicySpec::Hybrid(HybridConfig::default().without_pre_warming()).label(),
            labels::hybrid_nopw()
        );
    }

    #[test]
    fn tiny_grid_run_produces_all_aggregates() {
        let cfg = HarnessConfig {
            sim_apps: 40,
            char_apps: 40,
            sim_cap_per_day: 500.0,
            ..HarnessConfig::default()
        };
        // Shrink the horizon for test speed.
        let population = cfg.sim_population();
        let trace_cfg = TraceConfig {
            horizon_ms: DAY_MS,
            cap_per_day: 500.0,
            seed: 1,
        };
        let specs = full_policy_grid();
        let aggs = run_sweep(&population, &trace_cfg, &specs, 2);
        assert_eq!(aggs.len(), specs.len());
        assert!(aggs.iter().all(|a| a.apps > 0));
    }
}
