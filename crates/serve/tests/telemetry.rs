//! Flight-recorder telemetry acceptance tests: per-stage histogram
//! export on `/metrics` (real Prometheus `histogram` series), exact
//! shard-merge of bucket counts, the `/debug/trace` and `/debug/threads`
//! endpoints over HTTP, deterministic span ordering across
//! reactor→shard→reply hops under a [`ManualClock`], and the
//! `telemetry: false` off-switch.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sitw_serve::wire::{self, encode_request_frame, BinReply, ServerFrameDecode};
use sitw_serve::{merge_spans, ServeConfig, Server};
use sitw_sim::PolicySpec;
use sitw_telemetry::{Clock, FlightRecorder, ManualClock, SpanEvent, Stage, STAGES};

fn base_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    }
}

/// Minimal blocking HTTP/1.1 client over one keep-alive connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let req = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("write");
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, String) {
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
                let status: u16 = header
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status");
                let content_length: usize = header
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let total = header_end + 4 + content_length;
                while self.buf.len() < total {
                    self.fill();
                }
                let body = String::from_utf8_lossy(&self.buf[header_end + 4..total]).into_owned();
                self.buf.drain(..total);
                return (status, body);
            }
            self.fill();
        }
    }

    fn invoke(&mut self, app: &str, ts: u64) -> u16 {
        let body = format!("{{\"app\":\"{app}\",\"ts\":{ts}}}");
        self.request("POST", "/invoke", &body).0
    }

    /// `POST /invoke` carrying a propagated `x-sitw-trace` id.
    fn invoke_traced(&mut self, app: &str, ts: u64, trace: u64) -> u16 {
        let body = format!("{{\"app\":\"{app}\",\"ts\":{ts}}}");
        let req = format!(
            "POST /invoke HTTP/1.1\r\nx-sitw-trace: {trace:#018x}\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("write");
        self.read_response().0
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed connection unexpectedly");
        self.buf.extend_from_slice(&chunk[..n]);
    }
}

/// Sends one SITW-BIN request frame and reads the whole reply frame.
fn bin_roundtrip(addr: SocketAddr, records: &[(&str, u64)]) -> Vec<BinReply> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut frame = Vec::new();
    encode_request_frame(&mut frame, records);
    stream.write_all(&frame).expect("write frame");
    let mut buf = Vec::new();
    loop {
        match wire::decode_server_frame(&buf) {
            ServerFrameDecode::Reply { records, consumed } => {
                buf.drain(..consumed);
                return records;
            }
            ServerFrameDecode::Incomplete => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk).expect("read");
                assert!(n > 0, "server closed mid-reply");
                buf.extend_from_slice(&chunk[..n]);
            }
            other => panic!("{other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// The acceptance criterion: `sitw_serve_decision_latency` is exported
// as a true histogram per stage and tenant, and the shard-merged bucket
// counts are exactly the sum of the per-shard recordings.

#[test]
fn stage_histograms_cover_every_request_and_merge_exactly() {
    let server = Server::start(base_config()).unwrap();
    let mut client = Client::connect(server.addr());
    const JSON_N: u64 = 20;
    for i in 0..JSON_N {
        assert_eq!(client.invoke(&format!("app-{}", i % 5), 1_000 + i), 200);
    }
    let bin_records: Vec<(String, u64)> = (0..30u64)
        .map(|i| (format!("bin-{}", i % 7), 5_000 + i))
        .collect();
    let borrowed: Vec<(&str, u64)> = bin_records.iter().map(|(a, t)| (a.as_str(), *t)).collect();
    let replies = bin_roundtrip(server.addr(), &borrowed);
    assert_eq!(replies.len(), 30);
    let bin_n = replies.len() as u64;

    let report = server.metrics();
    let stages = report.stage_hists();
    let names: Vec<&str> = stages.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        ["read", "decode", "queue", "decide", "render", "write"]
    );
    // Every stage observed every decision, on the right protocol.
    for (name, h) in &stages {
        assert_eq!(
            h.json.count(),
            JSON_N,
            "stage {name} undercounted json decisions"
        );
        assert_eq!(
            h.bin.count(),
            bin_n,
            "stage {name} undercounted bin decisions"
        );
    }
    // Exact merge: the aggregate decide histogram IS the element-wise
    // sum of the per-shard recordings — no estimator, no sampling.
    let mut manual = sitw_serve::ProtoHists::default();
    for s in &report.shards {
        manual.merge(&s.decide_ns);
    }
    assert_eq!(stages[3].1, manual);
    // Both shards actually recorded (routing spread the apps).
    assert!(report
        .shards
        .iter()
        .all(|s| !s.decide_ns.merged().is_empty()));

    // The exposition carries real histogram series for every stage and
    // the default tenant, with consistent _bucket/_sum/_count triples.
    let (status, text) = client.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    for stage in ["read", "decode", "queue", "decide", "render", "write"] {
        for proto in ["json", "bin"] {
            let series = format!("sitw_serve_decision_latency_bucket{{stage=\"{stage}\",proto=\"{proto}\",le=\"+Inf\"}}");
            assert!(text.contains(&series), "missing {series} in:\n{text}");
            let count =
                format!("sitw_serve_decision_latency_count{{stage=\"{stage}\",proto=\"{proto}\"}}");
            assert!(text.contains(&count), "missing {count}");
        }
    }
    assert!(
        text.contains("sitw_serve_decision_latency_count{stage=\"decide\",tenant=\"default\"} 50")
    );
    assert!(text.contains("# TYPE sitw_serve_decision_latency histogram"));

    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// The /debug endpoints over HTTP.

#[test]
fn debug_trace_and_threads_over_http() {
    let server = Server::start(base_config()).unwrap();
    let mut client = Client::connect(server.addr());
    for i in 0..10u64 {
        assert_eq!(client.invoke(&format!("t-{i}"), 2_000 + i), 200);
    }
    let replies = bin_roundtrip(server.addr(), &[("b-0", 9_000), ("b-1", 9_001)]);
    assert_eq!(replies.len(), 2);

    // Text trace: every pipeline stage shows up in the merged spans.
    let (status, trace) = client.request("GET", "/debug/trace?n=256", "");
    assert_eq!(status, 200);
    assert!(trace.starts_with("# start_ns end_ns dur_ns span stage source"));
    for stage in ["read", "decode", "queue", "decide", "render", "write"] {
        assert!(
            trace.lines().any(|l| l.split(' ').nth(4) == Some(stage)),
            "stage {stage} missing from trace:\n{trace}"
        );
    }
    assert!(trace.contains("reactor-") && trace.contains("shard-"));

    // JSON trace honors n=K.
    let (status, json) = client.request("GET", "/debug/trace?n=3&format=json", "");
    assert_eq!(status, 200);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(json.matches("\"span\":").count(), 3);

    // Thread introspection: sane queue gauges and reactor counters.
    let (status, threads) = client.request("GET", "/debug/threads", "");
    assert_eq!(status, 200);
    assert!(threads.contains("\"reactors\":[{\"id\":0,"));
    assert!(threads.contains("\"epoll_waits\":"));
    assert!(threads.contains("\"shards\":[{\"id\":0,\"mailbox_depth\":"));
    // The gauges are drain-observed: depth is the backlog of the most
    // recent wave, peak its high-water mark — real dispatches must have
    // driven at least one shard's peak above zero.
    assert!(
        threads.matches("\"mailbox_peak\":0}").count() < 2,
        "no shard ever saw a queued message: {threads}"
    );
    // Method guard: the debug paths are known, so wrong verbs are 405.
    assert_eq!(client.request("POST", "/debug/trace", "").0, 405);
    assert_eq!(client.request("POST", "/debug/threads", "").0, 405);

    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Satellite: deterministic-clock span ordering across the
// reactor→shard→reply hops, using the same recorder + merge machinery
// the server runs.

#[test]
fn manual_clock_spans_order_deterministically_across_hops() {
    let clock = ManualClock::new(100);
    let mut reactor = FlightRecorder::new(32);
    let mut shard = FlightRecorder::new(32);
    let span = (3u64 << 48) | 7;

    // Reactor thread: read then decode, each taking 10 ns.
    let tick = |advance: u64| {
        let t0 = clock.now_ns();
        clock.advance(advance);
        (t0, clock.now_ns())
    };
    let (r0, r1) = tick(10);
    reactor.push(SpanEvent {
        span,
        stage: Stage::Read,
        start_ns: r0,
        end_ns: r1,
    });
    let (d0, d1) = tick(10);
    reactor.push(SpanEvent {
        span,
        stage: Stage::Decode,
        start_ns: d0,
        end_ns: d1,
    });
    // Hop to the shard: mailbox wait then the decision itself.
    let (q0, q1) = tick(25);
    shard.push(SpanEvent {
        span,
        stage: Stage::Queue,
        start_ns: q0,
        end_ns: q1,
    });
    let (x0, x1) = tick(5);
    shard.push(SpanEvent {
        span,
        stage: Stage::Decide,
        start_ns: x0,
        end_ns: x1,
    });
    // Hop back to the reactor: render, then the coalesced write.
    let (n0, n1) = tick(10);
    reactor.push(SpanEvent {
        span,
        stage: Stage::Render,
        start_ns: n0,
        end_ns: n1,
    });
    let (w0, w1) = tick(40);
    reactor.push(SpanEvent {
        span,
        stage: Stage::Write,
        start_ns: w0,
        end_ns: w1,
    });

    let merged = merge_spans(
        &[
            ("reactor-0".to_owned(), &reactor),
            ("shard-1".to_owned(), &shard),
        ],
        16,
    );
    // Exactly the six pipeline stages, in pipeline order, despite
    // interleaving two recorders — merge sorts on start_ns.
    let got: Vec<Stage> = merged.iter().map(|(_, ev)| ev.stage).collect();
    assert_eq!(got, STAGES.to_vec());
    let sources: Vec<&str> = merged.iter().map(|(s, _)| s.as_str()).collect();
    assert_eq!(
        sources,
        [
            "reactor-0",
            "reactor-0",
            "shard-1",
            "shard-1",
            "reactor-0",
            "reactor-0"
        ]
    );
    // Stages tile the timeline contiguously: each starts where the
    // previous ended (the recording convention the server follows).
    assert_eq!(merged[0].1.start_ns, 100);
    for pair in merged.windows(2) {
        assert_eq!(pair[0].1.end_ns, pair[1].1.start_ns);
    }
    assert_eq!(merged[5].1.end_ns, 200);
    // All hops agree on the span id.
    assert!(merged.iter().all(|(_, ev)| ev.span == span));
}

// ---------------------------------------------------------------------
// Fleet-plane provenance surfaces: propagated trace ids tag the node's
// pipeline spans, `/debug/events` records lifecycle provenance,
// `/debug/policy` explains the live verdict, and `/debug/hist` exposes
// the raw federation format. Scraping any of them is non-destructive.

#[test]
fn debug_scrapes_are_non_destructive_and_carry_provenance() {
    let server = Server::start(base_config()).unwrap();
    let mut client = Client::connect(server.addr());
    let trace = (1u64 << 63) | 0xBEE;
    assert_eq!(client.invoke_traced("traced-app", 1_000, trace), 200);
    for i in 0..4u64 {
        assert_eq!(client.invoke(&format!("app-{i}"), 2_000 + i), 200);
    }

    // The propagated id IS the span id of the node's pipeline stages.
    let (status, trace_text) = client.request("GET", "/debug/trace?n=256", "");
    assert_eq!(status, 200);
    let hex = format!("{trace:#018x}");
    assert!(
        trace_text.contains(&hex),
        "propagated id {hex} missing from trace:\n{trace_text}"
    );

    // Regression: a scrape observes the ring, it must not drain it.
    // Back-to-back scrapes with no traffic in between are identical.
    let again = client.request("GET", "/debug/trace?n=256", "");
    assert_eq!(again, (200, trace_text), "trace scrape was destructive");
    let hist = client.request("GET", "/debug/hist", "");
    assert_eq!(hist.0, 200);
    assert_eq!(
        client.request("GET", "/debug/hist", ""),
        hist,
        "hist scrape was destructive"
    );
    // The federation wire format: `stage <name> <proto> <sum> <b0>..`.
    assert!(hist.1.lines().any(|l| l.starts_with("stage decide json ")));
    assert!(hist.1.lines().any(|l| l.starts_with("tenant default ")));

    // Lifecycle provenance: five first-sight invocations = cold starts.
    let (status, events) = client.request("GET", "/debug/events", "");
    assert_eq!(status, 200);
    assert!(
        events.contains("\"kind\":\"cold-start\"") && events.contains("\"app\":\"traced-app\""),
        "missing cold-start provenance: {events}"
    );
    assert_eq!(
        client.request("GET", "/debug/events", "").1,
        events,
        "events scrape was destructive"
    );

    // Decision provenance: the live verdict for one (tenant, app).
    let (status, policy) = client.request("GET", "/debug/policy?app=traced-app", "");
    assert_eq!(status, 200);
    assert!(policy.contains("\"tenant\":\"default\""));
    assert!(policy.contains("\"app\":\"traced-app\""));
    assert!(policy.contains("\"last_verdict\":{") && policy.contains("\"cold\":true"));
    assert_eq!(client.request("GET", "/debug/policy", "").0, 400);
    assert_eq!(client.request("GET", "/debug/policy?app=nope", "").0, 404);

    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// The off switch: serving still works, debug surfaces come back empty.

#[test]
fn no_telemetry_serves_but_exports_nothing() {
    let server = Server::start(ServeConfig {
        telemetry: false,
        ..base_config()
    })
    .unwrap();
    let mut client = Client::connect(server.addr());
    for i in 0..5u64 {
        assert_eq!(client.invoke("quiet", 1_000 + i * 100_000), 200);
    }
    let (status, text) = client.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    // Bucket series render as honest zeros (no garbage, no quantiles).
    assert!(text.contains("sitw_serve_decision_latency_count{stage=\"decide\",proto=\"json\"} 0"));
    assert!(!text.contains("sitw_serve_decision_latency_us{"));
    assert!(text.contains("sitw_serve_invocations_total"));
    let (status, trace) = client.request("GET", "/debug/trace", "");
    assert_eq!(status, 200);
    assert_eq!(trace.lines().count(), 1, "only the header line: {trace}");
    let (status, threads) = client.request("GET", "/debug/threads", "");
    assert_eq!(status, 200);
    assert!(threads.contains("\"reactors\":[]"));
    server.shutdown().unwrap();
}
