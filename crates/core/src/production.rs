//! Production-style histogram management (§6).
//!
//! The Azure Functions implementation differs from the simulation policy
//! in bookkeeping, not in substance:
//!
//! * one histogram of 240 one-minute integer buckets (960 bytes) per
//!   application, kept in memory;
//! * a **new histogram per day**, retained for two weeks, so pattern
//!   changes can be tracked; the daily histograms can be aggregated "in a
//!   weighted fashion to give more importance to recent records";
//! * hourly backups to a database (modelled here as a backup counter and
//!   serialized-size accounting);
//! * pre-warm events scheduled at the computed interval **minus 90
//!   seconds**, off the critical path.
//!
//! [`ProductionManager`] implements that scheme for a fleet of
//! applications and exposes the same `(pre-warm, keep-alive)` decisions
//! as [`crate::HybridConfig`], computed from the weighted aggregate.

use std::collections::HashMap;

use sitw_stats::histogram::WeightedBins;
use sitw_stats::RangeHistogram;

use crate::policy::{DurationMs, Windows, MINUTE_MS};

/// Weighting applied across a window of daily histograms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecencyWeighting {
    /// Every retained day weighs the same.
    Uniform,
    /// Day `d` days in the past weighs `decay^d` (0 < decay ≤ 1).
    Exponential {
        /// Per-day decay factor.
        decay: f64,
    },
}

impl RecencyWeighting {
    fn weight(&self, age_days: u64) -> f64 {
        match self {
            RecencyWeighting::Uniform => 1.0,
            RecencyWeighting::Exponential { decay } => decay.powi(age_days as i32),
        }
    }
}

/// Configuration of the production manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductionConfig {
    /// Histogram range in minutes (240 in production).
    pub range_minutes: usize,
    /// Days of daily histograms retained (14 in production).
    pub retention_days: u64,
    /// Daily-histogram weighting for aggregation.
    pub weighting: RecencyWeighting,
    /// Head cutoff percentile (as in the hybrid policy).
    pub head_percentile: f64,
    /// Tail cutoff percentile.
    pub tail_percentile: f64,
    /// Margin subtracted from the head / added to the tail.
    pub margin: f64,
    /// Pre-warm events fire this much *earlier* than the computed window
    /// (90 s in production).
    pub prewarm_slack_ms: DurationMs,
    /// Backups are taken at this interval (hourly in production).
    pub backup_interval_ms: DurationMs,
}

impl Default for ProductionConfig {
    fn default() -> Self {
        Self {
            range_minutes: 240,
            retention_days: 14,
            weighting: RecencyWeighting::Exponential { decay: 0.85 },
            head_percentile: 5.0,
            tail_percentile: 99.0,
            margin: 0.10,
            prewarm_slack_ms: 90_000,
            backup_interval_ms: 3_600_000,
        }
    }
}

/// Identifier type for applications managed by [`ProductionManager`]
/// (opaque to this module).
pub type AppKey = u64;

/// Per-application daily histogram set.
#[derive(Debug, Clone)]
struct AppHistograms {
    /// `(day_index, histogram)`, oldest first.
    days: Vec<(u64, RangeHistogram)>,
}

/// A scheduled pre-warm event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmEvent {
    /// Application to load.
    pub app: AppKey,
    /// Absolute time at which to load the image.
    pub at_ms: DurationMs,
}

/// Fleet-wide production histogram manager.
#[derive(Debug)]
pub struct ProductionManager {
    config: ProductionConfig,
    apps: HashMap<AppKey, AppHistograms>,
    backups_taken: u64,
    last_backup_ms: DurationMs,
}

impl ProductionManager {
    /// Creates an empty manager.
    pub fn new(config: ProductionConfig) -> Self {
        Self {
            config,
            apps: HashMap::new(),
            backups_taken: 0,
            last_backup_ms: 0,
        }
    }

    /// Number of applications currently tracked.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Records an idle time observed at absolute time `now_ms` for `app`,
    /// updating the current day's histogram and expiring old days.
    pub fn record_idle_time(&mut self, app: AppKey, now_ms: DurationMs, idle_ms: DurationMs) {
        let day = now_ms / (24 * 60 * MINUTE_MS);
        let range = self.config.range_minutes;
        let entry = self
            .apps
            .entry(app)
            .or_insert_with(|| AppHistograms { days: Vec::new() });
        match entry.days.last_mut() {
            Some((d, hist)) if *d == day => {
                hist.record(idle_ms / MINUTE_MS);
            }
            _ => {
                let mut hist = RangeHistogram::new(range, 1);
                hist.record(idle_ms / MINUTE_MS);
                entry.days.push((day, hist));
            }
        }
        // Expire days older than the retention window.
        let cutoff = day.saturating_sub(self.config.retention_days.saturating_sub(1));
        entry.days.retain(|(d, _)| *d >= cutoff);
    }

    /// The weighted aggregate histogram for an app as of day
    /// `today` (derived from `now_ms`).
    pub fn aggregate(&self, app: AppKey, now_ms: DurationMs) -> Option<WeightedBins> {
        let today = now_ms / (24 * 60 * MINUTE_MS);
        let entry = self.apps.get(&app)?;
        let mut agg = WeightedBins::new(self.config.range_minutes, 1);
        for (day, hist) in &entry.days {
            let age = today.saturating_sub(*day);
            agg.add_scaled(hist, self.config.weighting.weight(age));
        }
        (!agg.is_empty()).then_some(agg)
    }

    /// Computes the `(pre-warm, keep-alive)` windows for an app from the
    /// weighted aggregate; `None` when no data exists yet (callers then
    /// use their conservative default).
    pub fn windows(&self, app: AppKey, now_ms: DurationMs) -> Option<Windows> {
        let agg = self.aggregate(app, now_ms)?;
        let head = agg.head_value(self.config.head_percentile)?;
        let tail = agg.tail_value(self.config.tail_percentile)?;
        let head_ms = (head as f64 * (1.0 - self.config.margin) * MINUTE_MS as f64) as DurationMs;
        let tail_ms = (tail as f64 * (1.0 + self.config.margin) * MINUTE_MS as f64) as DurationMs;
        Some(if head == 0 {
            Windows::keep_loaded(tail_ms)
        } else {
            Windows::pre_warmed(head_ms, tail_ms.saturating_sub(head_ms).max(MINUTE_MS))
        })
    }

    /// Schedules the pre-warm event for an app that became idle at
    /// `idle_from_ms`: the computed pre-warm interval minus the
    /// production slack (90 s), clamped to not precede idleness.
    pub fn schedule_prewarm(&self, app: AppKey, idle_from_ms: DurationMs) -> Option<PrewarmEvent> {
        let w = self.windows(app, idle_from_ms)?;
        if w.pre_warm_ms == 0 {
            return None; // The app is not unloaded at all.
        }
        let at = idle_from_ms
            .saturating_add(w.pre_warm_ms)
            .saturating_sub(self.config.prewarm_slack_ms)
            .max(idle_from_ms);
        Some(PrewarmEvent { app, at_ms: at })
    }

    /// Advances the backup clock; returns how many (hourly) backups were
    /// taken. Each backup serializes every app's current day histogram.
    pub fn tick_backup(&mut self, now_ms: DurationMs) -> u64 {
        let mut taken = 0;
        while now_ms.saturating_sub(self.last_backup_ms) >= self.config.backup_interval_ms {
            self.last_backup_ms += self.config.backup_interval_ms;
            self.backups_taken += 1;
            taken += 1;
        }
        taken
    }

    /// Total backups taken so far.
    pub fn backups_taken(&self) -> u64 {
        self.backups_taken
    }

    /// Bytes needed to persist one app's retained histograms (the §6
    /// figure: 960 bytes per histogram).
    pub fn persisted_bytes(&self, app: AppKey) -> usize {
        self.apps
            .get(&app)
            .map(|e| e.days.iter().map(|(_, h)| h.memory_footprint_bytes()).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: DurationMs = 24 * 60 * MINUTE_MS;

    #[test]
    fn records_rotate_daily_and_expire() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        for day in 0..20u64 {
            m.record_idle_time(1, day * DAY, 10 * MINUTE_MS);
        }
        // Only the last 14 days are retained.
        let e = &m.apps[&1];
        assert_eq!(e.days.len(), 14);
        assert_eq!(e.days.first().unwrap().0, 6);
        assert_eq!(e.days.last().unwrap().0, 19);
    }

    #[test]
    fn aggregate_weights_recent_days_higher() {
        let cfg = ProductionConfig {
            weighting: RecencyWeighting::Exponential { decay: 0.5 },
            ..ProductionConfig::default()
        };
        let mut m = ProductionManager::new(cfg);
        // Day 0: idle times of 100 minutes. Day 1: 20 minutes.
        for _ in 0..10 {
            m.record_idle_time(7, 0, 100 * MINUTE_MS);
            m.record_idle_time(7, DAY, 20 * MINUTE_MS);
        }
        let agg = m.aggregate(7, DAY).unwrap();
        // As of day 1, day-1 weighs 1.0 and day-0 weighs 0.5: the median
        // sits in the recent mode.
        assert_eq!(agg.head_value(50.0), Some(20));
    }

    #[test]
    fn windows_match_hybrid_semantics() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        for _ in 0..50 {
            m.record_idle_time(3, 0, 10 * MINUTE_MS);
        }
        let w = m.windows(3, 0).unwrap();
        assert_eq!(w.pre_warm_ms, 9 * MINUTE_MS);
        assert!(w.is_warm_at(10 * MINUTE_MS));
    }

    #[test]
    fn windows_none_without_data() {
        let m = ProductionManager::new(ProductionConfig::default());
        assert!(m.windows(99, 0).is_none());
        assert!(m.schedule_prewarm(99, 0).is_none());
    }

    #[test]
    fn prewarm_fires_90_seconds_early() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        for _ in 0..50 {
            m.record_idle_time(5, 0, 60 * MINUTE_MS);
        }
        let idle_from = 1_000_000;
        let ev = m.schedule_prewarm(5, idle_from).unwrap();
        let w = m.windows(5, idle_from).unwrap();
        assert_eq!(
            ev.at_ms,
            idle_from + w.pre_warm_ms - 90_000,
            "slack must be 90 s"
        );
    }

    #[test]
    fn prewarm_not_scheduled_when_kept_loaded() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        // Sub-minute idle times → head bin 0 → never unloaded.
        for _ in 0..50 {
            m.record_idle_time(6, 0, 30_000);
        }
        assert!(m.schedule_prewarm(6, 0).is_none());
    }

    #[test]
    fn hourly_backups_accumulate() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        assert_eq!(m.tick_backup(3_599_999), 0);
        assert_eq!(m.tick_backup(3_600_000), 1);
        assert_eq!(m.tick_backup(4 * 3_600_000), 3);
        assert_eq!(m.backups_taken(), 4);
    }

    #[test]
    fn persisted_size_is_960_bytes_per_day() {
        let mut m = ProductionManager::new(ProductionConfig::default());
        m.record_idle_time(2, 0, MINUTE_MS);
        m.record_idle_time(2, DAY, MINUTE_MS);
        assert_eq!(m.persisted_bytes(2), 2 * 960);
        assert_eq!(m.persisted_bytes(42), 0);
    }

    #[test]
    fn uniform_weighting_counts_all_days_equally() {
        let cfg = ProductionConfig {
            weighting: RecencyWeighting::Uniform,
            ..ProductionConfig::default()
        };
        let mut m = ProductionManager::new(cfg);
        for _ in 0..10 {
            m.record_idle_time(1, 0, 100 * MINUTE_MS);
        }
        for _ in 0..11 {
            m.record_idle_time(1, DAY, 20 * MINUTE_MS);
        }
        let agg = m.aggregate(1, DAY).unwrap();
        // 11 vs 10 observations: the 20-minute mode wins the median by
        // count, not by recency weighting.
        assert_eq!(agg.head_value(50.0), Some(20));
        assert!((agg.in_bounds_weight() - 21.0).abs() < 1e-9);
    }
}
