//! Router metrics: counters for the routing hot path, gauges for ring
//! state, the cluster-wide per-tenant usage from the last
//! reconciliation, and the federated fleet histograms, rendered in
//! Prometheus text format at `/metrics` and `/metrics/fleet`.
//!
//! All names are `sitw_router_*` — disjoint from the nodes'
//! `sitw_serve_*` namespace, so one scrape config can collect both
//! without relabeling. Every family is declared once in [`REGISTRY`];
//! `render()`/`render_fleet()` source their `# HELP`/`# TYPE` lines
//! from it, the lockstep unit test asserts the exposition and the
//! table never drift, and `sitw-lint`'s `metrics-registry` rule checks
//! naming and typing workspace-wide.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sitw_serve::metrics::{write_hist_series, SeriesDecl};
use sitw_serve::wire::TenantUsage;

use crate::federate::FleetHists;

/// Every series family the router exports, declared once.
// sitw-lint: metrics-registry
pub const REGISTRY: &[SeriesDecl] = &[
    SeriesDecl {
        name: "sitw_router_requests_total",
        kind: "counter",
        help: "Requests accepted by protocol.",
    },
    SeriesDecl {
        name: "sitw_router_records_total",
        kind: "counter",
        help: "SITW-BIN request records accepted.",
    },
    SeriesDecl {
        name: "sitw_router_forwarded_subframes_total",
        kind: "counter",
        help: "Per-node subframes forwarded upstream.",
    },
    SeriesDecl {
        name: "sitw_router_throttled_total",
        kind: "counter",
        help: "Invocations rejected by QoS admission.",
    },
    SeriesDecl {
        name: "sitw_router_traced_requests_total",
        kind: "counter",
        help: "Requests carrying a trace id (propagated or self-sampled).",
    },
    SeriesDecl {
        name: "sitw_router_node_errors_total",
        kind: "counter",
        help: "Upstream failures per node.",
    },
    SeriesDecl {
        name: "sitw_router_ring_epoch",
        kind: "gauge",
        help: "Ring epoch (bumps on membership or placement change).",
    },
    SeriesDecl {
        name: "sitw_router_nodes_live",
        kind: "gauge",
        help: "Live node count.",
    },
    SeriesDecl {
        name: "sitw_router_reconcile_runs_total",
        kind: "counter",
        help: "Budget reconciliations completed.",
    },
    SeriesDecl {
        name: "sitw_router_budget_pushes_total",
        kind: "counter",
        help: "Budget shares acknowledged by nodes.",
    },
    SeriesDecl {
        name: "sitw_router_migrations_total",
        kind: "counter",
        help: "Tenant migrations completed.",
    },
    SeriesDecl {
        name: "sitw_router_tenant_budget_mb",
        kind: "gauge",
        help: "Cluster budget per tenant, MB (last reconcile).",
    },
    SeriesDecl {
        name: "sitw_router_tenant_warm_mb",
        kind: "gauge",
        help: "Warm memory per tenant, MB (last reconcile).",
    },
    SeriesDecl {
        name: "sitw_router_tenant_evictions_total",
        kind: "counter",
        help: "Budget evictions per tenant (cumulative, sampled at the last reconcile).",
    },
    SeriesDecl {
        name: "sitw_router_tenant_invocations_total",
        kind: "counter",
        help: "Invocations served per tenant (cumulative, sampled at the last reconcile).",
    },
    SeriesDecl {
        name: "sitw_router_failover_mode",
        kind: "gauge",
        help: "Failover mode (0 = off, 1 = supervised, 2 = auto).",
    },
    SeriesDecl {
        name: "sitw_router_failover_probe_failures_total",
        kind: "counter",
        help: "Health probes that failed (connect, HTTP error, or timeout).",
    },
    SeriesDecl {
        name: "sitw_router_failover_proposals_total",
        kind: "counter",
        help: "Drop/promote proposals raised by the prober.",
    },
    SeriesDecl {
        name: "sitw_router_failover_promotions_total",
        kind: "counter",
        help: "Standby promotions completed (confirmed proposals with a standby).",
    },
    SeriesDecl {
        name: "sitw_router_failover_retries_total",
        kind: "counter",
        help: "Failover control-plane retries (promote or provision re-attempts).",
    },
    SeriesDecl {
        name: "sitw_router_fleet_nodes",
        kind: "gauge",
        help: "Live nodes merged into the federated histograms.",
    },
    SeriesDecl {
        name: "sitw_router_fleet_decision_latency",
        kind: "histogram",
        help: "Fleet-wide request latency by node pipeline stage in seconds \
               (exact merge of the nodes' log2 buckets).",
    },
];

/// Writes the `# HELP`/`# TYPE` preamble for `name` from [`REGISTRY`].
/// Lookups are total by construction: the lockstep unit test fails on
/// a rendered family missing from the table.
fn family(out: &mut String, name: &str) {
    use std::fmt::Write as _;
    let decl = REGISTRY.iter().find(|d| d.name == name);
    debug_assert!(decl.is_some(), "family {name} missing from REGISTRY");
    if let Some(d) = decl {
        let _ = writeln!(out, "# HELP {} {}", d.name, d.help);
        let _ = writeln!(out, "# TYPE {} {}", d.name, d.kind);
    }
}

/// Counters and gauges of one router process. All atomics are updated
/// with relaxed ordering: each metric is an independent statistic, not a
/// synchronization edge.
#[derive(Debug)]
pub struct RouterMetrics {
    /// JSON `/invoke` requests accepted (forwarded or throttled).
    pub json_requests: AtomicU64,
    /// SITW-BIN request frames accepted.
    pub bin_frames: AtomicU64,
    /// SITW-BIN request records accepted (frames are batches).
    pub bin_records: AtomicU64,
    /// Per-node subframes forwarded upstream.
    pub forwarded_subframes: AtomicU64,
    /// Invocations rejected by QoS admission (both protocols).
    pub throttled: AtomicU64,
    /// Requests carrying a trace id (propagated or self-sampled).
    pub traced_requests: AtomicU64,
    /// Upstream failures per node slot (connect, write, or read).
    pub node_errors: Vec<AtomicU64>,
    /// The ring epoch as of the last change.
    pub ring_epoch: AtomicU64,
    /// Live node count.
    pub nodes_live: AtomicU64,
    /// Budget reconciliations completed.
    pub reconcile_runs: AtomicU64,
    /// Budget shares acknowledged by nodes, summed over reconciliations.
    pub budget_pushes: AtomicU64,
    /// Tenant migrations completed.
    pub migrations: AtomicU64,
    /// Failover mode gauge (0 = off, 1 = supervised, 2 = auto).
    pub failover_mode: AtomicU64,
    /// Health probes that failed.
    pub probe_failures: AtomicU64,
    /// Drop/promote proposals raised by the prober.
    pub failover_proposals: AtomicU64,
    /// Standby promotions completed.
    pub failover_promotions: AtomicU64,
    /// Failover control-plane retries (promote/provision re-attempts).
    pub failover_retries: AtomicU64,
    /// Cluster-aggregated per-tenant usage from the last reconciliation.
    pub usage: Mutex<Vec<TenantUsage>>,
}

impl RouterMetrics {
    /// Zeroed metrics for a cluster of `nodes` node slots.
    pub fn new(nodes: usize) -> Self {
        Self {
            json_requests: AtomicU64::new(0),
            bin_frames: AtomicU64::new(0),
            bin_records: AtomicU64::new(0),
            forwarded_subframes: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            traced_requests: AtomicU64::new(0),
            node_errors: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            ring_epoch: AtomicU64::new(0),
            nodes_live: AtomicU64::new(nodes as u64),
            reconcile_runs: AtomicU64::new(0),
            budget_pushes: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            failover_mode: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            failover_proposals: AtomicU64::new(0),
            failover_promotions: AtomicU64::new(0),
            failover_retries: AtomicU64::new(0),
            usage: Mutex::new(Vec::new()),
        }
    }

    /// Bumps one per-node error counter (out-of-range slots are ignored).
    pub fn node_error(&self, node: usize) {
        if let Some(c) = self.node_errors.get(node) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Renders the Prometheus exposition text. `node_addrs` label the
    /// per-node series (index order matches the ring's node slots).
    pub fn render(&self, node_addrs: &[String]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let scalar = |out: &mut String, name: &str, v: u64| {
            family(out, name);
            let _ = writeln!(out, "{name} {v}");
        };

        family(&mut out, "sitw_router_requests_total");
        let _ = writeln!(
            out,
            "sitw_router_requests_total{{proto=\"json\"}} {}",
            self.json_requests.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "sitw_router_requests_total{{proto=\"bin\"}} {}",
            self.bin_frames.load(Ordering::Relaxed)
        );
        scalar(
            &mut out,
            "sitw_router_records_total",
            self.bin_records.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_forwarded_subframes_total",
            self.forwarded_subframes.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_throttled_total",
            self.throttled.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_traced_requests_total",
            self.traced_requests.load(Ordering::Relaxed),
        );
        family(&mut out, "sitw_router_node_errors_total");
        for (i, c) in self.node_errors.iter().enumerate() {
            let addr = node_addrs.get(i).map(String::as_str).unwrap_or("?");
            let _ = writeln!(
                out,
                "sitw_router_node_errors_total{{node=\"{addr}\"}} {}",
                c.load(Ordering::Relaxed)
            );
        }
        scalar(
            &mut out,
            "sitw_router_ring_epoch",
            self.ring_epoch.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_nodes_live",
            self.nodes_live.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_reconcile_runs_total",
            self.reconcile_runs.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_budget_pushes_total",
            self.budget_pushes.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_migrations_total",
            self.migrations.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_failover_mode",
            self.failover_mode.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_failover_probe_failures_total",
            self.probe_failures.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_failover_proposals_total",
            self.failover_proposals.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_failover_promotions_total",
            self.failover_promotions.load(Ordering::Relaxed),
        );
        scalar(
            &mut out,
            "sitw_router_failover_retries_total",
            self.failover_retries.load(Ordering::Relaxed),
        );

        let usage = self.usage.lock().expect("usage poisoned");
        for (name, get) in [
            (
                "sitw_router_tenant_budget_mb",
                (|t| t.budget_mb) as fn(&TenantUsage) -> u64,
            ),
            ("sitw_router_tenant_warm_mb", |t| t.warm_mb),
            ("sitw_router_tenant_evictions_total", |t| t.evictions),
            ("sitw_router_tenant_invocations_total", |t| t.invocations),
        ] {
            family(&mut out, name);
            for t in usage.iter() {
                let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.name, get(t));
            }
        }
        out
    }
}

/// Renders the `/metrics/fleet` exposition from one federation pass:
/// the merged per-stage/per-proto and per-tenant histograms, laid out
/// byte-identically to a node's `sitw_serve_decision_latency` (same
/// bucket bounds, same label shape), plus the node count that merge
/// covered. Exactness invariant: every `_count`/`_bucket` value equals
/// the sum of the corresponding node values.
pub fn render_fleet(fleet: &FleetHists) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    family(&mut out, "sitw_router_fleet_nodes");
    let _ = writeln!(out, "sitw_router_fleet_nodes {}", fleet.nodes);
    family(&mut out, "sitw_router_fleet_decision_latency");
    for ((stage, proto), h) in &fleet.stages {
        write_hist_series(
            &mut out,
            "sitw_router_fleet_decision_latency",
            &format!("stage=\"{stage}\",proto=\"{proto}\""),
            h,
        );
    }
    for (tenant, h) in &fleet.tenants {
        write_hist_series(
            &mut out,
            "sitw_router_fleet_decision_latency",
            &format!("stage=\"decide\",tenant=\"{tenant}\""),
            h,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federate::parse_hist_body;
    use sitw_telemetry::BUCKETS;
    use std::collections::BTreeSet;

    #[test]
    fn render_includes_all_families_and_labels() {
        let m = RouterMetrics::new(2);
        m.json_requests.fetch_add(3, Ordering::Relaxed);
        m.node_error(1);
        m.node_error(7); // Out of range: ignored, not a panic.
        m.usage.lock().unwrap().push(TenantUsage {
            name: "t0".into(),
            budget_mb: 64,
            warm_mb: 10,
            evictions: 2,
            idle_mb_ms: 5,
            invocations: 9,
        });
        let text = m.render(&["127.0.0.1:7101".into(), "127.0.0.1:7102".into()]);
        assert!(text.contains("sitw_router_requests_total{proto=\"json\"} 3"));
        assert!(text.contains("sitw_router_node_errors_total{node=\"127.0.0.1:7102\"} 1"));
        assert!(text.contains("sitw_router_nodes_live 2"));
        assert!(text.contains("sitw_router_tenant_budget_mb{tenant=\"t0\"} 64"));
        assert!(text.contains("sitw_router_tenant_invocations_total{tenant=\"t0\"} 9"));
        // Cumulative tallies are typed counter, snapshots gauge.
        assert!(text.contains("# TYPE sitw_router_tenant_invocations_total counter"));
        assert!(text.contains("# TYPE sitw_router_tenant_warm_mb gauge"));
        // The failover families render even with failover off, so
        // dashboards can alert on their absence, not just their value.
        m.failover_mode.store(1, Ordering::Relaxed);
        m.failover_promotions.fetch_add(1, Ordering::Relaxed);
        let text = m.render(&["127.0.0.1:7101".into(), "127.0.0.1:7102".into()]);
        assert!(text.contains("sitw_router_failover_mode 1"));
        assert!(text.contains("sitw_router_failover_promotions_total 1"));
        assert!(text.contains("# TYPE sitw_router_failover_mode gauge"));
        assert!(text.contains("# TYPE sitw_router_failover_probe_failures_total counter"));
    }

    #[test]
    fn registry_matches_rendered_families() {
        // Render both expositions with every label-bearing family
        // populated, then assert the `# TYPE`d families are exactly the
        // REGISTRY — no undeclared renders, no dead declarations.
        let m = RouterMetrics::new(1);
        m.usage.lock().unwrap().push(TenantUsage {
            name: "t0".into(),
            budget_mb: 1,
            warm_mb: 1,
            evictions: 1,
            idle_mb_ms: 1,
            invocations: 1,
        });
        let mut fleet = FleetHists::default();
        let mut line = String::from("stage decide json 100");
        line.push_str(&" 1".repeat(BUCKETS));
        line.push_str("\ntenant t0 100");
        line.push_str(&" 1".repeat(BUCKETS));
        line.push('\n');
        fleet.absorb(parse_hist_body(&line).unwrap());
        let text = m.render(&["n0".into()]) + &render_fleet(&fleet);
        let rendered: BTreeSet<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let declared: BTreeSet<&str> = REGISTRY.iter().map(|d| d.name).collect();
        assert_eq!(rendered, declared);
    }

    #[test]
    fn fleet_render_is_bucket_exact_over_nodes() {
        let mut line = String::from("stage decide bin 300");
        let mut buckets = vec![0u64; BUCKETS];
        buckets[11] = 7;
        for b in &buckets {
            line.push_str(&format!(" {b}"));
        }
        line.push('\n');
        let mut fleet = FleetHists::default();
        fleet.absorb(parse_hist_body(&line).unwrap());
        fleet.absorb(parse_hist_body(&line).unwrap());
        fleet.absorb(parse_hist_body(&line).unwrap());
        let text = render_fleet(&fleet);
        assert!(text.contains("sitw_router_fleet_nodes 3"));
        // 3 nodes x 7 samples, exactly.
        assert!(text.contains(
            "sitw_router_fleet_decision_latency_count{stage=\"decide\",proto=\"bin\"} 21"
        ));
    }
}
