//! ARIMA(p, d, q) estimation and forecasting.
//!
//! The hybrid policy uses ARIMA to predict the next idle time of
//! applications whose idle times exceed the histogram range (§4.2). The
//! paper used pmdarima's `auto_arima`; this module provides the same
//! functionality from scratch:
//!
//! * estimation by the Hannan–Rissanen two-stage regression (long-AR
//!   residuals, then OLS on lagged values and lagged residuals),
//! * conditional-sum-of-squares residual variance and AIC,
//! * iterative multi-step forecasting with ψ-weight standard errors,
//! * differencing/integration handled transparently.

use crate::diff::{difference, integrate, integration_tails};
use crate::matrix::{least_squares, Matrix};

/// Model order: the (p, d, q) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArimaSpec {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaSpec {
    /// Creates a spec.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        Self { p, d, q }
    }

    /// Number of estimated coefficients (φ's, θ's and the intercept).
    pub fn num_params(&self) -> usize {
        self.p + self.q + 1
    }
}

impl std::fmt::Display for ArimaSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ARIMA({},{},{})", self.p, self.d, self.q)
    }
}

/// Errors from ARIMA estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArimaError {
    /// The series has too few observations for the requested order.
    TooShort {
        /// Observations required.
        needed: usize,
        /// Observations provided.
        got: usize,
    },
    /// The regression design was singular beyond repair.
    Singular,
    /// The series contains non-finite values.
    NonFinite,
}

impl std::fmt::Display for ArimaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArimaError::TooShort { needed, got } => {
                write!(f, "series too short: need {needed}, got {got}")
            }
            ArimaError::Singular => write!(f, "singular regression design"),
            ArimaError::NonFinite => write!(f, "series contains non-finite values"),
        }
    }
}

impl std::error::Error for ArimaError {}

/// A fitted ARIMA model, retaining what is needed to forecast from the end
/// of the training series.
#[derive(Debug, Clone)]
pub struct ArimaFit {
    spec: ArimaSpec,
    phi: Vec<f64>,
    theta: Vec<f64>,
    intercept: f64,
    sigma2: f64,
    aic: f64,
    /// Trailing values of the differenced series (most recent last).
    w_tail: Vec<f64>,
    /// Trailing residuals (most recent last).
    e_tail: Vec<f64>,
    /// Tails for integrating forecasts back to the original scale.
    int_tails: Vec<f64>,
    n_obs: usize,
}

impl ArimaFit {
    /// The fitted order.
    pub fn spec(&self) -> ArimaSpec {
        self.spec
    }

    /// Autoregressive coefficients (φ₁ … φ_p).
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Moving-average coefficients (θ₁ … θ_q).
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Intercept of the differenced-scale regression.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Residual variance on the differenced scale.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Akaike information criterion (lower is better).
    pub fn aic(&self) -> f64 {
        self.aic
    }

    /// Number of original observations used for fitting.
    pub fn n_obs(&self) -> usize {
        self.n_obs
    }

    /// Point forecasts for the next `horizon` steps on the original scale.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        self.forecast_with_se(horizon)
            .into_iter()
            .map(|(m, _)| m)
            .collect()
    }

    /// Forecasts with standard errors: `(mean, se)` per step.
    ///
    /// Standard errors follow from the ψ-weight expansion of the ARMA part
    /// and are widened through the integration levels, the textbook ARIMA
    /// prediction-variance recursion.
    pub fn forecast_with_se(&self, horizon: usize) -> Vec<(f64, f64)> {
        if horizon == 0 {
            return Vec::new();
        }
        let p = self.spec.p;
        let q = self.spec.q;

        // Iterative mean forecast on the differenced scale.
        let mut w_hist: Vec<f64> = self.w_tail.clone();
        let mut e_hist: Vec<f64> = self.e_tail.clone();
        let mut diffed_forecast = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut v = self.intercept;
            for (i, &ph) in self.phi.iter().enumerate() {
                let idx = w_hist.len() as isize - 1 - i as isize;
                if idx >= 0 {
                    v += ph * w_hist[idx as usize];
                }
            }
            for (j, &th) in self.theta.iter().enumerate() {
                let idx = e_hist.len() as isize - 1 - j as isize;
                if idx >= 0 {
                    v += th * e_hist[idx as usize];
                }
            }
            if !v.is_finite() {
                v = self.intercept;
            }
            diffed_forecast.push(v);
            w_hist.push(v);
            e_hist.push(0.0); // Future shocks have zero expectation.
            if w_hist.len() > p + horizon + 1 {
                // Bound history growth; only the last p entries matter.
                let excess = w_hist.len() - (p + horizon + 1);
                w_hist.drain(..excess);
            }
        }

        // ψ weights of the ARMA part: ψ₀ = 1,
        // ψ_k = θ_k + Σ_{i=1..min(k,p)} φ_i ψ_{k−i}.
        let mut psi = vec![0.0; horizon];
        psi[0] = 1.0;
        for k in 1..horizon {
            let mut v = if k <= q { self.theta[k - 1] } else { 0.0 };
            for i in 1..=p.min(k) {
                v += self.phi[i - 1] * psi[k - i];
            }
            psi[k] = v;
        }
        // Integration turns ψ into its cumulative sums, once per level.
        for _ in 0..self.spec.d {
            for k in 1..horizon {
                psi[k] += psi[k - 1];
            }
        }

        let means = integrate(&diffed_forecast, &self.int_tails);
        let mut cum = 0.0;
        means
            .into_iter()
            .zip(psi)
            .map(|(m, ps)| {
                cum += ps * ps;
                (m, (self.sigma2 * cum).sqrt())
            })
            .collect()
    }

    /// One-step-ahead forecast on the original scale (the policy's "next
    /// idle time" prediction).
    pub fn forecast_one(&self) -> f64 {
        self.forecast(1)[0]
    }
}

/// Fits an ARIMA model of the given order to `series`.
///
/// Estimation is Hannan–Rissanen: when `q > 0`, a long AR regression first
/// produces residual estimates which then join the lagged values in an OLS
/// regression. When `q = 0` this reduces to plain AR-with-intercept OLS;
/// when `p = q = 0`, to the sample mean.
pub fn fit(series: &[f64], spec: ArimaSpec) -> Result<ArimaFit, ArimaError> {
    if series.iter().any(|v| !v.is_finite()) {
        return Err(ArimaError::NonFinite);
    }
    let min_len = spec.d + spec.p + spec.q + 3;
    if series.len() < min_len {
        return Err(ArimaError::TooShort {
            needed: min_len,
            got: series.len(),
        });
    }

    let w = difference(series, spec.d);
    let n = w.len();
    let (p, q) = (spec.p, spec.q);

    // Stage 1 (only for q > 0): long AR to estimate innovations.
    let prelim_resid: Vec<f64> = if q > 0 {
        let m = long_ar_order(n, p, q);
        ar_residuals(&w, m)
    } else {
        vec![0.0; n]
    };

    // Stage 2: OLS of w_t on [1, w_{t-1..t-p}, e_{t-1..t-q}].
    let start = p.max(q).max(if q > 0 { long_ar_order(n, p, q) } else { 0 });
    let rows = n - start;
    if rows < spec.num_params() + 1 {
        return Err(ArimaError::TooShort {
            needed: start + spec.num_params() + 1 + spec.d,
            got: series.len(),
        });
    }

    let ncols = 1 + p + q;
    let mut x = Matrix::zeros(rows, ncols);
    let mut y = vec![0.0; rows];
    for (r, t) in (start..n).enumerate() {
        x.set(r, 0, 1.0);
        for i in 0..p {
            x.set(r, 1 + i, w[t - 1 - i]);
        }
        for j in 0..q {
            x.set(r, 1 + p + j, prelim_resid[t - 1 - j]);
        }
        y[r] = w[t];
    }
    let beta = least_squares(&x, &y).ok_or(ArimaError::Singular)?;
    let intercept = beta[0];
    let phi = beta[1..1 + p].to_vec();
    let theta = beta[1 + p..].to_vec();

    // Recompute residuals recursively over the full differenced series so
    // the forecast state is consistent with the final coefficients.
    let mut resid = vec![0.0; n];
    for t in 0..n {
        let mut pred = intercept;
        for (i, &ph) in phi.iter().enumerate() {
            if t > i {
                pred += ph * w[t - 1 - i];
            }
        }
        for (j, &th) in theta.iter().enumerate() {
            if t > j {
                pred += th * resid[t - 1 - j];
            }
        }
        resid[t] = w[t] - pred;
    }

    // CSS variance over the stable region.
    let burn = p.max(q);
    let used = &resid[burn..];
    let n_used = used.len().max(1) as f64;
    let sigma2 = (used.iter().map(|e| e * e).sum::<f64>() / n_used).max(1e-12);
    let k = spec.num_params() as f64;
    let aic = n_used * sigma2.ln() + 2.0 * (k + 1.0);

    let w_tail_len = p.max(1).min(w.len());
    let e_tail_len = q.max(1).min(resid.len());
    Ok(ArimaFit {
        spec,
        phi,
        theta,
        intercept,
        sigma2,
        aic,
        w_tail: w[w.len() - w_tail_len..].to_vec(),
        e_tail: resid[resid.len() - e_tail_len..].to_vec(),
        int_tails: integration_tails(series, spec.d),
        n_obs: series.len(),
    })
}

/// Order of the preliminary long AR regression in Hannan–Rissanen.
fn long_ar_order(n: usize, p: usize, q: usize) -> usize {
    let suggested = ((n as f64).ln().ceil() as usize + p + q).max(p + q + 1);
    suggested.min(n / 3).max(1)
}

/// Residuals of an OLS AR(m)-with-intercept fit; the first `m` residuals
/// are zero (no prediction available).
fn ar_residuals(w: &[f64], m: usize) -> Vec<f64> {
    let n = w.len();
    if n <= m + 1 {
        return vec![0.0; n];
    }
    let rows = n - m;
    let mut x = Matrix::zeros(rows, m + 1);
    let mut y = vec![0.0; rows];
    for (r, t) in (m..n).enumerate() {
        x.set(r, 0, 1.0);
        for i in 0..m {
            x.set(r, 1 + i, w[t - 1 - i]);
        }
        y[r] = w[t];
    }
    let Some(beta) = least_squares(&x, &y) else {
        return vec![0.0; n];
    };
    let mut resid = vec![0.0; n];
    for t in m..n {
        let mut pred = beta[0];
        for i in 0..m {
            pred += beta[1 + i] * w[t - 1 - i];
        }
        resid[t] = w[t] - pred;
    }
    resid
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gen_ar1(n: usize, phi: f64, c: f64, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut prev = c / (1.0 - phi);
        for _ in 0..n {
            // Box–Muller standard normal.
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = c + phi * prev + noise * z;
            out.push(v);
            prev = v;
        }
        out
    }

    #[test]
    fn ar1_coefficient_recovery() {
        let series = gen_ar1(2000, 0.7, 1.0, 0.5, 42);
        let fit = fit(&series, ArimaSpec::new(1, 0, 0)).unwrap();
        assert!((fit.phi()[0] - 0.7).abs() < 0.05, "phi = {}", fit.phi()[0]);
        // Intercept c such that mean = c / (1 - phi) ≈ 3.33.
        let implied_mean = fit.intercept() / (1.0 - fit.phi()[0]);
        assert!(
            (implied_mean - 1.0 / 0.3).abs() < 0.3,
            "mean {implied_mean}"
        );
    }

    #[test]
    fn mean_only_model() {
        let series = vec![5.0, 5.5, 4.5, 5.0, 5.2, 4.8, 5.0, 5.1];
        let fit = fit(&series, ArimaSpec::new(0, 0, 0)).unwrap();
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        assert!((fit.intercept() - mean).abs() < 1e-9);
        assert!((fit.forecast_one() - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let series = vec![300.0; 12];
        let fit = fit(&series, ArimaSpec::new(0, 0, 0)).unwrap();
        assert!((fit.forecast_one() - 300.0).abs() < 1e-9);
        assert!(fit.sigma2() <= 1e-9);
    }

    #[test]
    fn linear_trend_with_d1() {
        // y = 10 + 5t: after one difference the series is constant 5, so
        // an ARIMA(0,1,0) forecast must continue the line.
        let series: Vec<f64> = (0..30).map(|t| 10.0 + 5.0 * t as f64).collect();
        let fit = fit(&series, ArimaSpec::new(0, 1, 0)).unwrap();
        let fc = fit.forecast(3);
        let last = series.last().unwrap();
        assert!((fc[0] - (last + 5.0)).abs() < 1e-6, "fc {fc:?}");
        assert!((fc[2] - (last + 15.0)).abs() < 1e-6);
    }

    #[test]
    fn ma1_recovery_rough() {
        // MA(1): y_t = e_t + 0.6 e_{t-1}.
        let mut rng = StdRng::seed_from_u64(7);
        let mut prev_e = 0.0;
        let mut series = Vec::with_capacity(4000);
        for _ in 0..4000 {
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let e = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            series.push(e + 0.6 * prev_e);
            prev_e = e;
        }
        let fit = fit(&series, ArimaSpec::new(0, 0, 1)).unwrap();
        assert!(
            (fit.theta()[0] - 0.6).abs() < 0.1,
            "theta = {}",
            fit.theta()[0]
        );
    }

    #[test]
    fn forecast_se_grows_with_horizon() {
        let series = gen_ar1(500, 0.5, 0.0, 1.0, 3);
        let fit = fit(&series, ArimaSpec::new(1, 0, 0)).unwrap();
        let fc = fit.forecast_with_se(5);
        assert_eq!(fc.len(), 5);
        for w in fc.windows(2) {
            assert!(w[1].1 >= w[0].1, "se must be non-decreasing: {fc:?}");
        }
        assert!(fc[0].1 > 0.0);
    }

    #[test]
    fn too_short_series_rejected() {
        let err = fit(&[1.0, 2.0], ArimaSpec::new(1, 0, 0)).unwrap_err();
        assert!(matches!(err, ArimaError::TooShort { .. }));
    }

    #[test]
    fn non_finite_rejected() {
        let err = fit(
            &[1.0, f64::NAN, 2.0, 3.0, 4.0, 5.0],
            ArimaSpec::new(0, 0, 0),
        )
        .unwrap_err();
        assert_eq!(err, ArimaError::NonFinite);
    }

    #[test]
    fn forecast_zero_horizon_is_empty() {
        let series = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let fit = fit(&series, ArimaSpec::new(0, 0, 0)).unwrap();
        assert!(fit.forecast(0).is_empty());
    }

    #[test]
    fn aic_penalizes_overfitting_on_white_noise() {
        let mut rng = StdRng::seed_from_u64(9);
        let series: Vec<f64> = (0..600).map(|_| rng.random::<f64>()).collect();
        let f0 = fit(&series, ArimaSpec::new(0, 0, 0)).unwrap();
        let f3 = fit(&series, ArimaSpec::new(3, 0, 2)).unwrap();
        // White noise: the bigger model cannot beat the mean model by much;
        // with the parameter penalty its AIC should not be dramatically
        // better. Allow slack since AIC estimates differ in sample size.
        assert!(
            f3.aic() > f0.aic() - 10.0,
            "f0 {} f3 {}",
            f0.aic(),
            f3.aic()
        );
    }

    #[test]
    fn display_spec() {
        assert_eq!(ArimaSpec::new(2, 1, 1).to_string(), "ARIMA(2,1,1)");
    }

    #[test]
    fn periodic_idle_times_predicted() {
        // An app invoked every 300 minutes with small jitter: the policy's
        // use case. ARIMA should predict close to 300.
        let mut rng = StdRng::seed_from_u64(21);
        let series: Vec<f64> = (0..40)
            .map(|_| 300.0 + (rng.random::<f64>() - 0.5) * 10.0)
            .collect();
        let fit = fit(&series, ArimaSpec::new(1, 0, 0)).unwrap();
        let pred = fit.forecast_one();
        assert!((pred - 300.0).abs() < 15.0, "pred {pred}");
    }
}
