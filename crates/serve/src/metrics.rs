//! Server metrics: per-shard counters, per-tenant fleet gauges, and
//! decision-latency percentiles, rendered in the Prometheus text
//! exposition format.

/// One tenant's counters as seen by one shard (the default tenant's
/// numbers are per-shard slices; named tenants live whole on one shard).
/// `/metrics` aggregates these by tenant name — the lock-free per-shard
/// sub-ledgers summed into cluster-level accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Registry id.
    pub id: u16,
    /// Tenant name (metrics label).
    pub name: String,
    /// Configured keep-alive memory budget (0 = unlimited).
    pub budget_mb: u64,
    /// Warm memory currently charged, MB.
    pub warm_mb: u64,
    /// Warm containers currently charged.
    pub warm_apps: u64,
    /// Budget evictions so far.
    pub evictions: u64,
    /// Loaded-memory integral, MB·ms (the §5.3 idle-memory metric).
    pub idle_mb_ms: u64,
    /// Accepted invocations.
    pub invocations: u64,
    /// Cold verdicts (including eviction downgrades).
    pub cold: u64,
}

/// Counters and latency estimates reported by one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Applications with live state.
    pub apps: u64,
    /// Accepted invocations.
    pub invocations: u64,
    /// Cold verdicts.
    pub cold: u64,
    /// Warm verdicts.
    pub warm: u64,
    /// Pre-warm loads inferred during gaps.
    pub prewarm_loads: u64,
    /// Rejected out-of-order invocations.
    pub out_of_order: u64,
    /// Hourly histogram backups taken (production mode only; 0 for
    /// per-app policies).
    pub backups: u64,
    /// Pre-warm events scheduled 90 s early (production mode only).
    pub prewarm_scheduled: u64,
    /// `(quantile, estimate_in_µs)` pairs from the shard's P² estimators
    /// (empty until the shard has observed at least one decision).
    pub latency_us: Vec<(f64, f64)>,
    /// Per-tenant fleet counters on this shard, ordered by tenant id.
    pub tenants: Vec<TenantStats>,
}

/// Server-wide wire-protocol counters (connections are not sharded, so
/// these live next to the per-shard stats, unlabelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtoStats {
    /// Complete SITW-BIN request frames served.
    pub frames: u64,
    /// Decisions delivered through batched binary frames.
    pub batched_decisions: u64,
    /// Typed SITW-BIN protocol errors answered (malformed frames,
    /// oversized batches, bad versions).
    pub proto_errors: u64,
}

/// Connection-level gauges (server-wide; maintained by the acceptor and
/// the reactor pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnStats {
    /// Connections currently open (reactor slab entries plus any still
    /// in flight from the acceptor). Returns to 0 when every client
    /// disconnects — the leak-freedom invariant the churn tests assert.
    pub live: u64,
    /// Connections accepted since start.
    pub accepted: u64,
    /// High-water mark of `live`.
    pub peak: u64,
    /// Reactor threads serving the connections.
    pub reactor_threads: u64,
}

/// A full `/metrics` scrape: one entry per shard, plus uptime.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Per-shard statistics, ordered by shard index.
    pub shards: Vec<ShardStats>,
    /// Server-wide SITW-BIN protocol counters.
    pub proto: ProtoStats,
    /// Server-wide connection gauges.
    pub conns: ConnStats,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

impl MetricsReport {
    /// Total accepted invocations across shards.
    pub fn invocations(&self) -> u64 {
        self.shards.iter().map(|s| s.invocations).sum()
    }

    /// Total cold verdicts across shards.
    pub fn cold(&self) -> u64 {
        self.shards.iter().map(|s| s.cold).sum()
    }

    /// Total apps with live state across shards.
    pub fn apps(&self) -> u64 {
        self.shards.iter().map(|s| s.apps).sum()
    }

    /// Per-tenant counters aggregated across shards, ordered by id:
    /// the cluster memory ledger as `/metrics` exposes it. The default
    /// tenant sums its per-shard sub-ledgers; named tenants are whole.
    pub fn tenants(&self) -> Vec<TenantStats> {
        let mut merged: Vec<TenantStats> = Vec::new();
        for shard in &self.shards {
            for t in &shard.tenants {
                match merged.iter_mut().find(|m| m.id == t.id) {
                    Some(m) => {
                        m.warm_mb += t.warm_mb;
                        m.warm_apps += t.warm_apps;
                        m.evictions += t.evictions;
                        m.idle_mb_ms = m.idle_mb_ms.saturating_add(t.idle_mb_ms);
                        m.invocations += t.invocations;
                        m.cold += t.cold;
                    }
                    None => merged.push(t.clone()),
                }
            }
        }
        merged.sort_by_key(|t| t.id);
        merged
    }

    /// Renders the Prometheus text format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        /// Name, help text, and per-shard value accessor of one metric.
        type MetricRow = (&'static str, &'static str, fn(&ShardStats) -> u64);
        let mut out = String::with_capacity(1024);
        let counters: [MetricRow; 8] = [
            (
                "sitw_serve_apps",
                "Applications with live policy state",
                |s| s.apps,
            ),
            (
                "sitw_serve_invocations_total",
                "Accepted invocations",
                |s| s.invocations,
            ),
            ("sitw_serve_cold_total", "Cold verdicts", |s| s.cold),
            ("sitw_serve_warm_total", "Warm verdicts", |s| s.warm),
            (
                "sitw_serve_prewarm_loads_total",
                "Pre-warm loads inferred during gaps",
                |s| s.prewarm_loads,
            ),
            (
                "sitw_serve_out_of_order_total",
                "Rejected out-of-order invocations",
                |s| s.out_of_order,
            ),
            (
                "sitw_serve_backups_total",
                "Hourly histogram backups taken (production mode)",
                |s| s.backups,
            ),
            (
                "sitw_serve_prewarm_scheduled_total",
                "Pre-warm events scheduled 90s early (production mode)",
                |s| s.prewarm_scheduled,
            ),
        ];
        for (name, help, get) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for s in &self.shards {
                let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, get(s));
            }
        }
        let _ = writeln!(
            out,
            "# HELP sitw_serve_decision_latency_us Decision latency percentiles (P2 estimates)"
        );
        let _ = writeln!(out, "# TYPE sitw_serve_decision_latency_us gauge");
        for s in &self.shards {
            for (q, v) in &s.latency_us {
                let _ = writeln!(
                    out,
                    "sitw_serve_decision_latency_us{{shard=\"{}\",quantile=\"{q}\"}} {v:.3}",
                    s.shard
                );
            }
        }
        // Per-tenant fleet metrics: the cluster memory ledger.
        type TenantRow = (
            &'static str,
            &'static str,
            &'static str,
            fn(&TenantStats) -> u64,
        );
        let tenant_rows: [TenantRow; 7] = [
            (
                "sitw_serve_tenant_budget_mb",
                "Configured keep-alive memory budget (0 = unlimited)",
                "gauge",
                |t| t.budget_mb,
            ),
            (
                "sitw_serve_tenant_warm_mb",
                "Warm memory currently charged to the tenant",
                "gauge",
                |t| t.warm_mb,
            ),
            (
                "sitw_serve_tenant_warm_apps",
                "Warm containers currently charged to the tenant",
                "gauge",
                |t| t.warm_apps,
            ),
            (
                "sitw_serve_tenant_evictions_total",
                "Budget evictions",
                "counter",
                |t| t.evictions,
            ),
            (
                "sitw_serve_tenant_idle_mb_ms_total",
                "Loaded-memory integral in MB*ms (the par.5.3 idle-memory metric)",
                "counter",
                |t| t.idle_mb_ms,
            ),
            (
                "sitw_serve_tenant_invocations_total",
                "Accepted invocations per tenant",
                "counter",
                |t| t.invocations,
            ),
            (
                "sitw_serve_tenant_cold_total",
                "Cold verdicts per tenant (incl. eviction downgrades)",
                "counter",
                |t| t.cold,
            ),
        ];
        let tenants = self.tenants();
        for (name, help, kind, get) in tenant_rows {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for t in &tenants {
                let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.name, get(t));
            }
        }
        let proto: [(&str, &str, u64); 3] = [
            (
                "sitw_serve_frames_total",
                "Complete SITW-BIN request frames served",
                self.proto.frames,
            ),
            (
                "sitw_serve_batched_decisions_total",
                "Decisions delivered through batched binary frames",
                self.proto.batched_decisions,
            ),
            (
                "sitw_serve_proto_errors_total",
                "Typed SITW-BIN protocol errors answered",
                self.proto.proto_errors,
            ),
        ];
        for (name, help, value) in proto {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let conns: [(&str, &str, &str, u64); 4] = [
            (
                "sitw_serve_connections_live",
                "Connections currently open",
                "gauge",
                self.conns.live,
            ),
            (
                "sitw_serve_connections_accepted_total",
                "Connections accepted since start",
                "counter",
                self.conns.accepted,
            ),
            (
                "sitw_serve_connections_peak",
                "High-water mark of live connections",
                "gauge",
                self.conns.peak,
            ),
            (
                "sitw_serve_reactor_threads",
                "Reactor (event-loop) threads serving the connections",
                "gauge",
                self.conns.reactor_threads,
            ),
        ];
        for (name, help, kind, value) in conns {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(out, "# HELP sitw_serve_uptime_ms Time since server start");
        let _ = writeln!(out, "# TYPE sitw_serve_uptime_ms gauge");
        let _ = writeln!(out, "sitw_serve_uptime_ms {}", self.uptime_ms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(shard: usize) -> ShardStats {
        ShardStats {
            shard,
            apps: 3,
            invocations: 100,
            cold: 20,
            warm: 80,
            prewarm_loads: 5,
            out_of_order: 1,
            backups: 7,
            prewarm_scheduled: 11,
            latency_us: vec![(0.5, 1.5), (0.95, 3.0), (0.99, 9.0)],
            tenants: vec![
                TenantStats {
                    id: 0,
                    name: "default".into(),
                    budget_mb: 0,
                    warm_mb: 100,
                    warm_apps: 2,
                    evictions: 0,
                    idle_mb_ms: 1_000,
                    invocations: 90,
                    cold: 15,
                },
                TenantStats {
                    id: 1,
                    name: "acme".into(),
                    budget_mb: 512,
                    warm_mb: 300,
                    warm_apps: 1,
                    evictions: 4,
                    idle_mb_ms: 2_000,
                    invocations: 10,
                    cold: 5,
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_shards() {
        let r = MetricsReport {
            shards: vec![stats(0), stats(1)],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            uptime_ms: 42,
        };
        assert_eq!(r.invocations(), 200);
        assert_eq!(r.cold(), 40);
        assert_eq!(r.apps(), 6);
    }

    #[test]
    fn tenant_aggregation_sums_sub_ledgers() {
        let r = MetricsReport {
            shards: vec![stats(0), stats(1)],
            proto: ProtoStats::default(),
            conns: ConnStats::default(),
            uptime_ms: 42,
        };
        let tenants = r.tenants();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].name, "default");
        assert_eq!(tenants[0].warm_mb, 200, "per-shard sub-ledgers sum");
        assert_eq!(tenants[0].idle_mb_ms, 2_000);
        assert_eq!(tenants[1].evictions, 8);
        assert_eq!(tenants[1].budget_mb, 512, "config gauge, not summed");
    }

    #[test]
    fn renders_prometheus_text() {
        let r = MetricsReport {
            shards: vec![stats(0), stats(1)],
            proto: ProtoStats {
                frames: 13,
                batched_decisions: 1664,
                proto_errors: 2,
            },
            conns: ConnStats {
                live: 3,
                accepted: 1200,
                peak: 257,
                reactor_threads: 2,
            },
            uptime_ms: 42,
        };
        let text = r.render();
        assert!(text.contains("# TYPE sitw_serve_invocations_total counter"));
        assert!(text.contains("sitw_serve_invocations_total{shard=\"1\"} 100"));
        assert!(text.contains("sitw_serve_backups_total{shard=\"0\"} 7"));
        assert!(text.contains("sitw_serve_prewarm_scheduled_total{shard=\"1\"} 11"));
        assert!(text.contains("sitw_serve_decision_latency_us{shard=\"0\",quantile=\"0.99\"}"));
        assert!(text.contains("# TYPE sitw_serve_frames_total counter"));
        assert!(text.contains("sitw_serve_frames_total 13"));
        assert!(text.contains("sitw_serve_batched_decisions_total 1664"));
        assert!(text.contains("sitw_serve_proto_errors_total 2"));
        assert!(text.contains("# TYPE sitw_serve_connections_live gauge"));
        assert!(text.contains("sitw_serve_connections_live 3"));
        assert!(text.contains("# TYPE sitw_serve_connections_accepted_total counter"));
        assert!(text.contains("sitw_serve_connections_accepted_total 1200"));
        assert!(text.contains("sitw_serve_connections_peak 257"));
        assert!(text.contains("sitw_serve_reactor_threads 2"));
        assert!(text.contains("sitw_serve_uptime_ms 42"));
        assert!(text.contains("sitw_serve_tenant_warm_mb{tenant=\"default\"} 200"));
        assert!(text.contains("sitw_serve_tenant_warm_mb{tenant=\"acme\"} 600"));
        assert!(text.contains("sitw_serve_tenant_evictions_total{tenant=\"acme\"} 8"));
        assert!(text.contains("sitw_serve_tenant_budget_mb{tenant=\"acme\"} 512"));
        assert!(text.contains("sitw_serve_tenant_idle_mb_ms_total{tenant=\"default\"} 2000"));
    }
}
