//! The workspace invariant rules `sitw-lint` enforces, over the token
//! stream of [`crate::lexer`].
//!
//! | rule id             | invariant                                                     |
//! |---------------------|---------------------------------------------------------------|
//! | `unsafe-confinement`| `unsafe` only in `crates/reactor`; every other crate root has `#![forbid(unsafe_code)]` |
//! | `hot-path-alloc`    | no `format!`/`.to_string()`/`String::from`/`Vec::new`/`Box::new`/`.clone()` in `// sitw-lint: hot-path` functions |
//! | `panic-freedom`     | no `.unwrap()`/`.expect(`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in hot-path functions |
//! | `clock-discipline`  | `Instant::now`/`SystemTime::now` only in `crates/telemetry`, test code, or allowlisted lines |
//! | `metrics-registry`  | every `sitw_serve_*`/`sitw_router_*` series literal is declared (name/kind/help) in the marked registry; snake_case; `_total` ⇔ counter |
//! | `directive`         | every `// sitw-lint:` comment parses                          |
//!
//! Suppression: `// sitw-lint: allow(rule-a, rule-b)` silences those
//! rules on the line below it (or, as a trailing comment, on its own
//! line). Hot regions are opted
//! in with `// sitw-lint: hot-path` immediately before a `fn`; the
//! region is that function's body, braces matched by the lexer's token
//! stream.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::ops::RangeInclusive;
use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};

/// Every rule id, in report order.
pub const RULES: [&str; 6] = [
    "unsafe-confinement",
    "hot-path-alloc",
    "panic-freedom",
    "clock-discipline",
    "metrics-registry",
    "directive",
];

/// One finding, addressable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A `// sitw-lint:` comment, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    /// `allow(rule, …)`
    Allow(Vec<String>),
    /// `hot-path`
    HotPath,
    /// `metrics-registry`
    MetricsRegistry,
    /// Anything else (reported by the `directive` rule).
    Unknown(String),
}

fn parse_directive(comment: &str) -> Option<Directive> {
    let rest = comment.trim().strip_prefix("sitw-lint:")?.trim();
    if rest == "hot-path" {
        return Some(Directive::HotPath);
    }
    if rest == "metrics-registry" {
        return Some(Directive::MetricsRegistry);
    }
    if let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() && rules.iter().all(|r| RULES.contains(&r.as_str())) {
            return Some(Directive::Allow(rules));
        }
    }
    Some(Directive::Unknown(rest.to_string()))
}

/// One lexed source file with its directive side tables.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens ("code view").
    code: Vec<usize>,
    /// Line → rules allowed on that line and the next.
    allows: HashMap<u32, HashSet<String>>,
    /// Hot-path function bodies, as inclusive code-view ranges.
    hot: Vec<RangeInclusive<usize>>,
    /// `#[cfg(test)] mod` bodies, as inclusive code-view ranges.
    tests: Vec<RangeInclusive<usize>>,
    /// Code-view ranges of `metrics-registry` blocks (their string
    /// literals are declarations, not uses).
    registry_blocks: Vec<RangeInclusive<usize>>,
    /// Malformed `sitw-lint:` directives: `(line, text)`.
    bad_directives: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(rel: String, src: &str) -> SourceFile {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokenKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let mut f = SourceFile {
            rel,
            tokens,
            code,
            allows: HashMap::new(),
            hot: Vec::new(),
            tests: Vec::new(),
            registry_blocks: Vec::new(),
            bad_directives: Vec::new(),
        };
        f.index_directives();
        f.index_test_regions();
        f
    }

    fn tok(&self, p: usize) -> Option<&Token> {
        self.code.get(p).map(|&i| &self.tokens[i])
    }

    fn is_ident(&self, p: usize, s: &str) -> bool {
        self.tok(p).is_some_and(|t| t.is_ident(s))
    }

    fn is_punct(&self, p: usize, c: char) -> bool {
        self.tok(p).is_some_and(|t| t.is_punct(c))
    }

    /// Is `rule` suppressed at `line`? (`index_directives` resolves
    /// each allow comment to the line it covers.)
    fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(rule))
    }

    /// Finds the body (code-view range) of the next `fn` after token
    /// index `after`: the first `{`…matching-`}` following the `fn`
    /// keyword. Rust bodies are brace-balanced in token space, so no
    /// grammar is needed.
    fn fn_body_after(&self, after: usize) -> Option<RangeInclusive<usize>> {
        let start = self.code.partition_point(|&ti| ti <= after);
        let fn_pos = (start..self.code.len()).find(|&p| self.is_ident(p, "fn"))?;
        let open = (fn_pos..self.code.len()).find(|&p| self.is_punct(p, '{'))?;
        let close = self.match_brace(open)?;
        Some(open..=close)
    }

    /// The matching `}` for the `{` at code position `open`.
    fn match_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for p in open..self.code.len() {
            if self.is_punct(p, '{') {
                depth += 1;
            } else if self.is_punct(p, '}') {
                depth -= 1;
                if depth == 0 {
                    return Some(p);
                }
            }
        }
        None
    }

    fn index_directives(&mut self) {
        let comments: Vec<(usize, u32, String)> = self
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokenKind::Comment)
            .map(|(i, t)| (i, t.line, t.text.clone()))
            .collect();
        for (idx, line, text) in comments {
            match parse_directive(&text) {
                None => {}
                Some(Directive::Allow(rules)) => {
                    // A trailing allow covers its own line; a
                    // standalone allow covers the line below it.
                    let trailing = idx > 0 && self.tokens[idx - 1].line == line;
                    let covers = if trailing { line } else { line + 1 };
                    self.allows.entry(covers).or_default().extend(rules);
                }
                Some(Directive::HotPath) => {
                    if let Some(range) = self.fn_body_after(idx) {
                        self.hot.push(range);
                    } else {
                        self.bad_directives
                            .push((line, "hot-path with no following fn body".to_string()));
                    }
                }
                Some(Directive::MetricsRegistry) => {
                    if let Some(range) = self.registry_block_after(idx) {
                        self.registry_blocks.push(range);
                    } else {
                        self.bad_directives.push((
                            line,
                            "metrics-registry with no following `= &[…];` block".to_string(),
                        ));
                    }
                }
                Some(Directive::Unknown(text)) => {
                    self.bad_directives.push((line, text));
                }
            }
        }
    }

    /// The `[…]` initializer after a registry marker: skip to the `=`
    /// (stepping over the const's type, which may itself contain
    /// brackets), then bracket-match the initializer.
    fn registry_block_after(&self, after: usize) -> Option<RangeInclusive<usize>> {
        let start = self.code.partition_point(|&ti| ti <= after);
        let eq = (start..self.code.len()).find(|&p| self.is_punct(p, '='))?;
        let open = (eq..self.code.len()).find(|&p| self.is_punct(p, '['))?;
        let mut depth = 0usize;
        for p in open..self.code.len() {
            if self.is_punct(p, '[') {
                depth += 1;
            } else if self.is_punct(p, ']') {
                depth -= 1;
                if depth == 0 {
                    return Some(open..=p);
                }
            }
        }
        None
    }

    fn index_test_regions(&mut self) {
        let mut p = 0;
        while p + 6 < self.code.len() {
            // #[cfg(test)] — attribute tokens are uniform, match flat.
            if self.is_punct(p, '#')
                && self.is_punct(p + 1, '[')
                && self.is_ident(p + 2, "cfg")
                && self.is_punct(p + 3, '(')
                && self.is_ident(p + 4, "test")
                && self.is_punct(p + 5, ')')
                && self.is_punct(p + 6, ']')
            {
                if let Some(open) = (p + 7..self.code.len()).find(|&q| self.is_punct(q, '{')) {
                    if let Some(close) = self.match_brace(open) {
                        self.tests.push(open..=close);
                        p = open + 1; // nested cfg(test) folds into the outer region
                        continue;
                    }
                }
            }
            p += 1;
        }
    }

    fn in_any(&self, p: usize, regions: &[RangeInclusive<usize>]) -> bool {
        regions.iter().any(|r| r.contains(&p))
    }
}

/// The lint scope of one path (derived from its workspace-relative
/// location).
struct Scope {
    /// Under `crates/reactor/` — the one place `unsafe` may live.
    reactor: bool,
    /// Under `crates/telemetry/` — the one place wall clocks may live.
    telemetry: bool,
    /// A crate root: `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`, or an
    /// `examples/*.rs` target.
    crate_root: bool,
    /// Under a `tests/` or `benches/` directory (integration tests).
    test_code: bool,
}

fn scope_of(rel: &str) -> Scope {
    let parts: Vec<&str> = rel.split('/').collect();
    let reactor = rel.starts_with("crates/reactor/");
    let telemetry = rel.starts_with("crates/telemetry/");
    let crate_root = rel.ends_with("src/lib.rs")
        || rel.ends_with("src/main.rs")
        || parts
            .windows(2)
            .any(|w| w == ["src", "bin"] || w[0] == "examples")
            && rel.ends_with(".rs");
    let test_code = parts.iter().any(|p| *p == "tests" || *p == "benches");
    Scope {
        reactor,
        telemetry,
        crate_root,
        test_code,
    }
}

/// A loaded workspace: every `.rs` file under the root, lexed and
/// indexed (skipping `target/`, `.git/`, and `fixtures/` trees).
pub struct Workspace {
    /// The files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root` and parses every Rust source it finds.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut paths: Vec<std::path::PathBuf> = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if entry.file_type()?.is_dir() {
                    if name == "target" || name == ".git" || name == "fixtures" {
                        continue;
                    }
                    stack.push(path);
                } else if name.ends_with(".rs") {
                    paths.push(path);
                }
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = fs::read_to_string(&path)?;
            files.push(SourceFile::parse(rel, &src));
        }
        Ok(Workspace { files })
    }

    /// A workspace from in-memory sources (fixture self-tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel.to_string(), src))
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace { files }
    }

    /// Runs every rule; diagnostics sorted by `(file, line, rule)`.
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut diags: Vec<Diagnostic> = Vec::new();
        for file in &self.files {
            let scope = scope_of(&file.rel);
            rule_directives(file, &mut diags);
            rule_unsafe_confinement(file, &scope, &mut diags);
            rule_hot_path(file, &mut diags);
            rule_clock_discipline(file, &scope, &mut diags);
        }
        rule_metrics_registry(self, &mut diags);
        diags.sort();
        diags.dedup();
        diags
    }
}

fn emit(
    diags: &mut Vec<Diagnostic>,
    file: &SourceFile,
    line: u32,
    rule: &'static str,
    msg: String,
) {
    if !file.allowed(line, rule) {
        diags.push(Diagnostic {
            file: file.rel.clone(),
            line,
            rule,
            message: msg,
        });
    }
}

fn rule_directives(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for (line, text) in &file.bad_directives {
        emit(
            diags,
            file,
            *line,
            "directive",
            format!("unrecognized or malformed sitw-lint directive: `{text}`"),
        );
    }
}

fn rule_unsafe_confinement(file: &SourceFile, scope: &Scope, diags: &mut Vec<Diagnostic>) {
    if scope.reactor {
        return;
    }
    for p in 0..file.code.len() {
        if file.is_ident(p, "unsafe") {
            let line = file.tok(p).map_or(0, |t| t.line);
            emit(
                diags,
                file,
                line,
                "unsafe-confinement",
                "`unsafe` outside crates/reactor (the workspace's only unsafe crate)".to_string(),
            );
        }
    }
    if scope.crate_root {
        let has_forbid = (0..file.code.len()).any(|p| {
            file.is_punct(p, '#')
                && file.is_punct(p + 1, '!')
                && file.is_punct(p + 2, '[')
                && file.is_ident(p + 3, "forbid")
                && file.is_punct(p + 4, '(')
                && file.is_ident(p + 5, "unsafe_code")
                && file.is_punct(p + 6, ')')
                && file.is_punct(p + 7, ']')
        });
        if !has_forbid {
            emit(
                diags,
                file,
                1,
                "unsafe-confinement",
                "crate root missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }
}

/// Allocation and panic sites inside `// sitw-lint: hot-path` bodies.
fn rule_hot_path(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for range in &file.hot {
        for p in range.clone() {
            let line = file.tok(p).map_or(0, |t| t.line);
            // hot-path-alloc --------------------------------------------------
            let alloc: Option<&str> = if file.is_ident(p, "format") && file.is_punct(p + 1, '!') {
                Some("`format!` allocates a fresh String")
            } else if file.is_punct(p, '.')
                && file.is_ident(p + 1, "to_string")
                && file.is_punct(p + 2, '(')
            {
                Some("`.to_string()` allocates a fresh String")
            } else if file.is_ident(p, "String")
                && file.is_punct(p + 1, ':')
                && file.is_punct(p + 2, ':')
                && file.is_ident(p + 3, "from")
            {
                Some("`String::from` allocates a fresh String")
            } else if file.is_ident(p, "Vec")
                && file.is_punct(p + 1, ':')
                && file.is_punct(p + 2, ':')
                && file.is_ident(p + 3, "new")
            {
                Some("`Vec::new` creates a fresh Vec (reuse a scratch buffer)")
            } else if file.is_ident(p, "Box")
                && file.is_punct(p + 1, ':')
                && file.is_punct(p + 2, ':')
                && file.is_ident(p + 3, "new")
            {
                Some("`Box::new` heap-allocates")
            } else if file.is_punct(p, '.')
                && file.is_ident(p + 1, "clone")
                && file.is_punct(p + 2, '(')
            {
                Some("`.clone()` in the steady state")
            } else {
                None
            };
            if let Some(msg) = alloc {
                emit(
                    diags,
                    file,
                    line,
                    "hot-path-alloc",
                    format!("{msg} inside a hot-path function"),
                );
            }
            // panic-freedom ---------------------------------------------------
            let panic: Option<&str> = if file.is_punct(p, '.')
                && file.is_ident(p + 1, "unwrap")
                && file.is_punct(p + 2, '(')
            {
                Some("`.unwrap()`")
            } else if file.is_punct(p, '.')
                && file.is_ident(p + 1, "expect")
                && file.is_punct(p + 2, '(')
            {
                Some("`.expect(…)`")
            } else if file.is_punct(p + 1, '!')
                && ["panic", "unreachable", "todo", "unimplemented"]
                    .iter()
                    .any(|m| file.is_ident(p, m))
            {
                Some("a panicking macro")
            } else {
                None
            };
            if let Some(what) = panic {
                emit(
                    diags,
                    file,
                    line,
                    "panic-freedom",
                    format!("{what} can panic inside a hot-path function; handle the None/Err arm"),
                );
            }
        }
    }
}

fn rule_clock_discipline(file: &SourceFile, scope: &Scope, diags: &mut Vec<Diagnostic>) {
    if scope.telemetry || scope.test_code {
        return;
    }
    for p in 0..file.code.len() {
        if file.in_any(p, &file.tests) {
            continue;
        }
        for clock in ["Instant", "SystemTime"] {
            if file.is_ident(p, clock)
                && file.is_punct(p + 1, ':')
                && file.is_punct(p + 2, ':')
                && file.is_ident(p + 3, "now")
            {
                let line = file.tok(p).map_or(0, |t| t.line);
                emit(
                    diags,
                    file,
                    line,
                    "clock-discipline",
                    format!(
                        "`{clock}::now` outside crates/telemetry — route time through a \
                         telemetry Clock (or allow this bookkeeping site explicitly)"
                    ),
                );
            }
        }
    }
}

/// One declared metrics series.
#[derive(Debug, Clone)]
struct SeriesDecl {
    name: String,
    file_idx: usize,
    line: u32,
}

fn rule_metrics_registry(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    // 1. Collect declarations from every marked registry block.
    let mut decls: BTreeMap<String, SeriesDecl> = BTreeMap::new();
    let mut any_registry = false;
    for (fi, file) in ws.files.iter().enumerate() {
        for block in &file.registry_blocks {
            any_registry = true;
            let strs: Vec<(String, u32)> = block
                .clone()
                .filter_map(|p| file.tok(p))
                .filter(|t| t.kind == TokenKind::Str)
                .map(|t| (t.text.clone(), t.line))
                .collect();
            if !strs.len().is_multiple_of(3) {
                let line = strs.first().map_or(1, |(_, l)| *l);
                emit(
                    diags,
                    file,
                    line,
                    "metrics-registry",
                    format!(
                        "registry block must hold (name, kind, help) string triples; \
                         found {} strings",
                        strs.len()
                    ),
                );
                continue;
            }
            for triple in strs.chunks(3) {
                let (name, line) = (&triple[0].0, triple[0].1);
                let kind = &triple[1].0;
                check_decl(ws, fi, name, kind, line, diags);
                if let Some(prev) = decls.get(name) {
                    emit(
                        diags,
                        file,
                        line,
                        "metrics-registry",
                        format!(
                            "series `{name}` declared twice (first at {}:{})",
                            ws.files[prev.file_idx].rel, prev.line
                        ),
                    );
                } else {
                    decls.insert(
                        name.clone(),
                        SeriesDecl {
                            name: name.clone(),
                            file_idx: fi,
                            line,
                        },
                    );
                }
            }
        }
    }

    // 2. Scan every string literal outside registry blocks for series
    // uses. In shipped code each must resolve to a declaration; in
    // test code (tests/ dirs, #[cfg(test)] regions) unresolved
    // references are tolerated — they are fixtures and grep fragments
    // — but resolved ones still count as coverage.
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut any_use = false;
    for file in &ws.files {
        let file_is_test = scope_of(&file.rel).test_code;
        for p in 0..file.code.len() {
            let Some(tok) = file.tok(p) else { continue };
            if tok.kind != TokenKind::Str || file.in_any(p, &file.registry_blocks) {
                continue;
            }
            let in_test = file_is_test || file.in_any(p, &file.tests);
            for name in series_names(&tok.text) {
                any_use |= !in_test;
                let resolved = if decls.contains_key(&name) {
                    Some(name.clone())
                } else {
                    ["_bucket", "_sum", "_count"]
                        .iter()
                        .filter_map(|s| name.strip_suffix(s))
                        .find(|base| decls.contains_key(*base))
                        .map(str::to_string)
                };
                match resolved {
                    Some(base) => {
                        used.insert(base);
                    }
                    None if in_test => {}
                    None => emit(
                        diags,
                        file,
                        tok.line,
                        "metrics-registry",
                        format!("series `{name}` is not declared in the metrics registry"),
                    ),
                }
            }
        }
    }
    if any_use && !any_registry {
        diags.push(Diagnostic {
            file: ws.files.first().map_or_else(String::new, |f| f.rel.clone()),
            line: 1,
            rule: "metrics-registry",
            message: "sitw_serve_*/sitw_router_* series are used but no \
                      `// sitw-lint: metrics-registry` block declares them"
                .to_string(),
        });
    }

    // 3. Dead declarations: registered but never rendered or asserted.
    for decl in decls.values() {
        if !used.contains(&decl.name) {
            let file = &ws.files[decl.file_idx];
            emit(
                diags,
                file,
                decl.line,
                "metrics-registry",
                format!(
                    "series `{}` is declared but never used outside the registry",
                    decl.name
                ),
            );
        }
    }
}

fn check_decl(
    ws: &Workspace,
    file_idx: usize,
    name: &str,
    kind: &str,
    line: u32,
    diags: &mut Vec<Diagnostic>,
) {
    let file = &ws.files[file_idx];
    if !SERIES_PREFIXES.iter().any(|p| name.starts_with(p)) {
        emit(
            diags,
            file,
            line,
            "metrics-registry",
            format!(
                "series `{name}` must carry the `sitw_serve_` or `sitw_router_` \
                 namespace prefix"
            ),
        );
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        || name.starts_with('_')
        || name.ends_with('_')
        || name.contains("__")
    {
        emit(
            diags,
            file,
            line,
            "metrics-registry",
            format!("series `{name}` is not snake_case"),
        );
    }
    if !["counter", "gauge", "histogram"].contains(&kind) {
        emit(
            diags,
            file,
            line,
            "metrics-registry",
            format!("series `{name}` has invalid type `{kind}` (counter|gauge|histogram)"),
        );
    }
    let total = name.ends_with("_total");
    if total && kind != "counter" {
        emit(
            diags,
            file,
            line,
            "metrics-registry",
            format!("series `{name}` ends in `_total` but is declared `{kind}`, not counter"),
        );
    }
    if !total && kind == "counter" {
        emit(
            diags,
            file,
            line,
            "metrics-registry",
            format!("counter `{name}` must end in `_total`"),
        );
    }
}

/// The metric namespaces the registry rule owns: node series and
/// router series.
const SERIES_PREFIXES: &[&str] = &["sitw_serve_", "sitw_router_"];

/// Extracts `sitw_serve_*`/`sitw_router_*` series names from one string
/// literal: each maximal `[a-z0-9_]` run starting at a namespace
/// prefix, trailing underscores trimmed (grep patterns quote prefixes
/// like `sitw_serve_tenant_`).
fn series_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    for prefix in SERIES_PREFIXES {
        let mut i = 0;
        while let Some(off) = text[i..].find(prefix) {
            let start = i + off;
            let mut end = start;
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase()
                    || bytes[end].is_ascii_digit()
                    || bytes[end] == b'_')
            {
                end += 1;
            }
            let name = text[start..end].trim_end_matches('_');
            if name.len() > prefix.len() {
                out.push(name.to_string());
            }
            i = end.max(start + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags_of(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        Workspace::from_sources(sources).lint()
    }

    #[test]
    fn unsafe_flagged_outside_reactor_only() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let p = x as *const u8; }\n";
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let d = diags_of(&[
            ("crates/core/src/lib.rs", src),
            ("crates/core/src/bad.rs", bad),
            ("crates/reactor/src/sys.rs", bad),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/core/src/bad.rs");
        assert_eq!(d[0].rule, "unsafe-confinement");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn crate_roots_need_forbid() {
        let d = diags_of(&[("crates/core/src/lib.rs", "pub fn f() {}\n")]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("forbid(unsafe_code)"));
        let ok = diags_of(&[(
            "crates/core/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let src = "#![forbid(unsafe_code)]\n// unsafe in prose\nconst S: &str = \"unsafe\";\n";
        assert!(diags_of(&[("crates/core/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn hot_path_alloc_and_panic_rules_fire_only_in_hot_fns() {
        let src = r#"
// sitw-lint: hot-path
fn hot(&mut self) {
    let s = value.to_string();
    self.out.push(s.clone());
    let x = map.get(&k).unwrap();
}

fn cold() {
    let s = format!("fine here {}", 1);
    let v = Vec::new();
    let y = opt.unwrap();
}
"#;
        let d = diags_of(&[("crates/serve/src/conn.rs", src)]);
        let rules: Vec<(&str, u32)> = d.iter().map(|d| (d.rule, d.line)).collect();
        assert_eq!(
            rules,
            [
                ("hot-path-alloc", 4),
                ("hot-path-alloc", 5),
                ("panic-freedom", 6)
            ],
            "{d:?}"
        );
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let src = r#"
// sitw-lint: hot-path
fn hot() {
    // sitw-lint: allow(hot-path-alloc)
    let s = other.to_string();
    let t = other.to_string(); // sitw-lint: allow(hot-path-alloc)
    let u = other.to_string();
}
"#;
        let d = diags_of(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 7);
    }

    #[test]
    fn clock_discipline_exempts_telemetry_tests_and_allows() {
        let clock = "fn f() { let t = Instant::now(); }\n";
        let allowed =
            "fn f() {\n    // sitw-lint: allow(clock-discipline)\n    let t = Instant::now();\n}\n";
        let in_test_mod = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); }\n}\n";
        let d = diags_of(&[
            ("crates/serve/src/loadgen.rs", clock),
            ("crates/serve/src/ok.rs", allowed),
            ("crates/serve/src/unit.rs", in_test_mod),
            ("crates/serve/tests/reactor.rs", clock),
            ("crates/telemetry/src/clock.rs", clock),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/serve/src/loadgen.rs");
        assert_eq!(d[0].rule, "clock-discipline");
    }

    #[test]
    fn metrics_registry_checks_uses_and_declarations() {
        let metrics = r#"
// sitw-lint: metrics-registry
pub const REGISTRY: &[(&str, &str, &str)] = &[
    ("sitw_serve_good_total", "counter", "A counter."),
    ("sitw_serve_gauge", "gauge", "A gauge."),
    ("sitw_serve_dead", "gauge", "Never used."),
    ("sitw_serve_bad_total", "gauge", "Mistyped."),
];
fn render() {
    let _ = "sitw_serve_good_total 1";
    let _ = "sitw_serve_gauge{shard=\"0\"} 2";
    let _ = "sitw_serve_undeclared 3";
    let _ = "sitw_serve_bad_total 4";
}
"#;
        let d = diags_of(&[("crates/serve/src/metrics.rs", metrics)]);
        let msgs: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("`sitw_serve_undeclared`")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("`sitw_serve_dead`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("`sitw_serve_bad_total`") && m.contains("not counter")));
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn router_namespace_is_checked_too() {
        let metrics = r#"
// sitw-lint: metrics-registry
pub const REGISTRY: &[(&str, &str, &str)] = &[
    ("sitw_router_requests_total", "counter", "Routed requests."),
    ("sitw_router_dead", "gauge", "Never used."),
    ("sitw_other_thing", "gauge", "Wrong namespace."),
];
fn render() {
    let _ = "sitw_router_requests_total 1";
    let _ = "sitw_router_undeclared 2";
    let _ = "sitw_other_thing 3";
}
"#;
        let d = diags_of(&[("crates/cluster/src/metrics.rs", metrics)]);
        let msgs: Vec<&str> = d.iter().map(|d| d.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("`sitw_router_undeclared`")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("`sitw_router_dead`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("`sitw_other_thing`") && m.contains("namespace prefix")));
        // `sitw_other_thing` is outside both namespaces, so its use is
        // invisible to the scanner: the bad declaration is also dead.
        assert_eq!(d.len(), 4, "{d:?}");
    }

    #[test]
    fn histogram_suffixes_resolve_to_their_family() {
        let metrics = r#"
// sitw-lint: metrics-registry
pub const REGISTRY: &[(&str, &str, &str)] = &[
    ("sitw_serve_latency", "histogram", "Latency."),
];
fn render() {
    let _ = "sitw_serve_latency_bucket{le=\"+Inf\"} 1";
    let _ = "sitw_serve_latency_sum 2";
    let _ = "sitw_serve_latency_count 3";
}
"#;
        assert!(diags_of(&[("crates/serve/src/metrics.rs", metrics)]).is_empty());
    }

    #[test]
    fn grep_prefix_literals_trim_trailing_underscores() {
        assert_eq!(
            series_names("grep sitw_serve_tenant_ and sitw_serve_apps!"),
            ["sitw_serve_tenant", "sitw_serve_apps"]
        );
        assert_eq!(
            series_names("prefix sitw_serve_ only"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn unknown_directive_is_reported() {
        let d = diags_of(&[(
            "crates/core/src/x.rs",
            "// sitw-lint: allow(no-such-rule)\n",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "directive");
    }
}
