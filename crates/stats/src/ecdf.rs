//! Empirical cumulative distribution functions.
//!
//! Every characterization figure in the paper is a CDF across functions or
//! applications; [`Ecdf`] builds them, evaluates them, extracts quantiles,
//! and emits downsampled point series for plotting or CSV export.

use crate::percentile::percentile_sorted;

/// An empirical CDF over a set of `f64` samples.
///
/// Construction sorts the data once; evaluation is a binary search.
///
/// # Examples
///
/// ```
/// use sitw_stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(100.0), 1.0);
/// assert_eq!(e.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF of empty sample set");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not contain NaN"
        );
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x because the
        // slice is sorted.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), linearly interpolated.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// `(x, F(x))` for every sample (staircase upper corners).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// At most `max_points` evenly spaced (in rank) CDF points — enough to
    /// draw the curve without emitting millions of rows.
    pub fn points_downsampled(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n <= max_points || max_points < 2 {
            return self.points();
        }
        let mut out = Vec::with_capacity(max_points);
        for k in 0..max_points {
            let i = k * (n - 1) / (max_points - 1);
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
        }
        out
    }

    /// Evaluates the ECDF on a caller-supplied grid of `x` values.
    pub fn eval_on(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter().map(|&x| (x, self.eval(x))).collect()
    }
}

/// A logarithmically spaced grid of `n` points covering `[lo, hi]`,
/// handy for the paper's log-x CDF plots (daily invocation rates span
/// 8 orders of magnitude).
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `n ≥ 2`.
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(n >= 2, "need at least two grid points");
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// A linearly spaced grid of `n` points covering `[lo, hi]`.
///
/// # Panics
///
/// Panics unless `lo < hi` and `n ≥ 2`.
pub fn linear_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(hi > lo, "need lo < hi");
    assert!(n >= 2, "need at least two grid points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_step_behavior() {
        let e = Ecdf::new(vec![1.0, 3.0, 3.0, 7.0]);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.9), 0.25);
        assert_eq!(e.eval(3.0), 0.75);
        assert_eq!(e.eval(7.0), 1.0);
    }

    #[test]
    fn quantile_min_max() {
        let e = Ecdf::new(vec![5.0, 1.0, 9.0]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 9.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 9.0);
        assert_eq!(e.quantile(0.5), 5.0);
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let e = Ecdf::new(vec![2.0, -1.0, 0.5, 2.0, 8.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 5);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let e = Ecdf::new(samples);
        let pts = e.points_downsampled(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts.last().unwrap().0, 999.0);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn downsample_noop_when_small() {
        let e = Ecdf::new(vec![1.0, 2.0]);
        assert_eq!(e.points_downsampled(10).len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        Ecdf::new(vec![]);
    }

    #[test]
    fn log_grid_spans_and_is_monotone() {
        let g = log_grid(0.01, 1e6, 9);
        assert_eq!(g.len(), 9);
        assert!((g[0] - 0.01).abs() < 1e-12);
        assert!((g[8] - 1e6).abs() / 1e6 < 1e-9);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        // Even spacing in log10: each step is one decade.
        assert!((g[1] / g[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn linear_grid_spans() {
        let g = linear_grid(0.0, 10.0, 5);
        assert_eq!(g, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }
}
