//! End-to-end pipeline tests: determinism, parallel/serial agreement,
//! cross-component consistency, and the characterization targets the
//! generator is calibrated to.

use serverless_in_the_wild::prelude::*;
use serverless_in_the_wild::trace::analysis;
use serverless_in_the_wild::trace::for_each_app;

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let population = build_population(&PopulationConfig {
            num_apps: 150,
            seed: 9,
        });
        let cfg = TraceConfig {
            horizon_ms: DAY_MS,
            cap_per_day: 1_000.0,
            seed: 4,
        };
        let specs = vec![
            PolicySpec::fixed_minutes(10),
            PolicySpec::Hybrid(HybridConfig::default()),
        ];
        run_sweep(&population, &cfg, &specs, 3)
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cold_starts, y.cold_starts);
        assert_eq!(x.wasted_ms, y.wasted_ms);
        assert_eq!(x.invocations, y.invocations);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let population = build_population(&PopulationConfig {
        num_apps: 120,
        seed: 10,
    });
    let cfg = TraceConfig {
        horizon_ms: DAY_MS,
        cap_per_day: 1_000.0,
        seed: 5,
    };
    let specs = vec![PolicySpec::Hybrid(HybridConfig::default())];
    let serial = run_sweep(&population, &cfg, &specs, 1);
    let parallel = run_sweep(&population, &cfg, &specs, 8);
    assert_eq!(serial[0].cold_starts, parallel[0].cold_starts);
    assert_eq!(serial[0].wasted_ms, parallel[0].wasted_ms);
    assert_eq!(serial[0].always_cold_apps, parallel[0].always_cold_apps);
}

#[test]
fn characterization_targets_hold() {
    // The calibrated population must stay near the published anchors.
    let population = build_population(&PopulationConfig {
        num_apps: 6_000,
        seed: 31,
    });

    // Figure 1: single-function apps ≈ 54%.
    let singles = population
        .apps
        .iter()
        .filter(|a| a.functions.len() == 1)
        .count() as f64
        / population.len() as f64;
    assert!((0.45..0.65).contains(&singles), "singles {singles}");

    // Figure 2: HTTP carries the most functions.
    let shares = analysis::trigger_shares(&population);
    let http = shares
        .iter()
        .find(|r| r.trigger == TriggerType::Http)
        .unwrap();
    assert!(http.pct_functions > 40.0, "HTTP {}", http.pct_functions);
    // Event: few functions, many invocations.
    let event = shares
        .iter()
        .find(|r| r.trigger == TriggerType::Event)
        .unwrap();
    assert!(
        event.pct_invocations > 3.0 * event.pct_functions,
        "event {}% functions vs {}% invocations",
        event.pct_functions,
        event.pct_invocations
    );

    // Figure 5(b): extreme popularity skew.
    let conc = analysis::popularity_concentration_expected(&population);
    let at20 = conc.iter().find(|(f, _)| *f >= 0.20).unwrap().1;
    assert!(at20 > 0.95, "top-20% share {at20}");

    // Figure 8: memory median in the Burr fit's neighborhood.
    let (_, avg, _) = analysis::memory_ecdfs(&population);
    let median = avg.quantile(0.5);
    assert!((90.0..220.0).contains(&median), "memory median {median}");

    // Figure 7: half the functions run under ~1 s on average.
    let (_, avg_exec, _) = analysis::exec_time_ecdfs(&population);
    assert!(avg_exec.quantile(0.5) < 1.5, "{}", avg_exec.quantile(0.5));
}

#[test]
fn streaming_and_materialized_traces_agree() {
    let population = build_population(&PopulationConfig {
        num_apps: 80,
        seed: 12,
    });
    let cfg = TraceConfig {
        horizon_ms: DAY_MS,
        cap_per_day: 500.0,
        seed: 6,
    };
    let trace = generate_trace(&population, &cfg);
    let mut streamed_total = 0u64;
    for_each_app(&population, &cfg, |_, ev| streamed_total += ev.len() as u64);
    assert_eq!(trace.total_invocations(), streamed_total);
}

#[test]
fn hourly_load_has_diurnal_structure() {
    let population = build_population(&PopulationConfig {
        num_apps: 800,
        seed: 13,
    });
    let cfg = TraceConfig {
        horizon_ms: WEEK_MS,
        cap_per_day: 1_000.0,
        seed: 7,
    };
    let trace = generate_trace(&population, &cfg);
    let hourly = analysis::hourly_load(&trace);
    assert_eq!(hourly.len(), 24 * 7);
    // Figure 4: a substantial flat baseline — the minimum hour stays
    // well above zero.
    let min = hourly.iter().cloned().fold(f64::MAX, f64::min);
    assert!(min > 0.15, "min/peak {min}");
    // And there is genuine diurnal variation.
    assert!(min < 0.85, "no diurnal variation, min {min}");
}

#[test]
fn sweep_aggregates_are_internally_consistent() {
    let population = build_population(&PopulationConfig {
        num_apps: 200,
        seed: 14,
    });
    let cfg = TraceConfig {
        horizon_ms: DAY_MS,
        cap_per_day: 1_000.0,
        seed: 8,
    };
    let specs = vec![
        PolicySpec::fixed_minutes(10),
        PolicySpec::Hybrid(HybridConfig::default()),
    ];
    let aggs = run_sweep(&population, &cfg, &specs, 2);
    for agg in &aggs {
        assert_eq!(agg.per_app_cold_pct.len() as u64, agg.apps);
        assert!(agg.cold_starts <= agg.invocations);
        assert!(agg.always_cold_apps >= agg.single_invocation_apps);
        // Cold percentages within [0, 100].
        assert!(agg
            .per_app_cold_pct
            .iter()
            .all(|&p| (0.0..=100.0).contains(&p)));
        // The CDF ends at 1.
        let cdf = agg.cold_cdf();
        assert_eq!(cdf.eval(100.0), 1.0);
    }
    // Both policies saw the same workload.
    assert_eq!(aggs[0].invocations, aggs[1].invocations);
    assert_eq!(aggs[0].apps, aggs[1].apps);
}
