//! Serving throughput: decisions per second through the full loopback
//! wire path, across shard counts, both protocols (JSON/HTTP vs
//! SITW-BIN at batch 1/16/128), and tenant modes, measured by the
//! open-loop load generator. The ISSUE-1 acceptance floor is 50k
//! decisions/sec on a 4-shard daemon in release mode; the ISSUE-3 gate
//! is SITW-BIN at batch ≥ 16 sustaining ≥ 1.5× the JSON rate on the
//! same hardware; the ISSUE-4 gate is 4-tenant fleet mode sustaining
//! ≥ 0.8× the single-tenant JSON rate (the memory ledger must not eat
//! the serving path).
//!
//! Besides the human-readable report, this bench is the perf-trajectory
//! recorder: with `SITW_BENCH_JSON=path` it writes every case's mean
//! dec/s as a JSON array (`{proto, policy, shards, batch, dec_per_sec}`
//! records) — CI commits the refreshed `BENCH_serve.json` at the repo
//! root so speedups stay verifiable across PRs. Set `SITW_BENCH_GATE=0`
//! to skip the BIN-vs-JSON ratio assertion (it is on by default).

use std::io::Write as _;
use std::sync::Mutex;

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use sitw_core::{HybridConfig, ProductionConfig};
use sitw_serve::{run_loadgen, LoadGenConfig, Proto, ServeConfig, Server, TenantConfig};
use sitw_sim::PolicySpec;
use sitw_trace::DAY_MS;

const EVENTS: usize = 20_000;

/// The ISSUE-3 acceptance floor: BIN at batch ≥ 16 vs JSON, same shards.
const GATE_RATIO: f64 = 1.5;

/// The ISSUE-4 acceptance floor: 4-tenant fleet mode vs single-tenant,
/// same shards and protocol.
const TENANT_GATE_RATIO: f64 = 0.8;

/// Tenants in the fleet-mode cases.
const TENANTS: usize = 4;

/// One measured case, accumulated for the machine-readable report.
struct CaseResult {
    proto: &'static str,
    policy: &'static str,
    shards: usize,
    batch: usize,
    tenants: usize,
    samples: Vec<f64>,
}

impl CaseResult {
    fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

static RESULTS: Mutex<Vec<CaseResult>> = Mutex::new(Vec::new());

fn loadgen_config(proto: Proto, tenants: usize) -> LoadGenConfig {
    LoadGenConfig {
        apps: 300,
        seed: 42,
        horizon_ms: DAY_MS,
        cap_per_day: 1_000.0,
        speedup: f64::INFINITY,
        connections: 2,
        window: 128,
        max_events: EVENTS,
        proto,
        tenants,
        zipf: if tenants > 0 { 1.0 } else { 0.0 },
    }
}

fn run_once(shards: usize, policy: PolicySpec, proto: Proto, tenants: usize) -> f64 {
    // A fresh server per iteration: policy state is cumulative and
    // timestamps must stay monotone.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        policy: policy.clone(),
        tenants: (0..tenants)
            .map(|k| TenantConfig {
                name: format!("t{k}"),
                policy: policy.clone(),
                budget_mb: 0,
            })
            .collect(),
        ..ServeConfig::default()
    })
    .expect("server start");
    let report = run_loadgen(server.addr(), &loadgen_config(proto, tenants)).expect("loadgen");
    assert_eq!(report.ok, EVENTS as u64, "lost responses");
    if tenants > 0 {
        let served: u64 = report.per_tenant.iter().map(|t| t.ok).sum();
        assert_eq!(served, EVENTS as u64, "every decision tenant-attributed");
    }
    server.shutdown().expect("shutdown");
    report.throughput
}

fn bench_decisions_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    #[allow(clippy::too_many_arguments)]
    let case = |group: &mut criterion::BenchmarkGroup<'_>,
                id: BenchmarkId,
                proto_label: &'static str,
                policy_label: &'static str,
                shards: usize,
                batch: usize,
                tenants: usize,
                policy: fn() -> PolicySpec,
                proto: Proto| {
        let mut samples = Vec::new();
        group.bench_function(id, |b| {
            b.iter(|| {
                let dec_per_sec = run_once(shards, policy(), proto, tenants);
                samples.push(dec_per_sec);
                dec_per_sec
            })
        });
        RESULTS.lock().unwrap().push(CaseResult {
            proto: proto_label,
            policy: policy_label,
            shards,
            batch,
            tenants,
            samples,
        });
    };

    let hybrid = || PolicySpec::Hybrid(HybridConfig::default());
    let production = || PolicySpec::Production(ProductionConfig::default());

    // JSON across shard counts (the PR-1 shape, unchanged).
    for shards in [1usize, 2, 4] {
        case(
            &mut group,
            BenchmarkId::new("json/shards", shards),
            "json",
            "hybrid",
            shards,
            1,
            0,
            hybrid,
            Proto::Json,
        );
    }
    // The §6 production-manager mode on the 4-shard shape.
    case(
        &mut group,
        BenchmarkId::new("json/production", 4usize),
        "json",
        "production",
        4,
        1,
        0,
        production,
        Proto::Json,
    );
    // SITW-BIN at increasing batch sizes, same 4-shard shape as the
    // JSON baseline it is gated against.
    for batch in [1usize, 16, 128] {
        case(
            &mut group,
            BenchmarkId::new("bin/batch", batch),
            "bin",
            "hybrid",
            4,
            batch,
            0,
            hybrid,
            Proto::Bin { batch },
        );
    }
    // Fleet mode (ISSUE-4): the same 4-shard hybrid shapes with the
    // replay spread over 4 tenants (zipf 1.0), ledger charging every
    // decision — gated at >= 0.8x the single-tenant JSON rate.
    case(
        &mut group,
        BenchmarkId::new("json/tenants", TENANTS),
        "json",
        "hybrid",
        4,
        1,
        TENANTS,
        hybrid,
        Proto::Json,
    );
    case(
        &mut group,
        BenchmarkId::new("bin/tenants", TENANTS),
        "bin",
        "hybrid",
        4,
        128,
        TENANTS,
        hybrid,
        Proto::Bin { batch: 128 },
    );
    group.finish();
}

/// Writes `BENCH_serve.json`-style output and enforces the perf gate.
fn report_and_gate() {
    let results = RESULTS.lock().unwrap();

    if let Ok(path) = std::env::var("SITW_BENCH_JSON") {
        // Cargo runs benches from the package dir; anchor relative
        // paths at the workspace root so `SITW_BENCH_JSON=BENCH_serve.json`
        // lands where CI and the committed baseline expect it.
        let path = if std::path::Path::new(&path).is_absolute() {
            std::path::PathBuf::from(&path)
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&path)
        };
        let mut json = String::from("[\n");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "  {{\"proto\": \"{}\", \"policy\": \"{}\", \"shards\": {}, \"batch\": {}, \
                 \"tenants\": {}, \"dec_per_sec\": {:.0}}}",
                r.proto,
                r.policy,
                r.shards,
                r.batch,
                r.tenants,
                r.mean()
            ));
        }
        json.push_str("\n]\n");
        let mut file = std::fs::File::create(&path).expect("create SITW_BENCH_JSON");
        file.write_all(json.as_bytes()).expect("write bench json");
        println!("wrote {} ({} cases)", path.display(), results.len());
    }

    if std::env::var("SITW_BENCH_GATE").as_deref() == Ok("0") {
        return;
    }
    let json_4 = results
        .iter()
        .find(|r| r.proto == "json" && r.policy == "hybrid" && r.shards == 4 && r.tenants == 0)
        .map(CaseResult::mean)
        .expect("json 4-shard baseline case");
    let bin_best = results
        .iter()
        .filter(|r| r.proto == "bin" && r.batch >= 16 && r.tenants == 0)
        .map(CaseResult::mean)
        .fold(0.0f64, f64::max);
    println!(
        "gate: bin(batch>=16) {:.0} dec/s vs json {:.0} dec/s = {:.2}x (floor {GATE_RATIO}x)",
        bin_best,
        json_4,
        bin_best / json_4
    );
    assert!(
        bin_best >= GATE_RATIO * json_4,
        "perf gate failed: SITW-BIN at batch>=16 must sustain >= {GATE_RATIO}x the JSON \
         rate ({bin_best:.0} vs {json_4:.0} dec/s)"
    );
    let tenants_json = results
        .iter()
        .find(|r| r.proto == "json" && r.tenants == TENANTS)
        .map(CaseResult::mean)
        .expect("json tenants case");
    println!(
        "gate: json {TENANTS}-tenant {:.0} dec/s vs single-tenant {:.0} dec/s = {:.2}x \
         (floor {TENANT_GATE_RATIO}x)",
        tenants_json,
        json_4,
        tenants_json / json_4
    );
    assert!(
        tenants_json >= TENANT_GATE_RATIO * json_4,
        "perf gate failed: fleet mode must sustain >= {TENANT_GATE_RATIO}x the single-tenant \
         JSON rate ({tenants_json:.0} vs {json_4:.0} dec/s)"
    );
}

criterion_group!(benches, bench_decisions_per_sec);

fn main() {
    benches();
    report_and_gate();
}
