//! The `sitw-serve` daemon.
//!
//! ```text
//! sitw-serve [--addr 127.0.0.1:7071] [--shards 4] [--policy hybrid]
//!            [--snapshot PATH] [--restore PATH]
//! ```
//!
//! Policies: `hybrid` (paper defaults), `hybrid:<hours>h` (histogram
//! range), `fixed:<minutes>` (fixed keep-alive), `no-unloading`, and
//! `production` — the §6 production-manager scheme (daily histograms,
//! two-week retention, recency-weighted aggregation, pre-warms 90 s
//! early, hourly backup accounting). Variants: `production:<days>d`
//! (retention), `production:<decay>` (per-day exponential decay, e.g.
//! `production:0.5`), `production:uniform` (no recency weighting).
//!
//! The daemon runs until `POST /admin/shutdown`; with `--snapshot` it
//! writes its final state there on the way out (and on every
//! `POST /admin/snapshot`).

use std::path::PathBuf;
use std::process::exit;

use sitw_core::{HybridConfig, ProductionConfig, RecencyWeighting};
use sitw_serve::{ServeConfig, Server};
use sitw_sim::PolicySpec;

fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    if s == "production" {
        return Ok(PolicySpec::Production(ProductionConfig::default()));
    }
    if let Some(rest) = s.strip_prefix("production:") {
        let mut cfg = ProductionConfig::default();
        if rest == "uniform" {
            cfg.weighting = RecencyWeighting::Uniform;
        } else if let Some(days) = rest.strip_suffix('d') {
            cfg.retention_days = days
                .parse()
                .map_err(|_| format!("bad retention '{rest}'"))?;
            if cfg.retention_days == 0 {
                // Zero retention would expire even the current day: the
                // aggregate stays empty and the policy never learns.
                return Err("retention must be at least 1 day".into());
            }
        } else {
            let decay: f64 = rest.parse().map_err(|_| format!("bad decay '{rest}'"))?;
            if !(0.0..=1.0).contains(&decay) || decay == 0.0 {
                return Err(format!("decay must be in (0, 1]: '{rest}'"));
            }
            cfg.weighting = RecencyWeighting::Exponential { decay };
        }
        return Ok(PolicySpec::Production(cfg));
    }
    if s == "hybrid" {
        return Ok(PolicySpec::Hybrid(HybridConfig::default()));
    }
    if let Some(rest) = s.strip_prefix("hybrid:") {
        let hours: usize = rest
            .trim_end_matches('h')
            .parse()
            .map_err(|_| format!("bad hybrid range '{rest}'"))?;
        return Ok(PolicySpec::Hybrid(HybridConfig::with_range_hours(hours)));
    }
    if let Some(rest) = s.strip_prefix("fixed:") {
        let minutes: u64 = rest
            .trim_end_matches("min")
            .parse()
            .map_err(|_| format!("bad fixed keep-alive '{rest}'"))?;
        return Ok(PolicySpec::fixed_minutes(minutes));
    }
    if s == "no-unloading" {
        return Ok(PolicySpec::NoUnloading);
    }
    Err(format!("unknown policy '{s}'"))
}

fn usage() -> ! {
    eprintln!(
        "usage: sitw-serve [--addr HOST:PORT] [--shards N] \
         [--policy hybrid|hybrid:<h>h|fixed:<min>|no-unloading|\
         production[:<days>d|:<decay>|:uniform]] \
         [--snapshot PATH] [--restore PATH]"
    );
    exit(2)
}

fn main() {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--shards" => {
                cfg.shards = value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--policy" => {
                let spec = value("--policy");
                match parse_policy(&spec) {
                    Ok(p) => cfg.policy = p,
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--snapshot" => cfg.snapshot_path = Some(PathBuf::from(value("--snapshot"))),
            "--restore" => cfg.restore_path = Some(PathBuf::from(value("--restore"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }

    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            exit(1);
        }
    };
    println!(
        "sitw-serve listening on {} | policy {} | {} shards{}",
        server.addr(),
        cfg.policy.label(),
        cfg.shards,
        cfg.snapshot_path
            .as_ref()
            .map(|p| format!(" | snapshot {}", p.display()))
            .unwrap_or_default()
    );
    println!(
        "endpoints: POST /invoke, GET /metrics, GET /healthz, \
         POST /admin/snapshot, POST /admin/shutdown"
    );

    server.wait();
    match server.shutdown() {
        Ok(snapshot) => {
            println!("stopped; {} apps in final state", snapshot.apps.len());
        }
        Err(e) => {
            eprintln!("shutdown error: {e}");
            exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_policy_production_variants() {
        assert_eq!(
            parse_policy("production").unwrap().label(),
            "production-240m-14d[5,99]exp0.85"
        );
        assert_eq!(
            parse_policy("production:7d").unwrap().label(),
            "production-240m-7d[5,99]exp0.85"
        );
        assert_eq!(
            parse_policy("production:0.5").unwrap().label(),
            "production-240m-14d[5,99]exp0.5"
        );
        assert_eq!(
            parse_policy("production:uniform").unwrap().label(),
            "production-240m-14d[5,99]uni"
        );
        assert!(parse_policy("production:nope").is_err());
        assert!(parse_policy("production:1.5").is_err());
        assert!(parse_policy("production:0").is_err());
        assert!(
            parse_policy("production:0d").is_err(),
            "zero retention would never learn"
        );
    }

    #[test]
    fn parse_policy_existing_forms_unchanged() {
        assert_eq!(
            parse_policy("hybrid").unwrap().label(),
            "hybrid-4h[5,99]cv2"
        );
        assert_eq!(parse_policy("fixed:10").unwrap().label(), "fixed-10min");
        assert_eq!(
            parse_policy("no-unloading").unwrap().label(),
            "no-unloading"
        );
        assert!(parse_policy("bogus").is_err());
    }
}
