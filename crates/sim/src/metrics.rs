//! Aggregation of per-application results into the paper's metrics.
//!
//! The evaluation reports (§5.2):
//!
//! * the **distribution of per-app cold-start percentages** (Figures 14,
//!   16–18 plot its CDF; Figure 15 tracks the 75th percentile);
//! * **wasted memory time**, normalized to the fixed 10-minute baseline;
//! * the share of **always-cold applications** (Figure 19), with and
//!   without single-invocation apps;
//! * ARIMA usage counters (0.64% of invocations, 9.3% of apps in the
//!   paper's week).

use sitw_stats::{percentile_sorted, Ecdf};

use crate::engine::AppSimResult;

/// Aggregated results of one policy over a whole population.
#[derive(Debug, Clone)]
pub struct PolicyAggregate {
    /// Policy label (from its factory).
    pub label: String,
    /// Cold-start percentage of every simulated app (with ≥ 1
    /// invocation), unordered.
    pub per_app_cold_pct: Vec<f64>,
    /// Applications simulated (with ≥ 1 invocation).
    pub apps: u64,
    /// Total invocations.
    pub invocations: u64,
    /// Total cold starts.
    pub cold_starts: u64,
    /// Total wasted memory time (ms, all apps weighing equally).
    pub wasted_ms: u128,
    /// Memory-weighted waste (MB·ms) — extension beyond the paper's
    /// equal-weight accounting.
    pub wasted_mb_ms: f64,
    /// Apps whose every invocation was cold.
    pub always_cold_apps: u64,
    /// Apps with exactly one invocation (always cold under any policy).
    pub single_invocation_apps: u64,
    /// Apps that used the ARIMA branch at least once.
    pub apps_used_arima: u64,
    /// Invocation decisions served by ARIMA.
    pub arima_decisions: u64,
}

impl PolicyAggregate {
    /// Creates an empty aggregate for a policy label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            per_app_cold_pct: Vec::new(),
            apps: 0,
            invocations: 0,
            cold_starts: 0,
            wasted_ms: 0,
            wasted_mb_ms: 0.0,
            always_cold_apps: 0,
            single_invocation_apps: 0,
            apps_used_arima: 0,
            arima_decisions: 0,
        }
    }

    /// Folds one application's result in; `memory_mb` feeds the
    /// memory-weighted waste extension.
    pub fn add(&mut self, r: &AppSimResult, memory_mb: f64) {
        if r.invocations == 0 {
            return;
        }
        self.per_app_cold_pct.push(r.cold_pct());
        self.apps += 1;
        self.invocations += r.invocations;
        self.cold_starts += r.cold_starts;
        self.wasted_ms += r.wasted_ms as u128;
        self.wasted_mb_ms += r.wasted_ms as f64 * memory_mb;
        if r.always_cold() {
            self.always_cold_apps += 1;
        }
        if r.invocations == 1 {
            self.single_invocation_apps += 1;
        }
        if r.used_arima {
            self.apps_used_arima += 1;
        }
        self.arima_decisions += r.arima_decisions;
    }

    /// Merges another aggregate (for parallel sweeps).
    ///
    /// # Panics
    ///
    /// Panics when labels differ.
    pub fn merge(&mut self, other: &PolicyAggregate) {
        assert_eq!(self.label, other.label, "merging different policies");
        self.per_app_cold_pct
            .extend_from_slice(&other.per_app_cold_pct);
        self.apps += other.apps;
        self.invocations += other.invocations;
        self.cold_starts += other.cold_starts;
        self.wasted_ms += other.wasted_ms;
        self.wasted_mb_ms += other.wasted_mb_ms;
        self.always_cold_apps += other.always_cold_apps;
        self.single_invocation_apps += other.single_invocation_apps;
        self.apps_used_arima += other.apps_used_arima;
        self.arima_decisions += other.arima_decisions;
    }

    /// The `p`-th percentile of per-app cold-start percentages; the
    /// paper's headline statistic is `p = 75` ("3rd quartile app cold
    /// start").
    ///
    /// # Panics
    ///
    /// Panics when no apps were simulated.
    pub fn cold_pct_percentile(&self, p: f64) -> f64 {
        let mut xs = self.per_app_cold_pct.clone();
        xs.sort_by(f64::total_cmp);
        percentile_sorted(&xs, p)
    }

    /// CDF of per-app cold-start percentages (Figures 14, 16–18, 20).
    ///
    /// # Panics
    ///
    /// Panics when no apps were simulated.
    pub fn cold_cdf(&self) -> Ecdf {
        Ecdf::new(self.per_app_cold_pct.clone())
    }

    /// Percentage of apps that were always cold (Figure 19).
    pub fn always_cold_pct(&self) -> f64 {
        if self.apps == 0 {
            0.0
        } else {
            100.0 * self.always_cold_apps as f64 / self.apps as f64
        }
    }

    /// Always-cold percentage excluding apps with a single invocation,
    /// which no predictive policy can help (Figure 19's second reading).
    pub fn always_cold_pct_excluding_single(&self) -> f64 {
        if self.apps == 0 {
            return 0.0;
        }
        let eligible = self.apps - self.single_invocation_apps;
        let cold = self
            .always_cold_apps
            .saturating_sub(self.single_invocation_apps);
        if eligible == 0 {
            0.0
        } else {
            100.0 * cold as f64 / eligible as f64
        }
    }

    /// Wasted memory time as a percentage of a baseline aggregate
    /// (the paper normalizes to fixed-10-minute).
    pub fn normalized_waste_pct(&self, baseline: &PolicyAggregate) -> f64 {
        if baseline.wasted_ms == 0 {
            return f64::INFINITY;
        }
        100.0 * self.wasted_ms as f64 / baseline.wasted_ms as f64
    }

    /// Share of invocations whose policy decision came from ARIMA.
    pub fn arima_invocation_share_pct(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            100.0 * self.arima_decisions as f64 / self.invocations as f64
        }
    }

    /// Share of apps that used ARIMA at least once.
    pub fn arima_app_share_pct(&self) -> f64 {
        if self.apps == 0 {
            0.0
        } else {
            100.0 * self.apps_used_arima as f64 / self.apps as f64
        }
    }
}

/// A point on the cold-start/memory trade-off plot (Figure 15): the 75th-
/// percentile per-app cold-start percentage versus waste normalized to a
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Policy label.
    pub label: String,
    /// 75th percentile of per-app cold-start percentage.
    pub cold_pct_p75: f64,
    /// Wasted memory time, % of the baseline policy.
    pub normalized_waste_pct: f64,
}

/// Builds Figure 15-style Pareto points for a set of aggregates against
/// the named baseline.
///
/// # Panics
///
/// Panics when the baseline label is absent.
pub fn pareto_points(aggregates: &[PolicyAggregate], baseline_label: &str) -> Vec<ParetoPoint> {
    let baseline = aggregates
        .iter()
        .find(|a| a.label == baseline_label)
        .unwrap_or_else(|| panic!("baseline {baseline_label:?} not in aggregates"));
    aggregates
        .iter()
        .map(|a| ParetoPoint {
            label: a.label.clone(),
            cold_pct_p75: a.cold_pct_percentile(75.0),
            normalized_waste_pct: a.normalized_waste_pct(baseline),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(invocations: u64, cold: u64, wasted: u64) -> AppSimResult {
        AppSimResult {
            invocations,
            cold_starts: cold,
            wasted_ms: wasted,
            ..Default::default()
        }
    }

    #[test]
    fn add_and_percentiles() {
        let mut agg = PolicyAggregate::new("test");
        agg.add(&result(10, 5, 100), 100.0);
        agg.add(&result(10, 1, 50), 100.0);
        agg.add(&result(1, 1, 0), 100.0);
        assert_eq!(agg.apps, 3);
        assert_eq!(agg.invocations, 21);
        assert_eq!(agg.cold_starts, 7);
        assert_eq!(agg.wasted_ms, 150);
        assert_eq!(agg.single_invocation_apps, 1);
        assert_eq!(agg.always_cold_apps, 1);
        // Cold percentages: 50, 10, 100 → p50 = 50.
        assert_eq!(agg.cold_pct_percentile(50.0), 50.0);
    }

    #[test]
    fn empty_app_results_ignored() {
        let mut agg = PolicyAggregate::new("x");
        agg.add(&AppSimResult::default(), 128.0);
        assert_eq!(agg.apps, 0);
    }

    #[test]
    fn always_cold_excluding_single() {
        let mut agg = PolicyAggregate::new("x");
        agg.add(&result(1, 1, 0), 1.0); // Single-invocation app.
        agg.add(&result(4, 4, 0), 1.0); // Multi-invocation always-cold.
        agg.add(&result(4, 1, 0), 1.0);
        assert!((agg.always_cold_pct() - 200.0 / 3.0).abs() < 1e-9);
        assert!((agg.always_cold_pct_excluding_single() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = PolicyAggregate::new("p");
        let mut b = PolicyAggregate::new("p");
        let mut whole = PolicyAggregate::new("p");
        let rs = [result(10, 2, 5), result(3, 3, 9), result(7, 0, 1)];
        a.add(&rs[0], 1.0);
        b.add(&rs[1], 1.0);
        b.add(&rs[2], 1.0);
        for r in &rs {
            whole.add(r, 1.0);
        }
        a.merge(&b);
        assert_eq!(a.apps, whole.apps);
        assert_eq!(a.invocations, whole.invocations);
        assert_eq!(a.wasted_ms, whole.wasted_ms);
        let mut xs = a.per_app_cold_pct.clone();
        let mut ys = whole.per_app_cold_pct.clone();
        xs.sort_by(f64::total_cmp);
        ys.sort_by(f64::total_cmp);
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "different policies")]
    fn merge_rejects_mismatched_labels() {
        let mut a = PolicyAggregate::new("a");
        let b = PolicyAggregate::new("b");
        a.merge(&b);
    }

    #[test]
    fn normalized_waste() {
        let mut base = PolicyAggregate::new("base");
        base.add(&result(2, 1, 200), 1.0);
        let mut other = PolicyAggregate::new("other");
        other.add(&result(2, 1, 260), 1.0);
        assert!((other.normalized_waste_pct(&base) - 130.0).abs() < 1e-9);
        assert!((base.normalized_waste_pct(&base) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_points_reference_baseline() {
        let mut base = PolicyAggregate::new("fixed-10min");
        base.add(&result(4, 2, 100), 1.0);
        let mut h = PolicyAggregate::new("hybrid");
        h.add(&result(4, 1, 80), 1.0);
        let pts = pareto_points(&[base, h], "fixed-10min");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].normalized_waste_pct, 100.0);
        assert!((pts[1].normalized_waste_pct - 80.0).abs() < 1e-9);
        assert!(pts[1].cold_pct_p75 < pts[0].cold_pct_p75);
    }

    #[test]
    fn arima_shares() {
        let mut agg = PolicyAggregate::new("h");
        agg.add(
            &AppSimResult {
                invocations: 50,
                cold_starts: 5,
                arima_decisions: 2,
                used_arima: true,
                ..Default::default()
            },
            1.0,
        );
        agg.add(&result(50, 0, 0), 1.0);
        assert!((agg.arima_invocation_share_pct() - 2.0).abs() < 1e-9);
        assert!((agg.arima_app_share_pct() - 50.0).abs() < 1e-9);
    }
}
