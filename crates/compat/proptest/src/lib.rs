//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro over functions whose arguments are drawn from
//! *strategies* (`pat in strategy`), range strategies over integers and
//! floats, `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Each test runs `PROPTEST_CASES` random cases (default 64) from a
//! deterministic per-test seed (FNV-1a of the test name), so failures
//! reproduce exactly. No shrinking: a failing case panics with the
//! case number, and re-running deterministically reaches the same case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy abstraction: something that can generate values of its
/// associated type from an RNG.
pub mod strategy {
    use super::*;

    /// Generates random values for one test-case argument.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// A strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// Vectors of `element`-generated values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(64)
        .max(1)
}

/// FNV-1a hash of the test name: the deterministic per-test seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the RNG for one test case.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(name_seed(name) ^ ((case as u64) << 32 | 0x5EED))
}

/// Declares property tests: functions whose arguments are drawn from
/// strategies, run over many deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::cases();
            for __case in 0..__cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                let ($($pat,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
                );
                let mut __check = || -> Result<(), String> { $body Ok(()) };
                if let Err(msg) = __check() {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cases,
                        msg
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Sorting is idempotent.
        #[test]
        fn sort_idempotent(mut xs in prop::collection::vec(0u64..1000, 0..50)) {
            xs.sort_unstable();
            let once = xs.clone();
            xs.sort_unstable();
            prop_assert_eq!(once, xs);
        }

        /// Generated values respect their ranges.
        #[test]
        fn ranges_respected(x in 10u64..20, y in -5.0f64..5.0, n in 1usize..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y), "y = {y}");
            prop_assert!((1..=4).contains(&n));
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(crate::name_seed("abc"), crate::name_seed("abc"));
        assert_ne!(crate::name_seed("abc"), crate::name_seed("abd"));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
