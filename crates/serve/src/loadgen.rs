//! Open-loop, trace-driven load generator.
//!
//! Replays a synthetic `sitw_trace` workload against a running daemon:
//! every generated invocation becomes one `POST /invoke`, sent at its
//! trace time scaled by a speedup factor (or flat out when
//! [`LoadGenConfig::speedup`] is infinite). The generator is *open
//! loop*: when the server falls behind, requests are not throttled to
//! match — they queue — so sustained throughput and tail latency reflect
//! server capacity, not a closed feedback loop flattering it.
//!
//! Apps are assigned to connections round-robin by first appearance (an
//! app's requests must stay ordered, and the server requires per-app
//! timestamp monotonicity, so an app sticks to one connection — but the
//! dense assignment keeps all `--connections N` sockets busy at high
//! fan-in), and each connection pipelines up to a window of requests.
//! Latencies are recorded per request and reported as exact percentiles;
//! the summary's `max_live_conns=` line reports how many connections the
//! run actually drove (the reactor's high-fan-in smoke asserts it).
//!
//! **Multi-tenant replay** ([`LoadGenConfig::tenants`]): each app is
//! deterministically assigned to one of N tenants — optionally with
//! Zipf-skewed popularity (`--tenants N:zipf=s`, rank r weighing
//! `1/(r+1)^s`) — and every request carries the tenant: JSON bodies gain
//! a `"tenant":"tK"` member, SITW-BIN frames switch to v2 records with
//! the tenant id. Tenant names are `t0..tN-1`, wire ids `1..=N` (the
//! server's registration order). The summary reports per-tenant
//! throughput and verdict mix, including budget-eviction downgrades.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use sitw_stats::percentile_sorted;
use sitw_telemetry::{Log2Histogram, TRACE_MARK};
use sitw_trace::{app_invocations, build_population, PopulationConfig, TraceConfig, HOUR_MS};

use crate::wire::{self, BinReply, ServerFrameDecode};
use sitw_fleet::{fnv1a, mix64};

/// Which wire protocol the generator speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// One `POST /invoke` JSON request per invocation (pipelined).
    Json,
    /// SITW-BIN v1 frames of `batch` invocations each.
    Bin {
        /// Records per frame (clamped to `1..=`[`wire::MAX_BATCH`]).
        batch: usize,
    },
}

impl Proto {
    /// Parses a `--proto` argument: `json`, `bin`, or `bin:batch=N`.
    pub fn parse(s: &str) -> Result<Proto, String> {
        match s {
            "json" => Ok(Proto::Json),
            "bin" => Ok(Proto::Bin { batch: 16 }),
            _ => match s.strip_prefix("bin:batch=") {
                Some(n) => {
                    let batch: usize = n.parse().map_err(|_| format!("bad batch '{n}'"))?;
                    if batch == 0 || batch > wire::MAX_BATCH {
                        return Err(format!("batch must be in 1..={}", wire::MAX_BATCH));
                    }
                    Ok(Proto::Bin { batch })
                }
                None => Err(format!("unknown proto '{s}' (json | bin | bin:batch=N)")),
            },
        }
    }

    /// Human-readable label, e.g. `json` or `bin:batch=16`.
    pub fn label(&self) -> String {
        match self {
            Proto::Json => "json".into(),
            Proto::Bin { batch } => format!("bin:batch={batch}"),
        }
    }
}

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Applications in the synthetic population.
    pub apps: usize,
    /// Population / trace seed.
    pub seed: u64,
    /// Trace horizon in milliseconds.
    pub horizon_ms: u64,
    /// Per-app daily event cap (see [`TraceConfig`]).
    pub cap_per_day: f64,
    /// Trace-time acceleration: 60 ⇒ one trace hour replays in one
    /// minute. `f64::INFINITY` ⇒ replay as fast as the server accepts.
    pub speedup: f64,
    /// Parallel connections.
    pub connections: usize,
    /// In-flight invocations per connection (JSON: pipelined requests;
    /// BIN: records across in-flight frames).
    pub window: usize,
    /// Cap on total invocations sent (0 = no cap).
    pub max_events: usize,
    /// Wire protocol to speak.
    pub proto: Proto,
    /// Replay across this many tenants (`t0..tN-1`, wire ids `1..=N`);
    /// 0 = untenanted (default tenant only).
    pub tenants: usize,
    /// Zipf skew of the per-app tenant assignment (0 = uniform).
    pub zipf: f64,
    /// Tag every Nth request (JSON) or frame (SITW-BIN) with a client
    /// trace id — `X-Sitw-Trace` header / the v2 trace field — so its
    /// spans can be found end to end in `/debug/trace` output. 0 = off.
    /// Sampled ids and their RTTs land in the `--out` JSON report.
    pub trace_sample: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            apps: 500,
            seed: 42,
            horizon_ms: 24 * HOUR_MS,
            cap_per_day: 2_000.0,
            speedup: f64::INFINITY,
            connections: 2,
            window: 64,
            max_events: 0,
            proto: Proto::Json,
            tenants: 0,
            zipf: 0.0,
            trace_sample: 0,
        }
    }
}

/// Results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Requests sent.
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// Cold verdicts among `ok`.
    pub cold: u64,
    /// Warm verdicts among `ok`.
    pub warm: u64,
    /// Non-200 responses.
    pub errors: u64,
    /// Wall-clock duration of the replay.
    pub elapsed: Duration,
    /// `ok / elapsed`, decisions per second.
    pub throughput: f64,
    /// Exact client-observed latency percentiles in microseconds
    /// (p50, p95, p99) and the maximum.
    pub latency_us: LatencySummary,
    /// Client-observed RTT histogram in nanoseconds — the same
    /// mergeable log2-bucket type the server exports, so client and
    /// server distributions compare bucket-for-bucket.
    pub latency_hist: Log2Histogram,
    /// Eviction-downgraded cold verdicts among `ok` (budgeted tenants).
    pub evicted: u64,
    /// Admission-control rejections (HTTP 429 / `VB_THROTTLED` reply
    /// records from a router). Not counted in `ok` or `errors`: the
    /// invocation was refused by QoS, not served and not failed.
    pub throttled: u64,
    /// Per-tenant verdict mix, index k = tenant `tK` (empty when the
    /// replay is untenanted).
    pub per_tenant: Vec<TenantMix>,
    /// Connections actually driven concurrently (non-empty schedules;
    /// `--connections N` with fewer than N active apps drives fewer).
    pub max_live_conns: u64,
    /// `(trace_id, rtt_ns)` of every sampled request
    /// ([`LoadGenConfig::trace_sample`]); empty when sampling is off.
    pub traces: Vec<(u64, u64)>,
}

/// Verdict mix of one tenant in a multi-tenant replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantMix {
    /// 200 / verdict responses.
    pub ok: u64,
    /// Cold verdicts among `ok`.
    pub cold: u64,
    /// Eviction-downgraded colds among `cold`.
    pub evicted: u64,
    /// Admission-control rejections (429 / throttled reply records).
    pub throttled: u64,
    /// Errors (non-200 / out-of-order / error frames).
    pub errors: u64,
}

/// Exact latency percentiles over all requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LoadGenReport {
    /// One-line human-readable summary (plus one line per tenant in a
    /// multi-tenant replay: throughput share and verdict mix).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{} decisions in {:.2}s = {:.0}/s | cold {} ({:.1}%) warm {} evicted {} throttled {} \
             errors {} | latency µs p50 {:.0} p95 {:.0} p99 {:.0} max {:.0}",
            self.ok,
            self.elapsed.as_secs_f64(),
            self.throughput,
            self.cold,
            100.0 * self.cold as f64 / (self.ok.max(1)) as f64,
            self.warm,
            self.evicted,
            self.throttled,
            self.errors,
            self.latency_us.p50,
            self.latency_us.p95,
            self.latency_us.p99,
            self.latency_us.max,
        );
        for (k, t) in self.per_tenant.iter().enumerate() {
            let _ = write!(
                out,
                "\n  t{k}: {} decisions = {:.0}/s | cold {} ({:.1}%) evicted {} throttled {} \
                 errors {}",
                t.ok,
                t.ok as f64 / self.elapsed.as_secs_f64().max(1e-9),
                t.cold,
                100.0 * t.cold as f64 / (t.ok.max(1)) as f64,
                t.evicted,
                t.throttled,
                t.errors,
            );
        }
        let _ = write!(out, "\nmax_live_conns={}", self.max_live_conns);
        if !self.latency_hist.is_empty() {
            let h = &self.latency_hist;
            let q = |p: f64| h.quantile(p).unwrap_or(0.0) / 1_000.0;
            let _ = write!(
                out,
                "\nrtt histogram: {} samples, mean {:.0} µs, p50/p95/p99 ≈ {:.0}/{:.0}/{:.0} µs, \
                 max bucket ≤ {:.0} µs",
                h.count(),
                h.mean().unwrap_or(0.0) / 1_000.0,
                q(0.50),
                q(0.95),
                q(0.99),
                h.max_bound().unwrap_or(0) as f64 / 1_000.0,
            );
        }
        out
    }

    /// Machine-readable run summary (the `--out` file of `sitw-loadgen`):
    /// throughput, verdict mix, exact percentiles, and the full log2
    /// latency histogram as `[bucket_upper_ns, count]` pairs.
    pub fn to_json(&self, proto: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"proto\":\"{proto}\",\"sent\":{},\"ok\":{},\"cold\":{},\"warm\":{},\
             \"evicted\":{},\"throttled\":{},\"errors\":{},\"elapsed_s\":{:.6},\
             \"throughput\":{:.2},\
             \"cold_rate\":{:.6},\"latency_us\":{{\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1},\
             \"max\":{:.1}}},\"max_live_conns\":{}",
            self.sent,
            self.ok,
            self.cold,
            self.warm,
            self.evicted,
            self.throttled,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.throughput,
            self.cold as f64 / (self.ok.max(1)) as f64,
            self.latency_us.p50,
            self.latency_us.p95,
            self.latency_us.p99,
            self.latency_us.max,
            self.max_live_conns,
        );
        let h = &self.latency_hist;
        let _ = write!(
            out,
            ",\"latency_hist\":{{\"count\":{},\"sum_ns\":{},\"buckets\":[",
            h.count(),
            h.sum()
        );
        let mut first = true;
        for (i, &c) in h.buckets().iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[{},{c}]", Log2Histogram::bucket_upper(i));
        }
        out.push_str("]}");
        let _ = write!(out, ",\"per_tenant\":[");
        for (k, t) in self.per_tenant.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tenant\":\"t{k}\",\"ok\":{},\"cold\":{},\"evicted\":{},\"throttled\":{},\
                 \"errors\":{}}}",
                t.ok, t.cold, t.evicted, t.throttled, t.errors
            );
        }
        out.push(']');
        // Sampled trace ids in the same hex rendering `/debug/trace`
        // uses, so a report entry greps straight into trace output.
        let _ = write!(out, ",\"traces\":[");
        for (i, (id, rtt_ns)) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"trace\":\"{id:#018x}\",\"rtt_ns\":{rtt_ns}}}");
        }
        out.push_str("]}");
        out
    }
}

/// One scheduled request.
struct Event {
    ts: u64,
    app: u32,
    /// Wire tenant id (0 = default tenant, i.e. untenanted replay).
    tenant: u16,
}

/// Deterministically assigns an app to one of `n` tenants, rank-weighted
/// by Zipf skew `s` (0 = uniform): weight of tenant rank r is
/// `1/(r+1)^s`. Returns the wire id (`1..=n`).
fn tenant_of(app: u32, n: usize, s: f64) -> u16 {
    debug_assert!(n >= 1 && n <= u16::MAX as usize);
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    // Hash the app id (same name the wire carries) to a uniform variate.
    let h = mix64(fnv1a(app_name(app).as_bytes()));
    let mut u = ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64 * total;
    for (r, w) in weights.iter().enumerate() {
        if u < *w || r + 1 == n {
            return (r + 1) as u16;
        }
        u -= w;
    }
    1
}

/// Builds the merged, time-ordered schedule and partitions it across
/// connections by app.
fn build_schedules(cfg: &LoadGenConfig) -> Vec<Vec<Event>> {
    let population = build_population(&PopulationConfig {
        num_apps: cfg.apps,
        seed: cfg.seed,
    });
    let trace_cfg = TraceConfig {
        horizon_ms: cfg.horizon_ms,
        cap_per_day: cfg.cap_per_day,
        seed: cfg.seed ^ 0x10AD,
    };
    let mut merged: Vec<Event> = Vec::new();
    for app in &population.apps {
        let tenant = if cfg.tenants > 0 {
            tenant_of(app.id.0, cfg.tenants.min(u16::MAX as usize), cfg.zipf)
        } else {
            0
        };
        for ts in app_invocations(app, &trace_cfg) {
            merged.push(Event {
                ts,
                app: app.id.0,
                tenant,
            });
        }
    }
    // Stable global order; ties broken by app id for determinism.
    merged.sort_by_key(|e| (e.ts, e.app));
    if cfg.max_events > 0 {
        merged.truncate(cfg.max_events);
    }

    // Apps are assigned to connections round-robin in order of first
    // appearance (an app's requests must stay on one connection for
    // per-app ordering). The dense assignment replaces the old
    // `app_id % connections` partition, whose cost showed at high fan-in:
    // id-hash gaps left many connections empty and others hot, so
    // `--connections 256` neither opened 256 sockets nor spread load.
    // First-appearance order keeps *active* apps balanced for any N.
    let connections = cfg.connections.max(1);
    let mut schedules: Vec<Vec<Event>> = (0..connections).map(|_| Vec::new()).collect();
    let mut conn_of: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut next = 0usize;
    for event in merged {
        let conn = *conn_of.entry(event.app).or_insert_with(|| {
            let assigned = next;
            next = (next + 1) % connections;
            assigned
        });
        // Per-app ordering is preserved because an app always maps to
        // the same connection and the merged stream is time-ordered.
        schedules[conn].push(event);
    }
    schedules
}

/// Replays the configured workload against `addr` and reports.
pub fn run_loadgen(addr: SocketAddr, cfg: &LoadGenConfig) -> io::Result<LoadGenReport> {
    run_loadgen_cluster(&[addr], cfg)
}

/// Replays the configured workload across `targets` — connections are
/// assigned round-robin, so `--cluster A,B,C` spreads a replay over
/// several nodes (or routers) at once.
///
/// **Fail-fast:** the first connection error flips a shared abort flag;
/// every other connection stops within one pacing tick instead of
/// replaying its whole schedule against a dead peer, and the returned
/// error carries a per-node summary of which targets failed and why.
pub fn run_loadgen_cluster(
    targets: &[SocketAddr],
    cfg: &LoadGenConfig,
) -> io::Result<LoadGenReport> {
    if targets.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "no targets"));
    }
    let schedules = build_schedules(cfg);
    let max_live_conns = schedules.iter().filter(|s| !s.is_empty()).count() as u64;
    let node_of = |conn: usize| targets[conn % targets.len()];
    // Open every connection up front: `--connections N` is the
    // high-fan-in drive mode, so all N sockets must be concurrently
    // live before the replay starts (lazy per-thread connects let fast
    // connections finish before slow ones even open, understating the
    // server's true fan-in).
    let mut streams: Vec<Option<TcpStream>> = Vec::with_capacity(schedules.len());
    for (conn, schedule) in schedules.iter().enumerate() {
        streams.push(if schedule.is_empty() {
            None
        } else {
            let node = node_of(conn);
            let annotate = |e: io::Error| io::Error::new(e.kind(), format!("node {node}: {e}"));
            let stream = TcpStream::connect(node).map_err(annotate)?;
            stream.set_nodelay(true).map_err(annotate)?;
            Some(stream)
        });
    }
    // BIN v2 records carry registry-assigned tenant ids, which are only
    // 1..=N when t0..tN-1 were the first tenants registered — resolve
    // the real ids up front so other registration orders route
    // correctly, per target (each node assigns its own ids). (JSON
    // carries names and needs no mapping.)
    let tenant_ids: Vec<Vec<u16>> = if cfg.tenants > 0 && matches!(cfg.proto, Proto::Bin { .. }) {
        targets
            .iter()
            .map(|&t| resolve_tenant_ids(t, cfg.tenants))
            .collect::<io::Result<_>>()?
    } else {
        vec![Vec::new(); targets.len()]
    };
    let tenant_ids = &tenant_ids;
    let start_ts = schedules
        .iter()
        .filter_map(|s| s.first().map(|e| e.ts))
        .min()
        .unwrap_or(0);

    // The load generator is the client side of the wire: its whole
    // output (throughput, RTT percentiles) is wall-clock measurement.
    // sitw-lint: allow(clock-discipline)
    let started = Instant::now();
    let abort = AtomicBool::new(false);
    let abort = &abort;
    let mut results: Vec<ConnResult> = Vec::new();
    // Per-node failure tally: addr → (failed connections, first error).
    let mut failures: std::collections::BTreeMap<String, (u64, String)> =
        std::collections::BTreeMap::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (conn, (schedule, stream)) in schedules.iter().zip(streams).enumerate() {
            let Some(stream) = stream else { continue };
            let node = node_of(conn);
            let node_ids = &tenant_ids[conn % targets.len()];
            handles.push((
                node,
                scope.spawn(move || {
                    let result = match cfg.proto {
                        Proto::Json => drive_connection(
                            stream,
                            conn,
                            schedule,
                            start_ts,
                            cfg.speedup,
                            cfg.window,
                            cfg.tenants,
                            cfg.trace_sample,
                            started,
                            abort,
                        ),
                        Proto::Bin { batch } => drive_connection_bin(
                            stream,
                            conn,
                            schedule,
                            start_ts,
                            cfg.speedup,
                            cfg.window,
                            batch,
                            cfg.tenants,
                            node_ids,
                            cfg.trace_sample,
                            started,
                            abort,
                        ),
                    };
                    if result.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    result
                }),
            ));
        }
        for (node, handle) in handles {
            let failed = |msg: String, failures: &mut std::collections::BTreeMap<_, (u64, _)>| {
                let entry = failures
                    .entry(node.to_string())
                    .or_insert_with(|| (0, msg.clone()));
                entry.0 += 1;
            };
            match handle.join() {
                Ok(Ok(result)) => results.push(result),
                // An abort-interrupted connection is a follower, not a
                // cause: only genuine I/O failures name their node.
                Ok(Err(e)) if e.kind() == io::ErrorKind::Interrupted => {}
                Ok(Err(e)) => failed(e.to_string(), &mut failures),
                Err(_) => failed("loadgen worker panicked".into(), &mut failures),
            }
        }
    });
    if !failures.is_empty() {
        let detail: Vec<String> = failures
            .iter()
            .map(|(node, (n, e))| format!("{node}: {n} connection(s) failed ({e})"))
            .collect();
        return Err(io::Error::other(format!(
            "replay aborted; per-node errors: {}",
            detail.join("; ")
        )));
    }
    let elapsed = started.elapsed();

    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut cold = 0u64;
    let mut evicted = 0u64;
    let mut throttled = 0u64;
    let mut errors = 0u64;
    let mut per_tenant: Vec<TenantMix> = vec![TenantMix::default(); cfg.tenants];
    let mut latencies: Vec<f64> = Vec::new();
    let mut latency_hist = Log2Histogram::new();
    let mut traces: Vec<(u64, u64)> = Vec::new();
    for mut r in results {
        sent += r.sent;
        ok += r.ok;
        cold += r.cold;
        evicted += r.evicted;
        throttled += r.throttled;
        errors += r.errors;
        for (agg, t) in per_tenant.iter_mut().zip(&r.per_tenant) {
            agg.ok += t.ok;
            agg.cold += t.cold;
            agg.evicted += t.evicted;
            agg.throttled += t.throttled;
            agg.errors += t.errors;
        }
        latencies.append(&mut r.latencies_us);
        latency_hist.merge(&r.latency_ns);
        traces.append(&mut r.traces);
    }
    latencies.sort_by(f64::total_cmp);
    let lat = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            percentile_sorted(&latencies, p)
        }
    };
    Ok(LoadGenReport {
        sent,
        ok,
        cold,
        warm: ok - cold,
        errors,
        elapsed,
        throughput: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_us: LatencySummary {
            p50: lat(50.0),
            p95: lat(95.0),
            p99: lat(99.0),
            max: latencies.last().copied().unwrap_or(0.0),
        },
        latency_hist,
        evicted,
        throttled,
        per_tenant,
        max_live_conns,
        traces,
    })
}

struct ConnResult {
    sent: u64,
    ok: u64,
    cold: u64,
    evicted: u64,
    throttled: u64,
    errors: u64,
    /// Index k = tenant `tK` (wire id k + 1); empty when untenanted.
    per_tenant: Vec<TenantMix>,
    latencies_us: Vec<f64>,
    latency_ns: Log2Histogram,
    /// `(trace_id, rtt_ns)` of sampled requests on this connection.
    traces: Vec<(u64, u64)>,
}

impl ConnResult {
    fn new(capacity: usize, tenants: usize) -> ConnResult {
        ConnResult {
            sent: 0,
            ok: 0,
            cold: 0,
            evicted: 0,
            throttled: 0,
            errors: 0,
            per_tenant: vec![TenantMix::default(); tenants],
            latencies_us: Vec::with_capacity(capacity),
            latency_ns: Log2Histogram::new(),
            traces: Vec::new(),
        }
    }

    fn record_verdict(&mut self, tenant: u16, cold: bool, evicted: bool) {
        self.ok += 1;
        if cold {
            self.cold += 1;
        }
        if evicted {
            self.evicted += 1;
        }
        if tenant > 0 {
            if let Some(t) = self.per_tenant.get_mut(tenant as usize - 1) {
                t.ok += 1;
                if cold {
                    t.cold += 1;
                }
                if evicted {
                    t.evicted += 1;
                }
            }
        }
    }

    fn record_throttled(&mut self, tenant: u16) {
        self.throttled += 1;
        if tenant > 0 {
            if let Some(t) = self.per_tenant.get_mut(tenant as usize - 1) {
                t.throttled += 1;
            }
        }
    }

    fn record_error(&mut self, tenant: u16) {
        self.errors += 1;
        if tenant > 0 {
            if let Some(t) = self.per_tenant.get_mut(tenant as usize - 1) {
                t.errors += 1;
            }
        }
    }
}

/// Error used by a connection that stops because *another* connection
/// failed — distinguished from genuine failures in the per-node summary.
fn abort_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        "replay aborted: another connection failed",
    )
}

/// Sends one connection's schedule with pipelining; parses responses in
/// order (HTTP/1.1 guarantees response ordering per connection).
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    mut stream: TcpStream,
    conn: usize,
    schedule: &[Event],
    start_ts: u64,
    speedup: f64,
    window: usize,
    tenants: usize,
    trace_sample: usize,
    started: Instant,
    abort: &AtomicBool,
) -> io::Result<ConnResult> {
    let mut reader = ResponseReader::new(stream.try_clone()?);

    let window = window.max(1);
    let paced = speedup.is_finite() && speedup > 0.0;
    let mut result = ConnResult::new(schedule.len(), tenants);
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut in_flight: std::collections::VecDeque<(Instant, u16, Option<u64>)> =
        std::collections::VecDeque::with_capacity(window);

    let read_one = |reader: &mut ResponseReader,
                    in_flight: &mut std::collections::VecDeque<(Instant, u16, Option<u64>)>,
                    result: &mut ConnResult|
     -> io::Result<()> {
        let response = reader.read_response()?;
        let (sent_at, tenant, trace) = in_flight.pop_front().expect("response without request");
        let rtt_ns = sent_at.elapsed().as_nanos() as u64;
        result.latencies_us.push(rtt_ns as f64 / 1_000.0);
        result.latency_ns.record(rtt_ns);
        if let Some(id) = trace {
            result.traces.push((id, rtt_ns));
        }
        if response.status == 200 {
            result.record_verdict(tenant, response.cold, response.evicted);
        } else if response.status == 429 {
            result.record_throttled(tenant);
        } else {
            result.record_error(tenant);
        }
        Ok(())
    };

    for event in schedule {
        if abort.load(Ordering::Relaxed) {
            return Err(abort_error());
        }
        if paced {
            let target = Duration::from_secs_f64((event.ts - start_ts) as f64 / 1_000.0 / speedup);
            loop {
                let now = started.elapsed();
                if now >= target {
                    break;
                }
                if abort.load(Ordering::Relaxed) {
                    return Err(abort_error());
                }
                // Flush and settle outstanding responses before
                // sleeping: idle trace gaps are when responses drain, so
                // measured latency is the server's, not the pacing's.
                if !out.is_empty() {
                    stream.write_all(&out)?;
                    out.clear();
                }
                while !in_flight.is_empty() {
                    read_one(&mut reader, &mut in_flight, &mut result)?;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(2)));
            }
        }

        out.extend_from_slice(b"POST /invoke HTTP/1.1\r\n");
        // Every Nth request carries a client trace id the serving node
        // adopts as its span id (conn in the high half, sequence in the
        // low — unique fleet-wide, top bit = the trace mark).
        let trace = if trace_sample > 0 && result.sent.is_multiple_of(trace_sample as u64) {
            Some(TRACE_MARK | ((conn as u64) << 32) | (result.sent & 0xFFFF_FFFF))
        } else {
            None
        };
        if let Some(id) = trace {
            let _ = write!(out, "x-sitw-trace: {id:#018x}\r\n");
        }
        out.extend_from_slice(b"content-length: ");
        let body_len = invoke_body_len(event);
        crate::wire::push_u64(&mut out, body_len as u64);
        out.extend_from_slice(b"\r\n\r\n");
        write_invoke_body(&mut out, event);
        // sitw-lint: allow(clock-discipline)
        in_flight.push_back((Instant::now(), event.tenant, trace));
        result.sent += 1;

        if in_flight.len() >= window {
            stream.write_all(&out)?;
            out.clear();
            read_one(&mut reader, &mut in_flight, &mut result)?;
        }
    }
    stream.write_all(&out)?;
    out.clear();
    while !in_flight.is_empty() {
        read_one(&mut reader, &mut in_flight, &mut result)?;
    }
    Ok(result)
}

/// Sends one connection's schedule as SITW-BIN frames of `batch`
/// records, keeping up to `window` records in flight across frames.
/// Per-record latency is the latency of the frame that carried it.
#[allow(clippy::too_many_arguments)]
fn drive_connection_bin(
    mut stream: TcpStream,
    conn: usize,
    schedule: &[Event],
    start_ts: u64,
    speedup: f64,
    window: usize,
    batch: usize,
    tenants: usize,
    tenant_ids: &[u16],
    trace_sample: usize,
    started: Instant,
    abort: &AtomicBool,
) -> io::Result<ConnResult> {
    let mut reader = ResponseReader::new(stream.try_clone()?);

    let batch = batch.clamp(1, wire::MAX_BATCH);
    let window = window.max(batch);
    let paced = speedup.is_finite() && speedup > 0.0;
    let tenanted = tenants > 0;
    let mut result = ConnResult::new(schedule.len(), tenants);
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    // The frame under construction (app names owned until encoded).
    let mut building: Vec<(u16, String, u64)> = Vec::with_capacity(batch);
    // In-flight frames: when they were written, their records' tenants
    // (one entry per record, in frame order), and the frame's trace id
    // when it was sampled.
    let mut in_flight: std::collections::VecDeque<(Instant, Vec<u16>, Option<u64>)> =
        std::collections::VecDeque::new();
    let mut in_flight_records = 0usize;
    let mut frames_sent = 0u64;

    #[allow(clippy::too_many_arguments)]
    fn flush_frame(
        building: &mut Vec<(u16, String, u64)>,
        tenanted: bool,
        tenant_ids: &[u16],
        conn: usize,
        trace_sample: usize,
        frames_sent: &mut u64,
        out: &mut Vec<u8>,
        in_flight: &mut std::collections::VecDeque<(Instant, Vec<u16>, Option<u64>)>,
        in_flight_records: &mut usize,
    ) {
        if building.is_empty() {
            return;
        }
        // A frame is the wire unit of work, so sampling tags every Nth
        // *frame*; its trace id spans every record it carries. Traced
        // frames must speak v2 (the trace field is version-gated), so
        // an untenanted sampled frame encodes v2 with the default
        // tenant id rather than v1.
        let trace = if trace_sample > 0 && frames_sent.is_multiple_of(trace_sample as u64) {
            Some(TRACE_MARK | ((conn as u64) << 32) | (*frames_sent & 0xFFFF_FFFF))
        } else {
            None
        };
        *frames_sent += 1;
        let wire_id = |t: u16| {
            if tenanted {
                tenant_ids[t as usize - 1]
            } else {
                0
            }
        };
        match trace {
            Some(id) => {
                let records: Vec<(u16, &str, u64)> = building
                    .iter()
                    .map(|(t, a, ts)| (wire_id(*t), a.as_str(), *ts))
                    .collect();
                wire::encode_request_frame_v2_traced(out, &records, id);
            }
            None if tenanted => {
                // Map the logical tenant index (1-based `tK`) to the
                // wire id the server's registry assigned.
                let records: Vec<(u16, &str, u64)> = building
                    .iter()
                    .map(|(t, a, ts)| (wire_id(*t), a.as_str(), *ts))
                    .collect();
                wire::encode_request_frame_v2(out, &records);
            }
            None => {
                let records: Vec<(&str, u64)> = building
                    .iter()
                    .map(|(_, a, ts)| (a.as_str(), *ts))
                    .collect();
                wire::encode_request_frame(out, &records);
            }
        }
        let tenants_of_frame: Vec<u16> = building.iter().map(|(t, _, _)| *t).collect();
        *in_flight_records += tenants_of_frame.len();
        // sitw-lint: allow(clock-discipline)
        in_flight.push_back((Instant::now(), tenants_of_frame, trace));
        building.clear();
    }

    let read_one_frame =
        |reader: &mut ResponseReader,
         in_flight: &mut std::collections::VecDeque<(Instant, Vec<u16>, Option<u64>)>,
         in_flight_records: &mut usize,
         result: &mut ConnResult|
         -> io::Result<()> {
            let records = reader.read_bin_frame()?;
            let (sent_at, frame_tenants, trace) =
                in_flight.pop_front().expect("reply without frame");
            let count = frame_tenants.len();
            *in_flight_records -= count;
            let rtt_ns = sent_at.elapsed().as_nanos() as u64;
            let latency_us = rtt_ns as f64 / 1_000.0;
            result.latency_ns.record_n(rtt_ns, count as u64);
            if let Some(id) = trace {
                result.traces.push((id, rtt_ns));
            }
            match records {
                Some(records) => {
                    if records.len() != count {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("reply of {} records for frame of {count}", records.len()),
                        ));
                    }
                    for (r, tenant) in records.into_iter().zip(frame_tenants) {
                        result.latencies_us.push(latency_us);
                        match r {
                            BinReply::Verdict { cold, evicted, .. } => {
                                result.record_verdict(tenant, cold, evicted);
                            }
                            BinReply::Throttled => result.record_throttled(tenant),
                            BinReply::OutOfOrder { .. } => result.record_error(tenant),
                        }
                    }
                }
                None => {
                    // A typed error frame answers the whole request frame.
                    for tenant in frame_tenants {
                        result.latencies_us.push(latency_us);
                        result.record_error(tenant);
                    }
                }
            }
            Ok(())
        };

    for event in schedule {
        if abort.load(Ordering::Relaxed) {
            return Err(abort_error());
        }
        if paced {
            let target = Duration::from_secs_f64((event.ts - start_ts) as f64 / 1_000.0 / speedup);
            loop {
                let now = started.elapsed();
                if now >= target {
                    break;
                }
                if abort.load(Ordering::Relaxed) {
                    return Err(abort_error());
                }
                // Idle trace gaps: ship the partial frame and settle all
                // replies, so measured latency is the server's.
                flush_frame(
                    &mut building,
                    tenanted,
                    tenant_ids,
                    conn,
                    trace_sample,
                    &mut frames_sent,
                    &mut out,
                    &mut in_flight,
                    &mut in_flight_records,
                );
                if !out.is_empty() {
                    stream.write_all(&out)?;
                    out.clear();
                }
                while !in_flight.is_empty() {
                    read_one_frame(
                        &mut reader,
                        &mut in_flight,
                        &mut in_flight_records,
                        &mut result,
                    )?;
                }
                std::thread::sleep((target - now).min(Duration::from_millis(2)));
            }
        }

        building.push((event.tenant, app_name(event.app), event.ts));
        result.sent += 1;
        if building.len() >= batch {
            flush_frame(
                &mut building,
                tenanted,
                tenant_ids,
                conn,
                trace_sample,
                &mut frames_sent,
                &mut out,
                &mut in_flight,
                &mut in_flight_records,
            );
        }
        if in_flight_records + building.len() >= window {
            if !out.is_empty() {
                stream.write_all(&out)?;
                out.clear();
            }
            if !in_flight.is_empty() {
                read_one_frame(
                    &mut reader,
                    &mut in_flight,
                    &mut in_flight_records,
                    &mut result,
                )?;
            }
        }
    }
    flush_frame(
        &mut building,
        tenanted,
        tenant_ids,
        conn,
        trace_sample,
        &mut frames_sent,
        &mut out,
        &mut in_flight,
        &mut in_flight_records,
    );
    if !out.is_empty() {
        stream.write_all(&out)?;
        out.clear();
    }
    while !in_flight.is_empty() {
        read_one_frame(
            &mut reader,
            &mut in_flight,
            &mut in_flight_records,
            &mut result,
        )?;
    }
    Ok(result)
}

fn app_name(app: u32) -> String {
    format!("app-{app:06}")
}

/// Resolves the wire ids of tenants `t0..tN-1` against the server's
/// registry (`GET /admin/tenants`): index k → the id of tenant `tK`.
/// Errors when any expected tenant is missing, instead of silently
/// replaying into someone else's namespace.
fn resolve_tenant_ids(addr: SocketAddr, n: usize) -> io::Result<Vec<u16>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /admin/tenants HTTP/1.1\r\nconnection: close\r\n\r\n")?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or_default();
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut ids = Vec::with_capacity(n);
    for k in 0..n {
        let key = format!("\"name\":\"t{k}\"");
        let pos = body.find(&key).ok_or_else(|| {
            bad(format!(
                "tenant 't{k}' is not registered on the server \
                 (start it with --tenants {n} or matching --tenant flags)"
            ))
        })?;
        // Each listing object is {"id":N,"name":"...",...}: the id
        // immediately precedes the name.
        let prefix = &body[..pos];
        let id_pos = prefix
            .rfind("\"id\":")
            .ok_or_else(|| bad(format!("malformed tenant listing: {body}")))?;
        let id: u16 = prefix[id_pos + 5..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .map_err(|_| bad(format!("malformed tenant id in listing: {body}")))?;
        ids.push(id);
    }
    Ok(ids)
}

fn tenant_name(tenant: u16) -> String {
    debug_assert!(tenant > 0);
    format!("t{}", tenant - 1)
}

fn invoke_body_len(event: &Event) -> usize {
    // {"app":"app-XXXXXX","ts":N} [+ ,"tenant":"tK"]
    let ts_digits = if event.ts == 0 {
        1
    } else {
        (event.ts.ilog10() + 1) as usize
    };
    let tenant = if event.tenant > 0 {
        11 + tenant_name(event.tenant).len() + 1
    } else {
        0
    };
    8 + app_name(event.app).len() + 7 + ts_digits + 1 + tenant
}

fn write_invoke_body(out: &mut Vec<u8>, event: &Event) {
    out.extend_from_slice(b"{\"app\":\"");
    out.extend_from_slice(app_name(event.app).as_bytes());
    out.extend_from_slice(b"\",\"ts\":");
    crate::wire::push_u64(out, event.ts);
    if event.tenant > 0 {
        out.extend_from_slice(b",\"tenant\":\"");
        out.extend_from_slice(tenant_name(event.tenant).as_bytes());
        out.push(b'"');
    }
    out.push(b'}');
}

/// A minimal HTTP response.
struct Response {
    status: u16,
    cold: bool,
    evicted: bool,
}

/// Buffered response parser (headers + `Content-Length` body).
struct ResponseReader {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl ResponseReader {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::with_capacity(64 * 1024),
            start: 0,
        }
    }

    fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn fill(&mut self) -> io::Result<usize> {
        // Compact once the consumed prefix dominates.
        if self.start > 8 * 1024 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 32 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Reads one SITW-BIN server frame: `Some(records)` for a reply,
    /// `None` for a typed error frame (the caller counts its whole
    /// request frame as failed).
    fn read_bin_frame(&mut self) -> io::Result<Option<Vec<BinReply>>> {
        loop {
            match wire::decode_server_frame(&self.buf[self.start..]) {
                ServerFrameDecode::Reply { records, consumed } => {
                    self.start += consumed;
                    return Ok(Some(records));
                }
                ServerFrameDecode::Error { consumed, .. } => {
                    self.start += consumed;
                    return Ok(None);
                }
                // The generator never sends control frames or
                // replication pulls, so these mean a confused peer.
                ServerFrameDecode::Control { .. }
                | ServerFrameDecode::ReplChunk { .. }
                | ServerFrameDecode::ReplCommit { .. } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "unexpected control reply",
                    ));
                }
                ServerFrameDecode::Incomplete => {
                    self.fill()?;
                }
                ServerFrameDecode::Malformed(msg) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
                }
            }
        }
    }

    fn read_response(&mut self) -> io::Result<Response> {
        loop {
            let window = &self.buf[self.start..];
            if let Some(header_end) = window.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = std::str::from_utf8(&window[..header_end])
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 header"))?;
                let status: u16 = header
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
                let content_length: usize = header
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let total = header_end + 4 + content_length;
                while self.buffered() < total {
                    self.fill()?;
                }
                let body_start = self.start + header_end + 4;
                let body = &self.buf[body_start..body_start + content_length];
                let cold = find_subslice(body, b"\"verdict\":\"cold\"");
                let evicted = find_subslice(body, b"\"evicted\":true");
                self.start += total;
                return Ok(Response {
                    status,
                    cold,
                    evicted,
                });
            }
            self.fill()?;
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_partition_by_app_and_stay_ordered() {
        let cfg = LoadGenConfig {
            apps: 40,
            connections: 3,
            max_events: 5_000,
            ..LoadGenConfig::default()
        };
        let schedules = build_schedules(&cfg);
        assert_eq!(schedules.len(), 3);
        let total: usize = schedules.iter().map(|s| s.len()).sum();
        assert!(total > 0 && total <= 5_000);
        // Every app lives on exactly one connection (per-app ordering),
        // every connection stays time-ordered, and the round-robin
        // assignment leaves no connection empty when apps outnumber
        // connections.
        let mut owner: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (conn, schedule) in schedules.iter().enumerate() {
            assert!(!schedule.is_empty(), "connection {conn} got no apps");
            assert!(schedule.windows(2).all(|w| w[0].ts <= w[1].ts));
            for event in schedule {
                assert_eq!(*owner.entry(event.app).or_insert(conn), conn);
            }
        }
    }

    #[test]
    fn high_connection_counts_spread_apps_densely() {
        // The old `app_id % connections` partition left most of 64
        // connections empty for 40 apps with gappy ids; first-appearance
        // round-robin drives exactly min(apps, connections) sockets and
        // balances them.
        let cfg = LoadGenConfig {
            apps: 40,
            connections: 64,
            max_events: 4_000,
            ..LoadGenConfig::default()
        };
        let schedules = build_schedules(&cfg);
        assert_eq!(schedules.len(), 64);
        let driven = schedules.iter().filter(|s| !s.is_empty()).count();
        let distinct: std::collections::HashSet<u32> =
            schedules.iter().flatten().map(|e| e.app).collect();
        assert_eq!(
            driven,
            distinct.len().min(64),
            "one connection per active app"
        );
        assert!(driven > 16, "spread beyond the modulo partition's reach");

        // With more apps than connections, every connection is driven
        // and no connection hoards: spread stays within a factor of the
        // even share.
        let cfg = LoadGenConfig {
            apps: 300,
            connections: 16,
            max_events: 8_000,
            ..LoadGenConfig::default()
        };
        let schedules = build_schedules(&cfg);
        let sizes: Vec<usize> = schedules.iter().map(|s| s.len()).collect();
        assert!(sizes.iter().all(|&n| n > 0), "{sizes:?}");
        let mean = sizes.iter().sum::<usize>() / sizes.len();
        assert!(
            sizes.iter().all(|&n| n < mean * 4),
            "no hot connection: {sizes:?}"
        );
    }

    #[test]
    fn cluster_replay_fails_fast_with_per_node_summary() {
        // A peer that accepts and immediately drops every connection:
        // the moral equivalent of a node killed mid-replay. Before the
        // fail-fast fix this surfaced as a bare io::Error with no node
        // attribution (and siblings replayed their whole schedules
        // against the dead peer before the error was even reported).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming().take(4) {
                drop(stream);
            }
        });
        let cfg = LoadGenConfig {
            apps: 50,
            connections: 4,
            max_events: 2_000,
            ..LoadGenConfig::default()
        };
        let err = run_loadgen_cluster(&[addr], &cfg).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("per-node errors"), "{msg}");
        assert!(msg.contains(&addr.to_string()), "{msg}");
        accept.join().unwrap();
    }

    #[test]
    fn body_length_precomputation_matches() {
        for event in [
            Event {
                ts: 0,
                app: 0,
                tenant: 0,
            },
            Event {
                ts: 9,
                app: 1,
                tenant: 1,
            },
            Event {
                ts: 1_209_600_000,
                app: 999_999,
                tenant: 12,
            },
        ] {
            let mut body = Vec::new();
            write_invoke_body(&mut body, &event);
            assert_eq!(body.len(), invoke_body_len(&event), "{body:?}");
        }
    }

    #[test]
    fn tenant_assignment_is_deterministic_and_complete() {
        for (n, s) in [(1usize, 0.0), (4, 0.0), (4, 1.2), (7, 2.0)] {
            let mut seen = vec![0u64; n];
            for app in 0..2_000u32 {
                let t = tenant_of(app, n, s);
                assert!((1..=n as u16).contains(&t));
                assert_eq!(t, tenant_of(app, n, s), "deterministic");
                seen[t as usize - 1] += 1;
            }
            assert!(seen.iter().all(|&c| c > 0), "every tenant drawn: {seen:?}");
            if s > 0.0 && n > 1 {
                assert!(seen[0] > seen[n - 1], "zipf skew favours rank 0: {seen:?}");
            }
        }
    }

    #[test]
    fn tenanted_schedules_tag_every_event() {
        let cfg = LoadGenConfig {
            apps: 50,
            connections: 2,
            max_events: 2_000,
            tenants: 3,
            zipf: 1.0,
            ..LoadGenConfig::default()
        };
        for schedule in build_schedules(&cfg) {
            for event in schedule {
                assert!((1..=3).contains(&event.tenant));
            }
        }
    }

    #[test]
    fn proto_parse_forms() {
        assert_eq!(Proto::parse("json").unwrap(), Proto::Json);
        assert_eq!(Proto::parse("bin").unwrap(), Proto::Bin { batch: 16 });
        assert_eq!(
            Proto::parse("bin:batch=128").unwrap(),
            Proto::Bin { batch: 128 }
        );
        assert!(Proto::parse("bin:batch=0").is_err());
        assert!(Proto::parse(&format!("bin:batch={}", wire::MAX_BATCH + 1)).is_err());
        assert!(Proto::parse("grpc").is_err());
        assert_eq!(Proto::Bin { batch: 16 }.label(), "bin:batch=16");
    }

    #[test]
    fn find_subslice_works() {
        assert!(find_subslice(
            b"abc\"verdict\":\"cold\"x",
            b"\"verdict\":\"cold\""
        ));
        assert!(!find_subslice(
            b"\"verdict\":\"warm\"",
            b"\"verdict\":\"cold\""
        ));
    }
}
