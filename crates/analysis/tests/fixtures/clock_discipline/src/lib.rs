//! Seeded violation for the `clock-discipline` rule.

#![forbid(unsafe_code)]

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
