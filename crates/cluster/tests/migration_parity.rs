//! Satellite 4: migration/rebalance parity. A mixed-protocol
//! multi-tenant trace driven through a cluster is **bit-identical** to
//! [`ClusterSim`] — including a live migration of the budgeted tenant to
//! another node mid-replay. Every verdict (cold/warm, pre-warm load,
//! eviction downgrade, decision branch, both windows) and every QoS
//! throttle matches the offline model, and after the replay the
//! per-tenant ledger integrals summed across the nodes' control-frame
//! reports equal the model's ledgers exactly: migration moves state
//! bit-for-bit, it doesn't reset or double-count it.

mod common;

use std::net::SocketAddr;

use common::{http, start_node, BinClient, JsonClient};
use sitw_cluster::{
    control_roundtrip, ClusterOutcome, ClusterRing, ClusterSim, Router, RouterConfig, RouterTenant,
};
use sitw_core::PolicySpec;
use sitw_fleet::{footprint_mb, TenantId, TenantRegistry};
use sitw_serve::wire::{self, BinReply, ControlReply, ControlRequest, TenantUsage};
use sitw_trace::{app_invocations, build_population, PopulationConfig, TraceConfig, DAY_MS};

/// One observed cluster answer, protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Throttled,
    Served {
        cold: bool,
        prewarm_load: bool,
        evicted: bool,
        kind: &'static str,
        pre_warm_ms: u64,
        keep_alive_ms: u64,
    },
}

fn outcome_of_json(status: u16, body: &str) -> Outcome {
    if status == 429 {
        return Outcome::Throttled;
    }
    assert_eq!(status, 200, "{body}");
    let cold = body.contains("\"verdict\":\"cold\"");
    assert!(cold || body.contains("\"verdict\":\"warm\""), "{body}");
    let field = |name: &str| -> u64 {
        let key = format!("\"{name}\":");
        let rest = &body[body
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {body}"))
            + key.len()..];
        rest.chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let kind_key = "\"kind\":\"";
    let rest = &body[body.find(kind_key).unwrap() + kind_key.len()..];
    let kind = &rest[..rest.find('"').unwrap()];
    Outcome::Served {
        cold,
        prewarm_load: body.contains("\"prewarm_load\":true"),
        evicted: body.contains("\"evicted\":true"),
        kind: wire::kind_str(wire::kind_from_str(kind).unwrap()),
        pre_warm_ms: field("pre_warm_ms"),
        keep_alive_ms: field("keep_alive_ms"),
    }
}

fn outcome_of_bin(reply: &BinReply) -> Outcome {
    match reply {
        BinReply::Throttled => Outcome::Throttled,
        BinReply::Verdict {
            cold,
            prewarm_load,
            evicted,
            kind,
            pre_warm_ms,
            keep_alive_ms,
        } => Outcome::Served {
            cold: *cold,
            prewarm_load: *prewarm_load,
            evicted: *evicted,
            kind: wire::kind_str(*kind),
            pre_warm_ms: *pre_warm_ms as u64,
            keep_alive_ms: *keep_alive_ms as u64,
        },
        other => panic!("unexpected reply {other:?}"),
    }
}

fn outcome_of_sim(outcome: ClusterOutcome) -> Outcome {
    match outcome {
        ClusterOutcome::Throttled => Outcome::Throttled,
        ClusterOutcome::Served(v) => Outcome::Served {
            cold: v.cold,
            prewarm_load: v.prewarm_load,
            evicted: v.evicted,
            kind: wire::kind_str(v.kind),
            pre_warm_ms: v.windows.pre_warm_ms,
            keep_alive_ms: v.windows.keep_alive_ms,
        },
        ClusterOutcome::Rejected(e) => panic!("offline model rejected an event: {e:?}"),
    }
}

/// `(tenant name or None, wire tenant id, app, ts)`.
type Event = (Option<&'static str>, TenantId, String, u64);

/// Builds the merged trace: four tenant populations (default, an
/// unbudgeted hybrid tenant, the budgeted "metered" tenant that will
/// migrate, and a rate-limited one), time-ordered.
fn workload() -> (Vec<Event>, u64) {
    let tenant_of = |idx: usize| -> (Option<&'static str>, TenantId) {
        match idx % 4 {
            0 => (None, 0),
            1 => (Some("alpha"), 1),
            2 => (Some("metered"), 2),
            _ => (Some("limited"), 3),
        }
    };
    let population = build_population(&PopulationConfig {
        num_apps: 24,
        seed: 808,
    });
    let cfg = TraceConfig {
        horizon_ms: 2 * DAY_MS,
        cap_per_day: 100.0,
        seed: 17,
    };
    let mut merged: Vec<Event> = Vec::new();
    let mut metered_footprints: Vec<u64> = Vec::new();
    for (idx, app) in population.apps.iter().enumerate() {
        let (name, tid) = tenant_of(idx);
        let app_id = app.id.to_string();
        if tid == 2 {
            metered_footprints.push(footprint_mb("metered", &app_id));
        }
        for ts in app_invocations(app, &cfg) {
            merged.push((name, tid, app_id.clone(), ts));
        }
    }
    merged.sort_by(|a, b| (a.3, a.1, &a.2).cmp(&(b.3, b.1, &b.2)));
    assert!(merged.len() >= 800, "workload too small: {}", merged.len());
    metered_footprints.sort_unstable();
    assert!(metered_footprints.len() >= 2, "need several metered apps");
    // Budget fits any single app but never two of the biggest at once,
    // so warm overlap forces evictions.
    let budget = metered_footprints[metered_footprints.len() - 1] + 1;
    (merged, budget)
}

#[test]
fn migration_mid_replay_is_bit_identical_to_cluster_sim() {
    let (merged, metered_budget) = workload();

    // Online cluster: 3 nodes, the trace's tenants on the router.
    let nodes = [start_node(), start_node(), start_node()];
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
    let tenant_specs = [
        "alpha=hybrid".to_owned(),
        format!("metered=hybrid,budget={metered_budget}"),
        "limited=fixed:10,qos=bronze:rate=1:burst=2".to_owned(),
    ];
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        nodes: addrs.iter().map(|a| a.to_string()).collect(),
        tenants: tenant_specs
            .iter()
            .map(|t| RouterTenant::parse(t).expect("tenant spec"))
            .collect(),
        reconcile_ms: 0,
        ..RouterConfig::default()
    })
    .expect("router starts");

    // Offline model: admission composed with one fleet sim over the
    // union registry — no nodes, no placement.
    let mut registry = TenantRegistry::new(PolicySpec::fixed_minutes(10));
    for spec in &tenant_specs {
        let t = RouterTenant::parse(spec).unwrap();
        registry
            .register(&t.name, t.policy.clone(), t.budget_mb)
            .unwrap();
    }
    let qos: Vec<_> = tenant_specs
        .iter()
        .filter_map(|spec| {
            let t = RouterTenant::parse(spec).unwrap();
            t.qos.map(|q| (t.name, q))
        })
        .collect();
    let mut sim = ClusterSim::new(&registry, &qos);

    // Replay in alternating protocol blocks of 23, sequentially (one
    // in-flight decision — arrival order is the parity contract). At the
    // halfway event the budgeted tenant migrates to a node that doesn't
    // own it, mid-trace and mid-protocol-block.
    let metered_owner = ClusterRing::new(3).node_of_tenant("metered").unwrap();
    let migrate_to = (metered_owner + 1) % 3;
    let half = merged.len() / 2;
    let mut json = JsonClient::connect(router.addr());
    let mut bin = BinClient::connect(router.addr());
    let mut migrated = false;
    let mut use_json = true;
    let mut served = [0u64; 4];
    let mut i = 0;
    while i < merged.len() {
        let block_end = merged.len().min(i + 23);
        for (j, (name, tid, app, ts)) in merged[i..block_end].iter().enumerate() {
            if !migrated && i + j >= half {
                let (status, body) = http(
                    router.addr(),
                    "POST",
                    &format!("/admin/migrate?tenant=metered&to={migrate_to}"),
                    "",
                );
                assert_eq!(status, 200, "{body}");
                assert!(body.contains("\"epoch\":1"), "{body}");
                migrated = true;
            }
            let expected = outcome_of_sim(sim.step(*tid, app, *ts));
            let online = if use_json {
                let (status, body) = json.invoke(*name, app, *ts);
                outcome_of_json(status, &body)
            } else {
                let replies = bin.batch(&[(*tid, app.as_str(), *ts)]);
                outcome_of_bin(&replies[0])
            };
            assert_eq!(online, expected, "event {} ({name:?}, {app}, {ts})", i + j);
            if matches!(online, Outcome::Served { .. }) {
                served[*tid as usize] += 1;
            }
        }
        i = block_end;
        use_json = !use_json;
    }
    assert!(migrated, "the migration must fire mid-replay");

    // The trace must actually exercise the interesting paths.
    let sim_throttles: u64 = sim.throttled().iter().map(|(_, n)| n).sum();
    assert!(sim_throttles > 0, "the limited tenant must throttle");
    assert!(
        sim.ledger(2).unwrap().stats().evictions > 0,
        "the metered tenant must evict"
    );

    // Conservation: per named tenant, the ledger integrals summed over
    // the nodes' control-frame reports equal the offline model's ledger
    // exactly. (Named tenants live whole on one node; migration carries
    // evictions, idle integral, and the warm set bit-for-bit. The
    // default tenant is excluded: its ledger is sharded by design, and
    // per-shard idle integrals advance on per-shard arrivals.)
    let mut reports: Vec<Vec<TenantUsage>> = Vec::new();
    for addr in &addrs {
        match control_roundtrip(*addr, &ControlRequest::Report).unwrap() {
            ControlReply::Report(tenants) => reports.push(tenants),
            other => panic!("expected a report: {other:?}"),
        }
    }
    for (name, tid) in [("alpha", 1u16), ("metered", 2), ("limited", 3)] {
        let (mut warm_mb, mut evictions, mut idle_mb_ms, mut invocations) =
            (0u64, 0u64, 0u64, 0u64);
        for report in &reports {
            for t in report.iter().filter(|t| t.name == name) {
                warm_mb += t.warm_mb;
                evictions += t.evictions;
                idle_mb_ms += t.idle_mb_ms;
                invocations += t.invocations;
            }
        }
        let offline = sim.ledger(tid).unwrap().stats();
        assert_eq!(warm_mb, offline.warm_mb, "{name}: warm memory conserves");
        assert_eq!(evictions, offline.evictions, "{name}: evictions conserve");
        assert_eq!(
            idle_mb_ms, offline.idle_mb_ms,
            "{name}: idle integral conserves"
        );
        if name != "metered" {
            // The migrated tenant's served-count telemetry resets with
            // the move (it is not ledger state); the others must add up.
            assert_eq!(invocations, served[tid as usize], "{name}: served count");
        }
    }

    // The router's throttle counter matches the model's total, and the
    // reconciler pushes the budget to the *new* owner after migration.
    let (_, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert!(
        metrics.contains(&format!("sitw_router_throttled_total {sim_throttles}")),
        "{metrics}"
    );
    let (nodes_ok, pushes) = router.reconcile_now();
    assert_eq!(nodes_ok, 3);
    assert_eq!(pushes, 1, "one budgeted tenant");
    match control_roundtrip(addrs[migrate_to], &ControlRequest::Report).unwrap() {
        ControlReply::Report(tenants) => {
            let metered = tenants.iter().find(|t| t.name == "metered").unwrap();
            assert_eq!(metered.budget_mb, metered_budget, "budget follows the move");
        }
        other => panic!("expected a report: {other:?}"),
    }

    router.shutdown();
    for n in nodes {
        n.shutdown().unwrap();
    }
}
