//! Report formatting: aligned text tables and CSV emission.
//!
//! The figure-regeneration harness prints the same rows/series the paper
//! reports; this module keeps that output consistent across figures.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Builder for an aligned, monospace text table.
///
/// # Examples
///
/// ```
/// use sitw_stats::report::TextTable;
///
/// let mut t = TextTable::new(vec!["Trigger", "%Functions", "%Invocations"]);
/// t.row(vec!["HTTP".into(), "55.0".into(), "35.9".into()]);
/// let s = t.render();
/// assert!(s.contains("HTTP"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator, columns left-aligned and
    /// padded to the widest cell.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}");
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Escapes a CSV field (RFC 4180 quoting).
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serializes headers and rows as CSV text.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

/// Writes headers and rows as a CSV file, creating parent directories.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_csv(headers, rows))
}

/// Formats a float with `digits` decimal places, trimming to a compact
/// representation (`1.50` stays, `1.00` also stays — column alignment
/// matters more than byte count).
pub fn fnum(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "nan".to_owned()
    } else if x.is_infinite() {
        if x > 0.0 { "inf" } else { "-inf" }.to_owned()
    } else {
        format!("{x:.digits$}")
    }
}

/// Formats an `(value, cdf)` series as CSV rows.
pub fn series_rows(points: &[(f64, f64)], digits: usize) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|&(x, y)| vec![fnum(x, digits), fnum(y, 6)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["a", "longheader"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a       "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let rows = vec![vec!["1".to_owned(), "x,y".to_owned()]];
        let csv = to_csv(&["n", "label"], &rows);
        assert_eq!(csv, "n,label\n1,\"x,y\"\n");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("sitw_report_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/out.csv");
        write_csv(&path, &["a"], &[vec!["1".to_owned()]]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a\n1\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.5, 2), "1.50");
        assert_eq!(fnum(f64::NAN, 2), "nan");
        assert_eq!(fnum(f64::INFINITY, 2), "inf");
        assert_eq!(fnum(f64::NEG_INFINITY, 2), "-inf");
    }

    #[test]
    fn series_rows_shape() {
        let rows = series_rows(&[(1.0, 0.5), (2.0, 1.0)], 1);
        assert_eq!(rows[0], vec!["1.0".to_owned(), "0.500000".to_owned()]);
    }
}
