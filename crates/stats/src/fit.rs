//! Goodness-of-fit and series diagnostics.
//!
//! Used to validate that the synthetic generator reproduces the paper's
//! published distributions (Kolmogorov–Smirnov distance against the
//! log-normal and Burr fits) and to analyse inter-arrival-time series
//! (autocorrelation, used by the ARIMA order heuristics).

use crate::distributions::ContinuousDist;

/// Kolmogorov–Smirnov statistic between an empirical sample and a
/// reference distribution: `sup_x |F_n(x) − F(x)|`.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn ks_statistic<D: ContinuousDist>(samples: &[f64], dist: &D) -> f64 {
    assert!(!samples.is_empty(), "KS statistic of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Sample autocorrelation of `xs` at the given `lag`.
///
/// Uses the biased estimator (normalizing by the lag-0 autocovariance),
/// which is standard for ACF plots and guarantees values in `[-1, 1]`.
/// Returns 0 when the series is too short or has zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if denom <= 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    num / denom
}

/// Autocorrelation function values for lags `0..=max_lag`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag).map(|l| autocorrelation(xs, l)).collect()
}

/// Ordinary least squares for the simple model `y = a + b·x`.
///
/// Returns `(a, b)`; `None` if fewer than 2 points or `x` is degenerate.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

/// Pearson correlation coefficient; `None` when undefined.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Exponential, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ks_of_true_distribution_is_small() {
        let d = Exponential::new(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let samples = d.sample_n(&mut rng, 10_000);
        let ks = ks_statistic(&samples, &d);
        // 99% critical value for n=10k is about 1.63/sqrt(n) ≈ 0.0163.
        assert!(ks < 0.02, "ks {ks}");
    }

    #[test]
    fn ks_of_wrong_distribution_is_large() {
        let d = Exponential::new(1.0);
        let wrong = LogNormal::new(3.0, 0.2);
        let mut rng = StdRng::seed_from_u64(6);
        let samples = d.sample_n(&mut rng, 5_000);
        assert!(ks_statistic(&samples, &wrong) > 0.5);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let xs: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[], 0), 0.0);
        assert_eq!(autocorrelation(&[1.0], 0), 0.0);
        assert_eq!(autocorrelation(&[2.0, 2.0, 2.0], 1), 0.0); // zero variance
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0); // lag too large
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        let a = acf(&xs, 2);
        assert_eq!(a.len(), 3);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!(a.iter().all(|v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = linear_fit(&xs, &ys).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[5.0, 5.0, 5.0]).is_none());
    }
}
