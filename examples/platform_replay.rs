//! OpenWhisk-model platform replay — the §5.3 experiment: 68 mid-range
//! popularity applications, 8 hours, 18 invokers, fixed-10-minute
//! keep-alive versus the hybrid policy.
//!
//! Run with: `cargo run --release --example platform_replay`

#![forbid(unsafe_code)]

use serverless_in_the_wild::prelude::*;
use serverless_in_the_wild::trace::subset::{
    filter_by_weighted_exec, mid_popularity_subset, paper_mid_band,
};

fn main() {
    let population = build_population(&PopulationConfig {
        num_apps: 2_000,
        seed: 42,
    });
    let (lo, hi) = paper_mid_band();
    let interactive = filter_by_weighted_exec(&population, 2.0);
    let subset = mid_popularity_subset(&interactive, 68, lo, hi, 99);
    let trace = generate_trace(
        &subset,
        &TraceConfig {
            horizon_ms: 8 * HOUR_MS,
            cap_per_day: 5_000.0,
            seed: 3,
        },
    );
    println!(
        "replaying {} apps / {} invocations on an 18-invoker cluster…",
        subset.len(),
        trace.total_invocations()
    );

    let cfg = PlatformConfig::default();
    let fixed = run_platform(&trace, &cfg, || {
        Box::new(FixedKeepAlive::minutes(10).new_policy()) as Box<dyn AppPolicy>
    });
    let hybrid = run_platform(&trace, &cfg, || {
        Box::new(HybridConfig::default().new_policy()) as Box<dyn AppPolicy>
    });

    println!(
        "\n{:<28} {:>14} {:>14}",
        "metric", "fixed-10min", "hybrid-4h"
    );
    let row = |name: &str, a: f64, b: f64| println!("{name:<28} {a:>14.1} {b:>14.1}");
    row(
        "cold starts",
        fixed.cold_count() as f64,
        hybrid.cold_count() as f64,
    );
    row("avg exec (ms)", fixed.avg_exec_ms(), hybrid.avg_exec_ms());
    row(
        "p99 exec (ms)",
        fixed.exec_percentile_ms(99.0),
        hybrid.exec_percentile_ms(99.0),
    );
    row(
        "median start delay (ms)",
        fixed.start_delay_percentile_ms(50.0),
        hybrid.start_delay_percentile_ms(50.0),
    );
    row(
        "idle memory (GB·min)",
        fixed.total_idle_mb_ms() / 1024.0 / 60_000.0,
        hybrid.total_idle_mb_ms() / 1024.0 / 60_000.0,
    );
    let (fs, fe, fx) = fixed.lifecycle_totals();
    let (hs, he, hx) = hybrid.lifecycle_totals();
    println!(
        "{:<28} {:>14} {:>14}",
        "container starts/evict/expire",
        format!("{fs}/{fe}/{fx}"),
        format!("{hs}/{he}/{hx}")
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "pre-warm loads", fixed.prewarm_starts, hybrid.prewarm_starts
    );

    let mem_cut = 100.0 * (1.0 - hybrid.total_idle_mb_ms() / fixed.total_idle_mb_ms().max(1e-9));
    println!(
        "\nhybrid cut idle container memory by {mem_cut:.1}% \
         (paper's OpenWhisk deployment: 15.6%)"
    );
}
