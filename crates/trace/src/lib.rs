//! FaaS workload model and trace substrate for the Serverless-in-the-Wild
//! reproduction.
//!
//! The paper characterizes the full production workload of Azure
//! Functions and releases a sanitized trace; neither the production
//! telemetry nor scale is available here, so this crate provides the
//! documented substitution (see `DESIGN.md`):
//!
//! * a **synthetic population generator** ([`population`]) calibrated to
//!   every published distribution — functions per app (Figure 1), trigger
//!   mixes (Figures 2–3), daily-rate quantile anchors spanning 8 orders
//!   of magnitude (Figure 5), IAT-CV mixture (Figure 6), log-normal
//!   execution times (Figure 7), Burr memory (Figure 8);
//! * **arrival archetypes** ([`archetype`]) generating per-app invocation
//!   streams (timers, Poisson, diurnal, bursty, rare-periodic);
//! * a **trace generator** ([`generator`]) with per-app deterministic
//!   seeding, streaming or materialized;
//! * **AzurePublicDataset schema I/O** ([`schema`]) so the real released
//!   trace can be dropped in place of the synthetic one;
//! * **characterization analysis** ([`analysis`]) computing the data
//!   behind Figures 1–8 from any population/trace;
//! * **subset selection** ([`subset`]) reproducing the paper's §5.3
//!   "68 mid-range-popularity applications, 8 hours" experiment input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod archetype;
pub mod calibration;
pub mod generator;
pub mod model;
pub mod population;
pub mod schema;
pub mod subset;
pub mod time;

pub use archetype::{Archetype, TimerSpec};
pub use generator::{app_invocations, for_each_app, generate_trace, AppTrace, Trace, TraceConfig};
pub use model::{AppId, AppProfile, FunctionProfile, Population, TriggerType};
pub use population::{build_population, PopulationConfig};
pub use time::{TimeMs, DAY_MS, HOUR_MS, MINUTE_MS, SECOND_MS, WEEK_MS};
