//! Online (single-pass, O(1)-memory) statistical accumulators.
//!
//! The paper cites Welford's algorithm (its reference \[45\]) for tracking the coefficient of
//! variation of histogram bin counts efficiently (§4.2). The same
//! accumulator is used throughout the workload characterization to compute
//! the CV of per-application inter-arrival times (Figure 6).

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable single-pass computation of the running mean and the
/// sum of squared deviations (`m2`). Supports merging two accumulators
/// (Chan et al.'s parallel variant), which the simulator uses when
/// aggregating per-thread results.
///
/// # Examples
///
/// ```
/// use sitw_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); 0 when fewer than 1 sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Sample variance (divides by `n - 1`); 0 when fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation: population std divided by mean.
    ///
    /// Returns 0 for an empty accumulator and `f64::INFINITY` when the mean
    /// is 0 but the variance is not (all-zero data yields 0). This is the
    /// statistic Figure 6 plots per application and the representativeness
    /// gate of the hybrid policy computes over bin counts.
    pub fn cv(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let std = self.population_std();
        if self.mean.abs() < f64::EPSILON {
            if std < f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            std / self.mean
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let total_f = total as f64;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total_f;
        self.mean += delta * other.count as f64 / total_f;
        self.count = total;
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Streaming minimum / maximum / mean / count over `f64` observations.
///
/// Mirrors the shape of the Azure trace's per-window execution-time and
/// memory records (§3.1: "average, minimum, maximum, and count of samples").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMaxMean {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for MinMaxMean {
    fn default() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

impl MinMaxMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds `count` observations whose sum/min/max are given (aggregated
    /// window record, as in the trace schema).
    pub fn push_window(&mut self, count: u64, sum: f64, min: f64, max: f64) {
        if count == 0 {
            return;
        }
        self.count += count;
        self.sum += sum;
        if min < self.min {
            self.min = min;
        }
        if max > self.max {
            self.max = max;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MinMaxMean) {
        if other.count == 0 {
            return;
        }
        self.push_window(other.count, other.sum, other.min, other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, 2.5, 2.5, 3.0, 9.25, -4.0, 0.0, 100.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (mean, var) = naive_mean_var(&xs);
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.cv(), 0.0);
    }

    #[test]
    fn welford_single_sample() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.cv(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let (a, b) = xs.split_at(3);
        let mut wa = Welford::new();
        let mut wb = Welford::new();
        for &x in a {
            wa.push(x);
        }
        for &x in b {
            wb.push(x);
        }
        wa.merge(&wb);

        let mut seq = Welford::new();
        for &x in &xs {
            seq.push(x);
        }
        assert!((wa.mean() - seq.mean()).abs() < 1e-12);
        assert!((wa.population_variance() - seq.population_variance()).abs() < 1e-12);
        assert_eq!(wa.count(), seq.count());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(2.0);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);

        let mut empty = Welford::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn cv_periodic_is_zero_poisson_is_one_ish() {
        // Periodic arrivals: identical IATs, CV must be exactly 0.
        let mut w = Welford::new();
        for _ in 0..100 {
            w.push(60.0);
        }
        assert_eq!(w.cv(), 0.0);
    }

    #[test]
    fn cv_zero_mean_nonzero_var_is_infinite() {
        let mut w = Welford::new();
        w.push(-1.0);
        w.push(1.0);
        assert!(w.cv().is_infinite());
    }

    #[test]
    fn minmaxmean_basic() {
        let mut m = MinMaxMean::new();
        assert!(m.min().is_none());
        m.push(3.0);
        m.push(-1.0);
        m.push(10.0);
        assert_eq!(m.min(), Some(-1.0));
        assert_eq!(m.max(), Some(10.0));
        assert_eq!(m.mean(), Some(4.0));
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn minmaxmean_window_merge() {
        let mut a = MinMaxMean::new();
        a.push_window(45, 4500.0, 80.0, 130.0);
        let mut b = MinMaxMean::new();
        b.push(60.0);
        a.merge(&b);
        assert_eq!(a.count(), 46);
        assert_eq!(a.min(), Some(60.0));
        assert_eq!(a.max(), Some(130.0));
        assert!((a.mean().unwrap() - 4560.0 / 46.0).abs() < 1e-12);
    }
}
