//! Integration tests asserting the paper's qualitative headline claims
//! hold end-to-end on the synthetic workload: trace generation → policy →
//! simulator → metrics.

use serverless_in_the_wild::prelude::*;

fn workload() -> (Population, TraceConfig) {
    let population = build_population(&PopulationConfig {
        num_apps: 400,
        seed: 2024,
    });
    let cfg = TraceConfig {
        horizon_ms: 3 * DAY_MS,
        cap_per_day: 2_000.0,
        seed: 77,
    };
    (population, cfg)
}

#[test]
fn fixed_keep_alive_trades_colds_for_memory_monotonically() {
    let (population, cfg) = workload();
    let specs: Vec<PolicySpec> = [5u64, 10, 30, 60, 120]
        .iter()
        .map(|&m| PolicySpec::fixed_minutes(m))
        .collect();
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    for pair in aggs.windows(2) {
        assert!(
            pair[1].cold_starts <= pair[0].cold_starts,
            "longer keep-alive must not increase cold starts: {} vs {}",
            pair[1].label,
            pair[0].label
        );
        assert!(
            pair[1].wasted_ms >= pair[0].wasted_ms,
            "longer keep-alive must not decrease waste: {} vs {}",
            pair[1].label,
            pair[0].label
        );
    }
}

#[test]
fn hybrid_beats_fixed_ten_minutes_on_cold_starts() {
    // The headline claim (§5.2 / Figure 15): the 10-minute fixed policy
    // has a multiple of the hybrid policy's cold starts.
    let (population, cfg) = workload();
    let specs = vec![
        PolicySpec::fixed_minutes(10),
        PolicySpec::Hybrid(HybridConfig::default()),
    ];
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    let fixed = &aggs[0];
    let hybrid = &aggs[1];
    assert!(
        fixed.cold_starts as f64 > 1.5 * hybrid.cold_starts as f64,
        "fixed {} colds vs hybrid {}",
        fixed.cold_starts,
        hybrid.cold_starts
    );
    assert!(
        hybrid.cold_pct_percentile(75.0) < fixed.cold_pct_percentile(75.0),
        "p75 must improve"
    );
}

#[test]
fn hybrid_pareto_dominates_some_fixed_point() {
    // Figure 15: the hybrid frontier is strictly better than the fixed
    // frontier somewhere — find a (hybrid, fixed) pair where the hybrid
    // has both fewer p75 colds and less memory.
    let (population, cfg) = workload();
    let mut specs: Vec<PolicySpec> = [10u64, 20, 30, 45, 60, 90, 120]
        .iter()
        .map(|&m| PolicySpec::fixed_minutes(m))
        .collect();
    for hours in [1usize, 2, 4] {
        specs.push(PolicySpec::Hybrid(HybridConfig::with_range_hours(hours)));
    }
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    let (fixed, hybrid) = aggs.split_at(7);
    let dominated = hybrid.iter().any(|h| {
        fixed.iter().any(|f| {
            h.cold_pct_percentile(75.0) < f.cold_pct_percentile(75.0) && h.wasted_ms < f.wasted_ms
        })
    });
    assert!(dominated, "no hybrid point dominates any fixed point");
}

#[test]
fn arima_halves_always_cold_share() {
    // Figure 19: the ARIMA path cuts the share of always-cold apps
    // substantially versus the same policy without it. Needs the paper's
    // full week: rare apps with 18–36 h periods only accumulate enough
    // idle-time history for a forecast over several days.
    let (population, _) = workload();
    let cfg = TraceConfig {
        horizon_ms: WEEK_MS,
        cap_per_day: 1_000.0,
        seed: 77,
    };
    let specs = vec![
        PolicySpec::Hybrid(HybridConfig::default().without_arima()),
        PolicySpec::Hybrid(HybridConfig::default()),
    ];
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    let noarima = aggs[0].always_cold_pct_excluding_single();
    let full = aggs[1].always_cold_pct_excluding_single();
    assert!(
        full < 0.7 * noarima,
        "ARIMA should cut always-cold apps: {noarima:.2}% -> {full:.2}%"
    );
    assert!(aggs[1].apps_used_arima > 0);
    assert_eq!(aggs[0].apps_used_arima, 0);
}

#[test]
fn cutoffs_cut_memory_without_hurting_colds_much() {
    // Figure 16: [5,99] saves memory versus [0,100] at nearly unchanged
    // cold starts.
    let (population, cfg) = workload();
    let specs = vec![
        PolicySpec::Hybrid(HybridConfig::default().with_cutoffs(0.0, 100.0)),
        PolicySpec::Hybrid(HybridConfig::default().with_cutoffs(5.0, 99.0)),
    ];
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    let wide = &aggs[0];
    let tuned = &aggs[1];
    assert!(
        tuned.wasted_ms < wide.wasted_ms,
        "cutoffs must save memory: {} vs {}",
        tuned.wasted_ms,
        wide.wasted_ms
    );
    let wide_p75 = wide.cold_pct_percentile(75.0);
    let tuned_p75 = tuned.cold_pct_percentile(75.0);
    assert!(
        tuned_p75 <= wide_p75 + 5.0,
        "cold starts should not degrade noticeably: {wide_p75:.1} -> {tuned_p75:.1}"
    );
}

#[test]
fn pre_warming_reduces_waste() {
    // Figure 17: unload + pre-warm wastes less memory than keep-loaded
    // with the same tail cutoff, at a small cold-start cost.
    let (population, cfg) = workload();
    let specs = vec![
        PolicySpec::Hybrid(HybridConfig::default().without_pre_warming()),
        PolicySpec::Hybrid(HybridConfig::default()),
    ];
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    let no_pw = &aggs[0];
    let pw = &aggs[1];
    assert!(
        pw.wasted_ms <= no_pw.wasted_ms,
        "pre-warming must not increase waste: {} vs {}",
        pw.wasted_ms,
        no_pw.wasted_ms
    );
}

#[test]
fn no_unloading_is_the_cold_start_lower_bound() {
    let (population, cfg) = workload();
    let specs = vec![
        PolicySpec::NoUnloading,
        PolicySpec::fixed_minutes(120),
        PolicySpec::Hybrid(HybridConfig::default()),
    ];
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    let nu = &aggs[0];
    assert_eq!(nu.cold_starts, nu.apps, "exactly one cold per app");
    for other in &aggs[1..] {
        assert!(nu.cold_starts <= other.cold_starts);
        assert!(nu.wasted_ms >= other.wasted_ms, "{}", other.label);
    }
}

#[test]
fn higher_cv_threshold_is_more_conservative() {
    // Figure 18: raising the CV threshold routes more apps to the
    // conservative standard keep-alive — fewer colds, more memory.
    let (population, cfg) = workload();
    let specs = vec![
        PolicySpec::Hybrid(HybridConfig::default().with_cv_threshold(0.0)),
        PolicySpec::Hybrid(HybridConfig::default().with_cv_threshold(10.0)),
    ];
    let aggs = run_sweep(&population, &cfg, &specs, 4);
    let cv0 = &aggs[0];
    let cv10 = &aggs[1];
    assert!(
        cv10.cold_starts <= cv0.cold_starts,
        "cv10 {} vs cv0 {}",
        cv10.cold_starts,
        cv0.cold_starts
    );
    assert!(cv10.wasted_ms >= cv0.wasted_ms);
}
