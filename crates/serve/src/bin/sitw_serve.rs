//! The `sitw-serve` daemon.
//!
//! ```text
//! sitw-serve [--addr 127.0.0.1:7071] [--shards 4] [--policy hybrid]
//!            [--reactor-threads 2] [--idle-timeout-ms 10000]
//!            [--tenant NAME=POLICY[,budget=MB]]... [--tenants N]
//!            [--tenants-file PATH]
//!            [--snapshot PATH] [--restore PATH] [--no-telemetry]
//!            [--follow PRIMARY_ADDR] [--serve-addr HOST:PORT]
//!            [--repl-interval-ms 100] [--auto-promote-ms N]
//! ```
//!
//! `--no-telemetry` disables the flight recorder and per-stage latency
//! histograms (`/metrics` keeps its throughput counters; the
//! `/debug/*` endpoints come back empty). The default-on overhead is a
//! few clock reads per request; disable only to measure it.
//!
//! `--reactor-threads` sizes the epoll event-loop pool that multiplexes
//! every client connection (a handful of threads serves thousands of
//! mostly idle keep-alive connections; `--shards` sets decision
//! throughput). `--idle-timeout-ms` bounds how long a *half-received*
//! message may stall before the connection is dropped (slowloris
//! defense); fully idle keep-alive connections are never timed out.
//!
//! Policies: `hybrid` (paper defaults), `hybrid:<hours>h` (histogram
//! range), `fixed:<minutes>` (fixed keep-alive), `no-unloading`, and
//! `production` — the §6 production-manager scheme (daily histograms,
//! two-week retention, recency-weighted aggregation, pre-warms 90 s
//! early, hourly backup accounting). Variants: `production:<days>d`
//! (retention), `production:<decay>` (per-day exponential decay, e.g.
//! `production:0.5`), `production:uniform` (no recency weighting).
//!
//! Fleet mode: `--tenant acme=hybrid,budget=4096` registers a tenant
//! with its own policy and keep-alive memory budget (MB; omit for
//! unlimited); repeatable. `--tenants N` is shorthand for N tenants
//! `t0..tN-1` under the global policy (matching `sitw-loadgen
//! --tenants N`). `--tenants-file` reads `tenant <name> <policy>
//! [budget <MB>]` lines. More tenants can be added at runtime via
//! `POST /admin/tenants`.
//!
//! Follower mode: `--follow PRIMARY_ADDR` starts a warm standby instead
//! of a serving daemon — no shards, no decisions; it pulls the primary's
//! replication stream every `--repl-interval-ms` and answers `/healthz`
//! (with replication lag), `/metrics`, `/debug/events`,
//! `POST /admin/promote`, and `POST /admin/shutdown` on `--addr`.
//! Promotion starts a full server on `--serve-addr` (default port 0;
//! the promote response reports the bound address) restored from the
//! replicated state. `--auto-promote-ms N` additionally promotes
//! without an operator once the primary has been unreachable for N ms.
//! The policy/tenant flags describe the *primary's* configuration so
//! the promoted server restores into matching shards.
//!
//! The daemon runs until `POST /admin/shutdown`; with `--snapshot` it
//! writes its final state there on the way out (and on every
//! `POST /admin/snapshot`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::exit;

use sitw_fleet::registry::{parse_tenant_arg, parse_tenants_file};
use sitw_serve::{FollowConfig, Follower, ServeConfig, Server, TenantConfig};
use sitw_sim::PolicySpec;

/// The CLI policy grammar is [`PolicySpec::parse`] — one grammar for
/// `--policy`, `--tenant`, tenants files, admin bodies, and snapshots.
fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    PolicySpec::parse(s)
}

fn usage() -> ! {
    eprintln!(
        "usage: sitw-serve [--addr HOST:PORT] [--shards N] \
         [--reactor-threads N] [--idle-timeout-ms N] \
         [--policy hybrid|hybrid:<h>h|fixed:<min>|no-unloading|\
         production[:<days>d|:<decay>|:uniform]] \
         [--tenant NAME=POLICY[,budget=MB]]... [--tenants N] \
         [--tenants-file PATH] [--snapshot PATH] [--restore PATH] \
         [--no-telemetry] [--follow PRIMARY_ADDR] [--serve-addr HOST:PORT] \
         [--repl-interval-ms N] [--auto-promote-ms N]"
    );
    exit(2)
}

fn main() {
    let mut cfg = ServeConfig::default();
    // `--tenants N` expands after parsing so it picks up `--policy`
    // regardless of flag order.
    let mut tenants_shorthand = 0usize;
    let mut follow_primary: Option<String> = None;
    let mut serve_addr = "127.0.0.1:0".to_owned();
    let mut repl_interval = std::time::Duration::from_millis(100);
    let mut auto_promote: Option<std::time::Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--shards" => {
                cfg.shards = value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--reactor-threads" => {
                cfg.reactor_threads = value("--reactor-threads")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value("--idle-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                cfg.idle_timeout = std::time::Duration::from_millis(ms);
            }
            "--policy" => {
                let spec = value("--policy");
                match parse_policy(&spec) {
                    Ok(p) => cfg.policy = p,
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--tenant" => {
                let arg = value("--tenant");
                match parse_tenant_arg(&arg) {
                    Ok((name, policy, budget_mb)) => cfg.tenants.push(TenantConfig {
                        name,
                        policy,
                        budget_mb,
                    }),
                    Err(e) => {
                        eprintln!("{e}");
                        usage();
                    }
                }
            }
            "--tenants" => {
                tenants_shorthand = value("--tenants").parse().unwrap_or_else(|_| usage());
            }
            "--tenants-file" => {
                let path = value("--tenants-file");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read '{path}': {e}");
                    exit(1);
                });
                match parse_tenants_file(&text) {
                    Ok(entries) => {
                        for (name, policy, budget_mb) in entries {
                            cfg.tenants.push(TenantConfig {
                                name,
                                policy,
                                budget_mb,
                            });
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        exit(1);
                    }
                }
            }
            "--snapshot" => cfg.snapshot_path = Some(PathBuf::from(value("--snapshot"))),
            "--restore" => cfg.restore_path = Some(PathBuf::from(value("--restore"))),
            "--no-telemetry" => cfg.telemetry = false,
            "--follow" => follow_primary = Some(value("--follow")),
            "--serve-addr" => serve_addr = value("--serve-addr"),
            "--repl-interval-ms" => {
                let ms: u64 = value("--repl-interval-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                repl_interval = std::time::Duration::from_millis(ms);
            }
            "--auto-promote-ms" => {
                let ms: u64 = value("--auto-promote-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                auto_promote = Some(std::time::Duration::from_millis(ms));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }

    for k in 0..tenants_shorthand {
        cfg.tenants.push(TenantConfig {
            name: format!("t{k}"),
            policy: cfg.policy.clone(),
            budget_mb: 0,
        });
    }

    if let Some(primary) = follow_primary {
        run_follower(cfg, primary, serve_addr, repl_interval, auto_promote);
        return;
    }

    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            exit(1);
        }
    };
    println!(
        "sitw-serve listening on {} | policy {} | {} shards | {} reactor thread(s) | {} tenant(s){}",
        server.addr(),
        cfg.policy.label(),
        cfg.shards,
        cfg.reactor_threads,
        cfg.tenants.len() + 1,
        cfg.snapshot_path
            .as_ref()
            .map(|p| format!(" | snapshot {}", p.display()))
            .unwrap_or_default()
    );
    for t in &cfg.tenants {
        println!(
            "  tenant {} | policy {} | budget {}",
            t.name,
            t.policy.label(),
            if t.budget_mb == 0 {
                "unlimited".to_owned()
            } else {
                format!("{} MB", t.budget_mb)
            }
        );
    }
    println!(
        "endpoints: POST /invoke, GET /metrics, GET /healthz, \
         GET /debug/trace, GET /debug/threads, \
         GET|POST /admin/tenants, POST /admin/snapshot, POST /admin/shutdown"
    );

    server.wait();
    match server.shutdown() {
        Ok(snapshot) => {
            println!("stopped; {} apps in final state", snapshot.apps.len());
        }
        Err(e) => {
            eprintln!("shutdown error: {e}");
            exit(1);
        }
    }
}

/// Warm-standby mode: the parsed `ServeConfig` describes the primary's
/// shape (policy, shards, tenants) and doubles as the promotion
/// template; only its bind address moves to `--serve-addr`.
fn run_follower(
    cfg: ServeConfig,
    primary: String,
    serve_addr: String,
    pull_interval: std::time::Duration,
    auto_promote_after: Option<std::time::Duration>,
) {
    let follow_cfg = FollowConfig {
        addr: cfg.addr.clone(),
        primary_addr: primary,
        pull_interval,
        auto_promote_after,
        serve: ServeConfig {
            addr: serve_addr,
            ..cfg
        },
        ..FollowConfig::default()
    };
    let follower = match Follower::start(follow_cfg.clone()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("failed to start follower: {e}");
            exit(1);
        }
    };
    println!(
        "sitw-serve following {} | control on {} | pull every {}ms{}",
        follow_cfg.primary_addr,
        follower.addr(),
        follow_cfg.pull_interval.as_millis(),
        follow_cfg
            .auto_promote_after
            .map(|d| format!(" | auto-promote after {}ms", d.as_millis()))
            .unwrap_or_default()
    );
    println!(
        "endpoints: GET /healthz, GET /metrics, GET /debug/events, \
         POST /admin/promote, POST /admin/shutdown"
    );
    follower.wait();
    match follower.shutdown() {
        Ok(snapshot) => {
            println!(
                "stopped; {} apps in replica",
                snapshot.map_or(0, |s| s.apps.len())
            );
        }
        Err(e) => {
            eprintln!("shutdown error: {e}");
            exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_policy_production_variants() {
        assert_eq!(
            parse_policy("production").unwrap().label(),
            "production-240m-14d[5,99]exp0.85"
        );
        assert_eq!(
            parse_policy("production:7d").unwrap().label(),
            "production-240m-7d[5,99]exp0.85"
        );
        assert_eq!(
            parse_policy("production:0.5").unwrap().label(),
            "production-240m-14d[5,99]exp0.5"
        );
        assert_eq!(
            parse_policy("production:uniform").unwrap().label(),
            "production-240m-14d[5,99]uni"
        );
        assert!(parse_policy("production:nope").is_err());
        assert!(parse_policy("production:1.5").is_err());
        assert!(parse_policy("production:0").is_err());
        assert!(
            parse_policy("production:0d").is_err(),
            "zero retention would never learn"
        );
    }

    #[test]
    fn parse_policy_existing_forms_unchanged() {
        assert_eq!(
            parse_policy("hybrid").unwrap().label(),
            "hybrid-4h[5,99]cv2"
        );
        assert_eq!(parse_policy("fixed:10").unwrap().label(), "fixed-10min");
        assert_eq!(
            parse_policy("no-unloading").unwrap().label(),
            "no-unloading"
        );
        assert!(parse_policy("bogus").is_err());
    }
}
