//! Population sampling: builds application/function profiles whose
//! aggregate statistics reproduce the paper's characterization (Figures
//! 1–3, 5–8).
//!
//! Sampling order per application:
//!
//! 1. daily invocation rate from the Figure 5(a) quantile anchors;
//! 2. trigger combination from the Figure 3(b) table, tilted by rate band
//!    (hot apps skew to Event/Queue, cold apps to HTTP/Timer — this is
//!    what makes Event triggers 2.2% of functions but ~25% of invocations
//!    as in Figure 2);
//! 3. function count from the Figure 1 anchors, trigger per function;
//! 4. an arrival archetype consistent with the trigger mix (§3.3);
//! 5. execution-time and memory profiles from the published fits
//!    (Figures 7 and 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sitw_stats::distributions::{Burr, ContinuousDist, LogNormal};

use crate::archetype::{Archetype, TimerSpec};
use crate::calibration::{
    self, app_daily_rate_quantiles, combo_rate_tilt, combo_table, functions_per_app_quantiles,
    parse_combo, trigger_exec_scale, TIMER_PERIODS_MIN,
};
use crate::model::{AppId, AppProfile, FunctionProfile, Population, TriggerType};
use crate::time::{HOUR_MS, MINUTE_MS};

/// Configuration for [`build_population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationConfig {
    /// Number of applications to generate.
    pub num_apps: usize,
    /// RNG seed; identical configs produce identical populations.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            num_apps: 4000,
            seed: 0xA22E,
        }
    }
}

/// Within-combo weights for assigning triggers to an app's *additional*
/// functions (each combo member already appears once). Tuned so the
/// global function mix lands on Figure 2: HTTP-heavy, timers damped
/// (timer apps are mostly small), orchestration boosted (durable apps
/// consist mostly of orchestrated functions).
fn function_trigger_weight(t: TriggerType) -> f64 {
    match t {
        TriggerType::Http => 55.0,
        TriggerType::Queue => 15.2,
        TriggerType::Timer => 6.0,
        TriggerType::Orchestration => 45.0,
        TriggerType::Storage => 2.8,
        TriggerType::Event => 2.2,
        TriggerType::Others => 2.2,
    }
}

/// Relative invocation weight of a function by trigger; Event/Queue
/// functions carry disproportionally many invocations (Figure 2).
fn invocation_weight_multiplier(t: TriggerType) -> f64 {
    match t {
        TriggerType::Event => 6.0,
        TriggerType::Queue => 6.0,
        TriggerType::Orchestration => 0.4,
        _ => 1.0,
    }
}

/// Builds a deterministic population of application profiles.
pub fn build_population(cfg: &PopulationConfig) -> Population {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rate_dist = app_daily_rate_quantiles();
    let funcs_dist = functions_per_app_quantiles();
    let combos = combo_table();
    let exec_dist = LogNormal::execution_time_fit();
    let mem_dist = Burr::memory_fit();

    let apps = (0..cfg.num_apps)
        .map(|i| {
            build_app(
                AppId(i as u32),
                &mut rng,
                &rate_dist,
                &funcs_dist,
                &combos,
                &exec_dist,
                &mem_dist,
            )
        })
        .collect();
    Population { apps }
}

fn build_app(
    id: AppId,
    rng: &mut StdRng,
    rate_dist: &impl ContinuousDist,
    funcs_dist: &impl ContinuousDist,
    combos: &[(String, f64)],
    exec_dist: &LogNormal,
    mem_dist: &Burr,
) -> AppProfile {
    // 1. Daily rate.
    let daily_rate = rate_dist.sample(rng);

    // 2. Function count first: an app cannot exhibit more trigger types
    //    than functions, so the combination is sampled conditioned on it.
    let mut n_funcs = (funcs_dist.sample(rng).round() as usize).clamp(1, 2000);

    // 3. Trigger combination, tilted by rate band and restricted to
    //    combinations that fit in `n_funcs` functions.
    let combo_key = sample_combo(rng, combos, daily_rate, n_funcs);
    let combo = parse_combo(&combo_key);

    // Durable orchestrations fan out into many activity functions, which
    // is how Orchestration reaches ~7% of functions (Figure 2) from ~3%
    // of apps (Figure 3(a)).
    if combo.contains(&TriggerType::Orchestration) {
        n_funcs = (n_funcs * 3).clamp(combo.len().max(3), 2000);
    }

    // Assign triggers: each combo member appears at least once; remaining
    // functions draw from the combo weighted by the global function mix.
    let mut triggers: Vec<TriggerType> = combo.clone();
    let weights: Vec<f64> = combo.iter().map(|&t| function_trigger_weight(t)).collect();
    for _ in combo.len()..n_funcs {
        triggers.push(combo[weighted_index(rng, &weights)]);
    }
    shuffle(rng, &mut triggers);

    // 4. Archetype and per-function invocation shares.
    let has_timer = triggers.contains(&TriggerType::Timer);
    let (archetype, shares, actual_rate) = if has_timer {
        timer_archetype(rng, &triggers, daily_rate)
    } else {
        let shares = non_timer_shares(rng, &triggers);
        (non_timer_archetype(rng, daily_rate), shares, daily_rate)
    };

    // 5. Execution times and memory.
    let functions: Vec<FunctionProfile> = triggers
        .iter()
        .zip(shares)
        .map(|(&trigger, share)| {
            let avg = exec_dist.sample(rng) * trigger_exec_scale(trigger);
            let min = avg * uniform(rng, calibration::EXEC_MIN_RANGE);
            let max = avg * log_uniform(rng, calibration::EXEC_MAX_RANGE);
            FunctionProfile {
                trigger,
                invocation_share: share,
                avg_exec_secs: avg,
                min_exec_secs: min,
                max_exec_secs: max,
            }
        })
        .collect();

    let memory_mb = mem_dist.sample(rng).clamp(10.0, 4096.0);
    AppProfile {
        id,
        functions,
        daily_rate: actual_rate,
        archetype,
        memory_mb,
        memory_mb_pct1: memory_mb * uniform(rng, calibration::MEMORY_PCT1_RANGE),
        memory_mb_max: memory_mb * uniform(rng, calibration::MEMORY_MAX_RANGE),
    }
}

/// Samples a trigger combination with the rate-band tilt applied,
/// restricted to combos of at most `max_triggers` distinct types.
fn sample_combo(
    rng: &mut StdRng,
    combos: &[(String, f64)],
    daily_rate: f64,
    max_triggers: usize,
) -> String {
    let weights: Vec<f64> = combos
        .iter()
        .map(|(key, w)| {
            if key.len() > max_triggers {
                0.0
            } else {
                w * combo_rate_tilt(key, daily_rate)
            }
        })
        .collect();
    combos[weighted_index(rng, &weights)].0.clone()
}

/// Builds the archetype and invocation shares for an app containing timer
/// functions. Timer functions fire at period-implied rates; any non-timer
/// functions share a Poisson overlay.
fn timer_archetype(
    rng: &mut StdRng,
    triggers: &[TriggerType],
    sampled_rate: f64,
) -> (Archetype, Vec<f64>, f64) {
    let timer_idx: Vec<usize> = triggers
        .iter()
        .enumerate()
        .filter(|(_, &t)| t == TriggerType::Timer)
        .map(|(i, _)| i)
        .collect();
    let n_timers = timer_idx.len();
    let only_timers = n_timers == triggers.len();

    // Decide how much of the app's rate the timers carry.
    let timer_share = if only_timers {
        1.0
    } else {
        uniform(rng, (0.25, 0.85))
    };
    let timer_rate_target = (sampled_rate * timer_share).max(0.5);

    // Snap each timer's period to a common cron period near the target.
    let per_timer_rate = timer_rate_target / n_timers as f64;
    let ideal_period_min = (1440.0 / per_timer_rate).clamp(1.0, 2880.0);
    let mut specs = Vec::with_capacity(n_timers);
    let mut timer_rate_actual = 0.0;
    for _ in 0..n_timers {
        let period_min = snap_period(rng, ideal_period_min);
        let period_ms = (period_min * MINUTE_MS as f64) as u64;
        let phase_ms = (rng.random::<f64>() * period_min * MINUTE_MS as f64) as u64;
        timer_rate_actual += 1440.0 / period_min;
        specs.push(TimerSpec {
            period_ms,
            phase_ms,
        });
    }

    let overlay_rate = if only_timers {
        0.0
    } else {
        (sampled_rate - timer_rate_actual).max(0.1 * sampled_rate)
    };
    let actual_rate = timer_rate_actual + overlay_rate;

    // Shares: timers get their exact rate share; non-timer functions split
    // the overlay by weighted lottery.
    let mut shares = vec![0.0; triggers.len()];
    for (k, &i) in timer_idx.iter().enumerate() {
        shares[i] = (1440.0 / (specs[k].period_ms as f64 / MINUTE_MS as f64)) / actual_rate;
    }
    let non_timer: Vec<usize> = (0..triggers.len())
        .filter(|i| !timer_idx.contains(i))
        .collect();
    if !non_timer.is_empty() {
        let w: Vec<f64> = non_timer
            .iter()
            .map(|&i| exp_sample(rng) * invocation_weight_multiplier(triggers[i]))
            .collect();
        let total: f64 = w.iter().sum();
        let overlay_share = overlay_rate / actual_rate;
        for (k, &i) in non_timer.iter().enumerate() {
            shares[i] = overlay_share * w[k] / total;
        }
    }

    let archetype = if only_timers {
        Archetype::Timers(specs)
    } else {
        Archetype::Mixed {
            timers: specs,
            overlay_daily_rate: overlay_rate,
        }
    };
    (archetype, shares, actual_rate)
}

/// Invocation shares for an app without timers: exponential lottery
/// weighted by trigger class.
fn non_timer_shares(rng: &mut StdRng, triggers: &[TriggerType]) -> Vec<f64> {
    let w: Vec<f64> = triggers
        .iter()
        .map(|&t| exp_sample(rng) * invocation_weight_multiplier(t))
        .collect();
    let total: f64 = w.iter().sum();
    w.into_iter().map(|x| x / total).collect()
}

/// Archetype for apps without timer triggers, by rate band (§3.3 CV
/// mixture: ~10% of no-timer apps are quasi-periodic, a small fraction
/// Poisson-like, ~40% with CV > 1). The heavy bursty share reflects
/// session-style HTTP traffic — the reason even infrequently invoked
/// apps see warm starts under short keep-alives (Figure 14).
fn non_timer_archetype(rng: &mut StdRng, daily_rate: f64) -> Archetype {
    let u: f64 = rng.random();
    if daily_rate < 6.0 {
        // Rare apps: some are periodic IoT-style reporters whose idle
        // times exceed the histogram range (the policy's ARIMA path);
        // most of the rest are short sessions of a few requests.
        if u < 0.18 {
            let period_hours = uniform(rng, (4.5, 36.0));
            Archetype::RarePeriodic {
                period_ms: (period_hours * HOUR_MS as f64) as u64,
                jitter_ms: uniform(rng, (0.5, 5.0)) * MINUTE_MS as f64,
            }
        } else if u < 0.80 {
            Archetype::Bursty {
                mean_burst_size: uniform(rng, (2.0, 8.0)),
                intra_gap_ms: log_uniform(rng, (30.0 * 1000.0, 5.0 * MINUTE_MS as f64)),
                peak_hour: uniform(rng, (8.0, 20.0)),
            }
        } else {
            Archetype::Poisson
        }
    } else if daily_rate >= 240.0 {
        // Busy apps (mean IAT under ~6 minutes): steady streams whose
        // idle times concentrate in the histogram's first bins — the
        // sharp left-column distributions of Figure 12, where the
        // adaptive keep-alive undercuts any fixed policy.
        if u < 0.55 {
            Archetype::Diurnal {
                peak_hour: 10.0 + uniform(rng, (0.0, 8.0)),
            }
        } else if u < 0.75 {
            Archetype::Poisson
        } else {
            Archetype::Bursty {
                mean_burst_size: log_uniform(rng, (5.0, 30.0)),
                intra_gap_ms: log_uniform(rng, (1000.0, 30.0 * 1000.0)),
                peak_hour: uniform(rng, (8.0, 20.0)),
            }
        }
    } else if u < 0.25 {
        Archetype::Diurnal {
            peak_hour: 10.0 + uniform(rng, (0.0, 8.0)),
        }
    } else if u < 0.35 {
        Archetype::Poisson
    } else {
        Archetype::Bursty {
            mean_burst_size: log_uniform(rng, (2.0, 20.0)),
            intra_gap_ms: log_uniform(rng, (2.0 * 1000.0, 3.0 * MINUTE_MS as f64)),
            peak_hour: uniform(rng, (8.0, 20.0)),
        }
    }
}

/// Snaps an ideal period to a neighbouring cron-style period, choosing
/// probabilistically between the two nearest table entries.
fn snap_period(rng: &mut StdRng, ideal_min: f64) -> f64 {
    let periods = TIMER_PERIODS_MIN;
    // Below/above table bounds: clamp.
    if ideal_min <= periods[0].0 {
        return periods[0].0;
    }
    if ideal_min >= periods[periods.len() - 1].0 {
        return periods[periods.len() - 1].0;
    }
    let mut lower = periods[0].0;
    let mut upper = periods[periods.len() - 1].0;
    for w in periods.windows(2) {
        if ideal_min >= w[0].0 && ideal_min <= w[1].0 {
            lower = w[0].0;
            upper = w[1].0;
            break;
        }
    }
    // Interpolate selection probability in log space.
    let t = (ideal_min.ln() - lower.ln()) / (upper.ln() - lower.ln());
    if rng.random::<f64>() < t {
        upper
    } else {
        lower
    }
}

fn uniform(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    range.0 + rng.random::<f64>() * (range.1 - range.0)
}

fn log_uniform(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    (range.0.ln() + rng.random::<f64>() * (range.1.ln() - range.0.ln())).exp()
}

fn exp_sample(rng: &mut StdRng) -> f64 {
    -rng.random::<f64>().max(f64::MIN_POSITIVE).ln()
}

fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle (kept local to avoid depending on `rand`'s
/// `SliceRandom` across versions).
fn shuffle<T>(rng: &mut StdRng, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(n: usize, seed: u64) -> Population {
        build_population(&PopulationConfig { num_apps: n, seed })
    }

    #[test]
    fn determinism() {
        let a = pop(50, 1);
        let b = pop(50, 1);
        assert_eq!(a.apps.len(), b.apps.len());
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ids_dense_and_functions_nonempty() {
        let p = pop(100, 2);
        for (i, a) in p.apps.iter().enumerate() {
            assert_eq!(a.id, AppId(i as u32));
            assert!(!a.functions.is_empty());
            assert!(a.daily_rate > 0.0);
        }
    }

    #[test]
    fn invocation_shares_sum_to_one() {
        let p = pop(300, 3);
        for a in &p.apps {
            let total: f64 = a.functions.iter().map(|f| f.invocation_share).sum();
            assert!(
                (total - 1.0).abs() < 1e-6,
                "app {} shares sum {total}",
                a.id
            );
            assert!(a.functions.iter().all(|f| f.invocation_share >= 0.0));
        }
    }

    #[test]
    fn single_function_share_fraction_near_54_percent() {
        let p = pop(4000, 4);
        let singles = p.apps.iter().filter(|a| a.functions.len() == 1).count();
        let frac = singles as f64 / p.len() as f64;
        assert!((0.48..0.60).contains(&frac), "single-function frac {frac}");
    }

    #[test]
    fn rate_quantiles_match_figure5a() {
        let p = pop(6000, 5);
        let mut rates: Vec<f64> = p.apps.iter().map(|a| a.daily_rate).collect();
        rates.sort_by(f64::total_cmp);
        let q45 = rates[(0.45 * rates.len() as f64) as usize];
        let q81 = rates[(0.81 * rates.len() as f64) as usize];
        // Timer snapping perturbs rates slightly; allow a loose band.
        assert!((10.0..72.0).contains(&q45), "q45 {q45}");
        assert!((700.0..3000.0).contains(&q81), "q81 {q81}");
        // 8 orders of magnitude overall.
        let min = rates[0];
        let max = rates[rates.len() - 1];
        assert!(max / min > 1e6, "range {min}..{max}");
    }

    #[test]
    fn trigger_combo_marginals_roughly_match_figure3() {
        let p = pop(8000, 6);
        let share = |t: TriggerType| {
            p.apps
                .iter()
                .filter(|a| a.trigger_set().contains(&t))
                .count() as f64
                / p.len() as f64
        };
        let h = share(TriggerType::Http);
        let t = share(TriggerType::Timer);
        let q = share(TriggerType::Queue);
        assert!((0.50..0.78).contains(&h), "HTTP apps {h}");
        assert!((0.18..0.40).contains(&t), "Timer apps {t}");
        assert!((0.14..0.34).contains(&q), "Queue apps {q}");
    }

    #[test]
    fn timer_apps_get_timer_archetypes() {
        let p = pop(2000, 7);
        for a in &p.apps {
            match (&a.archetype, a.has_timer()) {
                (Archetype::Timers(_), has) => assert!(has && a.only_timers()),
                (Archetype::Mixed { .. }, has) => assert!(has),
                (_, has) => assert!(
                    !has,
                    "app {} has timer but archetype {:?}",
                    a.id, a.archetype
                ),
            }
        }
    }

    #[test]
    fn timer_rates_consistent_with_specs() {
        let p = pop(2000, 8);
        for a in &p.apps {
            if let Archetype::Timers(specs) = &a.archetype {
                let implied: f64 = specs
                    .iter()
                    .map(|s| 1440.0 / (s.period_ms as f64 / MINUTE_MS as f64))
                    .sum();
                assert!(
                    (implied - a.daily_rate).abs() < 1e-6,
                    "app {}: implied {implied} recorded {}",
                    a.id,
                    a.daily_rate
                );
            }
        }
    }

    #[test]
    fn memory_profile_ordering() {
        let p = pop(1000, 9);
        for a in &p.apps {
            assert!(a.memory_mb_pct1 <= a.memory_mb);
            assert!(a.memory_mb <= a.memory_mb_max);
            assert!(a.memory_mb >= 10.0);
        }
    }

    #[test]
    fn memory_median_matches_burr_fit() {
        let p = pop(4000, 10);
        let mut mem: Vec<f64> = p.apps.iter().map(|a| a.memory_mb).collect();
        mem.sort_by(f64::total_cmp);
        let median = mem[mem.len() / 2];
        // Burr fit median ≈ 140 MB; the paper reports 50% of apps ≤ 170 MB.
        assert!((100.0..200.0).contains(&median), "median {median}");
    }

    #[test]
    fn exec_time_ordering_and_magnitude() {
        let p = pop(1000, 11);
        let mut avgs = Vec::new();
        for a in &p.apps {
            for f in &a.functions {
                assert!(f.min_exec_secs <= f.avg_exec_secs);
                assert!(f.avg_exec_secs <= f.max_exec_secs);
                avgs.push(f.avg_exec_secs);
            }
        }
        avgs.sort_by(f64::total_cmp);
        let median = avgs[avgs.len() / 2];
        // §3.4: 50% of functions run under 1 s on average.
        assert!((0.1..1.5).contains(&median), "median exec {median}");
    }

    #[test]
    fn event_functions_scarce_but_heavy() {
        let p = pop(8000, 12);
        let mut n_event = 0usize;
        let mut n_funcs = 0usize;
        let mut inv_event = 0.0;
        let mut inv_total = 0.0;
        for a in &p.apps {
            for f in &a.functions {
                n_funcs += 1;
                let rate = f.invocation_share * a.daily_rate;
                inv_total += rate;
                if f.trigger == TriggerType::Event {
                    n_event += 1;
                    inv_event += rate;
                }
            }
        }
        let func_share = n_event as f64 / n_funcs as f64;
        let inv_share = inv_event / inv_total;
        // Figure 2: Event = 2.2% of functions, 24.7% of invocations.
        assert!(func_share < 0.12, "event function share {func_share}");
        assert!(
            inv_share > 2.0 * func_share,
            "event invocation share {inv_share} vs function share {func_share}"
        );
    }
}
