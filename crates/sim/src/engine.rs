//! Per-application cold-start simulation (§5.1 methodology).
//!
//! "The simulator generates an array of invocation times for each unique
//! application. It then infers whether each invocation would be a cold
//! start. By default, the first invocation is always assumed to be a
//! cold start. The simulator keeps track of when each application image
//! is loaded and aggregates the wasted memory time … We conservatively
//! simulate function execution times equal to 0."
//!
//! With zero execution time, the idle time (IT) between executions equals
//! the inter-arrival time, and a policy's windows map onto each gap:
//!
//! * `pre_warm = 0`: the image stays loaded; an invocation within the
//!   keep-alive window is warm (waste = the idle gap), a later one is
//!   cold (waste = the whole keep-alive window);
//! * `pre_warm > 0`: the image unloads at execution end and re-loads at
//!   `pre_warm`; an invocation before that is cold with **zero** waste
//!   (the load never happened — the pending pre-warm is cancelled), one
//!   inside `[pre_warm, pre_warm+keep_alive]` is warm (waste = arrival −
//!   load), one after is cold (waste = the keep-alive window).

use sitw_core::{AppPolicy, DecisionKind};
use sitw_trace::TimeMs;

/// Outcome of simulating one application against one policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppSimResult {
    /// Total invocations replayed.
    pub invocations: u64,
    /// Invocations that found no loaded image.
    pub cold_starts: u64,
    /// Loaded-but-idle image time in milliseconds (the paper's "wasted
    /// memory time", with all apps weighing equally).
    pub wasted_ms: u64,
    /// Image loads (initial cold load + pre-warm loads + cold re-loads).
    pub loads: u64,
    /// Loads triggered by pre-warming (subset of `loads`).
    pub prewarm_loads: u64,
    /// Policy decisions served by the ARIMA branch.
    pub arima_decisions: u64,
    /// Whether any decision used ARIMA.
    pub used_arima: bool,
}

impl AppSimResult {
    /// Percentage of invocations that were cold (0 when none replayed).
    pub fn cold_pct(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            100.0 * self.cold_starts as f64 / self.invocations as f64
        }
    }

    /// True when every invocation was cold (the Figure 19 metric).
    pub fn always_cold(&self) -> bool {
        self.invocations > 0 && self.cold_starts == self.invocations
    }
}

/// Replays one application's invocation timestamps against a policy.
///
/// `horizon_ms` bounds the trailing keep-alive accounting: memory held
/// after the last invocation is wasted only up to the horizon.
pub fn simulate_app<P: AppPolicy + ?Sized>(
    events: &[TimeMs],
    horizon_ms: TimeMs,
    policy: &mut P,
) -> AppSimResult {
    let mut res = AppSimResult::default();
    if events.is_empty() {
        return res;
    }
    debug_assert!(events.windows(2).all(|w| w[0] <= w[1]), "events sorted");

    // First invocation: always cold (§5.1).
    res.invocations = 1;
    res.cold_starts = 1;
    res.loads = 1;
    let mut windows = policy.on_invocation(None);
    if policy.last_decision() == DecisionKind::Arima {
        res.arima_decisions += 1;
        res.used_arima = true;
    }
    let mut prev_end = events[0]; // Execution time 0: end == start.

    for &t in &events[1..] {
        let it = t - prev_end;
        res.invocations += 1;

        let (cold, waste) = classify_gap(&windows, it, &mut res);
        if cold {
            res.cold_starts += 1;
            res.loads += 1;
        }
        res.wasted_ms = res.wasted_ms.saturating_add(waste);

        windows = policy.on_invocation(Some(it));
        if policy.last_decision() == DecisionKind::Arima {
            res.arima_decisions += 1;
            res.used_arima = true;
        }
        prev_end = t;
    }

    // Trailing window after the last invocation, clipped to the horizon.
    let remaining = horizon_ms.saturating_sub(prev_end);
    if windows.pre_warm_ms == 0 {
        res.wasted_ms = res
            .wasted_ms
            .saturating_add(remaining.min(windows.keep_alive_ms));
    } else if remaining > windows.pre_warm_ms {
        res.prewarm_loads += 1;
        res.loads += 1;
        res.wasted_ms = res
            .wasted_ms
            .saturating_add((remaining - windows.pre_warm_ms).min(windows.keep_alive_ms));
    }
    res
}

/// Replays an application with **measured execution times**: each
/// invocation `i` busies the image for `exec_ms[i]`, so the idle time
/// fed to the policy is the gap between the previous execution's *end*
/// and the next arrival. An arrival while the previous execution is
/// still running is served warm by a concurrent container and does not
/// reset the idle clock (the <1% concurrency cold starts the paper
/// deliberately ignores, §2).
///
/// The zero-execution-time mode of [`simulate_app`] is the paper's
/// conservative default; this variant quantifies how much of the
/// "wasted" time is actually billable execution.
///
/// # Panics
///
/// Panics if `exec_ms.len() != events.len()`.
pub fn simulate_app_with_exec<P: AppPolicy + ?Sized>(
    events: &[TimeMs],
    exec_ms: &[TimeMs],
    horizon_ms: TimeMs,
    policy: &mut P,
) -> AppSimResult {
    assert_eq!(events.len(), exec_ms.len(), "one exec time per event");
    let mut res = AppSimResult::default();
    if events.is_empty() {
        return res;
    }
    debug_assert!(events.windows(2).all(|w| w[0] <= w[1]), "events sorted");

    res.invocations = 1;
    res.cold_starts = 1;
    res.loads = 1;
    let mut windows = policy.on_invocation(None);
    if policy.last_decision() == DecisionKind::Arima {
        res.arima_decisions += 1;
        res.used_arima = true;
    }
    let mut prev_end = events[0].saturating_add(exec_ms[0]);

    for (&t, &e) in events[1..].iter().zip(&exec_ms[1..]) {
        res.invocations += 1;
        if t < prev_end {
            // Concurrent with the running execution: warm, no idle gap;
            // the busy period simply extends.
            prev_end = prev_end.max(t.saturating_add(e));
            continue;
        }
        let it = t - prev_end;
        let (cold, waste) = classify_gap(&windows, it, &mut res);
        if cold {
            res.cold_starts += 1;
            res.loads += 1;
        }
        res.wasted_ms = res.wasted_ms.saturating_add(waste);
        windows = policy.on_invocation(Some(it));
        if policy.last_decision() == DecisionKind::Arima {
            res.arima_decisions += 1;
            res.used_arima = true;
        }
        prev_end = t.saturating_add(e);
    }

    let remaining = horizon_ms.saturating_sub(prev_end);
    if windows.pre_warm_ms == 0 {
        res.wasted_ms = res
            .wasted_ms
            .saturating_add(remaining.min(windows.keep_alive_ms));
    } else if remaining > windows.pre_warm_ms {
        res.prewarm_loads += 1;
        res.loads += 1;
        res.wasted_ms = res
            .wasted_ms
            .saturating_add((remaining - windows.pre_warm_ms).min(windows.keep_alive_ms));
    }
    res
}

/// Classifies one idle gap via the policy-layer single source of truth
/// ([`sitw_core::Windows::classify_gap`]); returns `(cold, wasted_ms)`
/// and updates load counters for pre-warm loads.
fn classify_gap(
    windows: &sitw_core::Windows,
    it: TimeMs,
    res: &mut AppSimResult,
) -> (bool, TimeMs) {
    let outcome = windows.classify_gap(it);
    if outcome.prewarm_load {
        res.prewarm_loads += 1;
        res.loads += 1;
    }
    (outcome.cold, outcome.wasted_ms)
}

/// Per-invocation outcome of an offline replay — exactly the record the
/// online serving daemon (`sitw_serve`) emits for a `POST /invoke`, so
/// online and offline runs can be compared element by element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationVerdict {
    /// Invocation timestamp.
    pub ts: TimeMs,
    /// The invocation found no loaded image.
    pub cold: bool,
    /// A pre-warm load happened in the gap that ended here.
    pub prewarm_load: bool,
    /// Which policy branch produced the windows governing the *next* gap.
    pub kind: DecisionKind,
    /// The windows the policy emitted after this invocation.
    pub windows: sitw_core::Windows,
}

/// Replays one application's timestamps and returns the per-invocation
/// verdict stream.
///
/// Classification is identical to [`simulate_app`] (both run through
/// [`sitw_core::Windows::classify_gap`]); this variant records each
/// invocation instead of folding counters, and skips the trailing
/// horizon accounting (which has no per-invocation analogue).
pub fn verdict_trace<P: AppPolicy + ?Sized>(
    events: &[TimeMs],
    policy: &mut P,
) -> Vec<InvocationVerdict> {
    let mut out = Vec::with_capacity(events.len());
    if events.is_empty() {
        return out;
    }
    debug_assert!(events.windows(2).all(|w| w[0] <= w[1]), "events sorted");

    let mut windows = policy.on_invocation(None);
    out.push(InvocationVerdict {
        ts: events[0],
        cold: true,
        prewarm_load: false,
        kind: policy.last_decision(),
        windows,
    });
    let mut prev_end = events[0];

    for &t in &events[1..] {
        let outcome = windows.classify_gap(t - prev_end);
        windows = policy.on_invocation(Some(t - prev_end));
        out.push(InvocationVerdict {
            ts: t,
            cold: outcome.cold,
            prewarm_load: outcome.prewarm_load,
            kind: policy.last_decision(),
            windows,
        });
        prev_end = t;
    }
    out
}

/// Replays one application's timestamps through a
/// [`sitw_core::ProductionManager`] and returns the per-invocation
/// verdict stream — the offline ground truth for a daemon serving in
/// production mode.
///
/// Unlike [`verdict_trace`], which drives a per-app [`AppPolicy`] on
/// idle times alone, the production scheme is day-aware: `events` are
/// absolute trace timestamps and day boundaries fall exactly where the
/// daemon's do, so an online replay of the same `(app, ts)` stream is
/// bit-for-bit identical. Classification goes through the same
/// [`sitw_core::Windows::classify_gap`] single source of truth.
pub fn production_verdict_trace(
    events: &[TimeMs],
    manager: &mut sitw_core::ProductionManager,
    app: sitw_core::AppKey,
) -> Vec<InvocationVerdict> {
    let mut out = Vec::with_capacity(events.len());
    if events.is_empty() {
        return out;
    }
    debug_assert!(events.windows(2).all(|w| w[0] <= w[1]), "events sorted");

    let (mut windows, kind) = manager.on_invocation(app, events[0], None);
    out.push(InvocationVerdict {
        ts: events[0],
        cold: true,
        prewarm_load: false,
        kind,
        windows,
    });
    let mut prev_end = events[0];

    for &t in &events[1..] {
        let outcome = windows.classify_gap(t - prev_end);
        let (next, kind) = manager.on_invocation(app, t, Some(t - prev_end));
        windows = next;
        out.push(InvocationVerdict {
            ts: t,
            cold: outcome.cold,
            prewarm_load: outcome.prewarm_load,
            kind,
            windows,
        });
        prev_end = t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitw_core::{FixedKeepAlive, HybridConfig, NoUnloading, PolicyFactory, MINUTE_MS};

    const MIN: TimeMs = MINUTE_MS;

    #[test]
    fn empty_stream_is_all_zero() {
        let mut p = FixedKeepAlive::minutes(10);
        let r = simulate_app(&[], 100 * MIN, &mut p);
        assert_eq!(r, AppSimResult::default());
    }

    #[test]
    fn single_invocation_always_cold() {
        let mut p = FixedKeepAlive::minutes(10);
        let r = simulate_app(&[5 * MIN], 100 * MIN, &mut p);
        assert_eq!(r.invocations, 1);
        assert_eq!(r.cold_starts, 1);
        assert!(r.always_cold());
        // Trailing keep-alive: 10 minutes held after the only execution.
        assert_eq!(r.wasted_ms, 10 * MIN);
    }

    #[test]
    fn fixed_policy_warm_within_keep_alive() {
        let mut p = FixedKeepAlive::minutes(10);
        // Gaps: 5 min (warm), 10 min (warm, boundary), 11 min (cold).
        let events = [0, 5 * MIN, 15 * MIN, 26 * MIN];
        let r = simulate_app(&events, 26 * MIN, &mut p);
        assert_eq!(r.invocations, 4);
        assert_eq!(r.cold_starts, 2); // First + the 11-minute gap.
                                      // Waste: 5 + 10 (warm gaps) + 10 (expired keep-alive) + 0 tail
                                      // (horizon == last event).
        assert_eq!(r.wasted_ms, (5 + 10 + 10) * MIN);
    }

    #[test]
    fn no_unloading_only_first_cold() {
        let mut p = NoUnloading;
        let events = [0, 500 * MIN, 5_000 * MIN];
        let r = simulate_app(&events, 6_000 * MIN, &mut p);
        assert_eq!(r.cold_starts, 1);
        // Waste = entire idle time + tail to horizon.
        assert_eq!(r.wasted_ms, (500 + 4_500 + 1_000) * MIN);
    }

    #[test]
    fn prewarm_windows_warm_hit() {
        // Hand-built policy: constant pre-warm 8 min, keep-alive 4 min.
        struct Fixed2;
        impl AppPolicy for Fixed2 {
            fn on_invocation(&mut self, _: Option<u64>) -> sitw_core::Windows {
                sitw_core::Windows::pre_warmed(8 * MIN, 4 * MIN)
            }
            fn last_decision(&self) -> DecisionKind {
                DecisionKind::Static
            }
            fn name(&self) -> String {
                "fixed2".into()
            }
        }
        let mut p = Fixed2;
        // Gaps: 10 min (in [8,12] → warm, waste 2), 5 min (< 8 → cold,
        // waste 0), 20 min (> 12 → cold, waste 4).
        let events = [0, 10 * MIN, 15 * MIN, 35 * MIN];
        let r = simulate_app(&events, 35 * MIN, &mut p);
        assert_eq!(r.cold_starts, 1 + 2);
        assert_eq!(r.wasted_ms, (2 + 4) * MIN); // 2 + 0 + 4 minutes.
                                                // Pre-warm loads: the 10-min gap and the 20-min gap loaded.
        assert_eq!(r.prewarm_loads, 2);
        assert_eq!(r.loads, 1 + 2 + 2); // initial + 2 colds + 2 prewarms.
    }

    #[test]
    fn zero_gap_is_warm() {
        let mut p = FixedKeepAlive::minutes(0);
        let events = [10 * MIN, 10 * MIN, 10 * MIN];
        let r = simulate_app(&events, 20 * MIN, &mut p);
        // ka = 0: same-timestamp invocations stay warm, nothing else.
        assert_eq!(r.cold_starts, 1);
        assert_eq!(r.wasted_ms, 0);
    }

    #[test]
    fn trailing_prewarm_load_counted() {
        struct P;
        impl AppPolicy for P {
            fn on_invocation(&mut self, _: Option<u64>) -> sitw_core::Windows {
                sitw_core::Windows::pre_warmed(10 * MIN, 5 * MIN)
            }
            fn last_decision(&self) -> DecisionKind {
                DecisionKind::Static
            }
            fn name(&self) -> String {
                "p".into()
            }
        }
        // Horizon ends mid-keep-alive: 12 − 10 = 2 minutes wasted.
        let r = simulate_app(&[0], 12 * MIN, &mut P);
        assert_eq!(r.wasted_ms, 2 * MIN);
        assert_eq!(r.prewarm_loads, 1);

        // Horizon before the pre-warm: no load, no waste.
        let r = simulate_app(&[0], 9 * MIN, &mut P);
        assert_eq!(r.wasted_ms, 0);
        assert_eq!(r.prewarm_loads, 0);
    }

    #[test]
    fn conservation_cold_plus_warm_equals_invocations() {
        let mut p = HybridConfig::default().new_policy();
        let events: Vec<TimeMs> = (0..200).map(|i| i * 7 * MIN).collect();
        let r = simulate_app(&events, 1_500 * MIN, &mut p);
        assert_eq!(r.invocations, 200);
        assert!(r.cold_starts <= r.invocations);
    }

    #[test]
    fn hybrid_beats_fixed_on_periodic_app() {
        // App invoked every 30 minutes: fixed-10min is always cold,
        // hybrid learns the pattern and pre-warms.
        let events: Vec<TimeMs> = (0..100).map(|i| i * 30 * MIN).collect();
        let horizon = 100 * 30 * MIN;

        let mut fixed = FixedKeepAlive::minutes(10);
        let rf = simulate_app(&events, horizon, &mut fixed);
        assert_eq!(rf.cold_starts, 100, "fixed-10min misses every gap");

        let mut hybrid = HybridConfig::default().new_policy();
        let rh = simulate_app(&events, horizon, &mut hybrid);
        assert!(
            rh.cold_starts <= 10,
            "hybrid should learn the 30-minute period: {} colds",
            rh.cold_starts
        );
        // And the hybrid should also waste less memory than a no-unload.
        let mut nu = NoUnloading;
        let rn = simulate_app(&events, horizon, &mut nu);
        assert!(rh.wasted_ms < rn.wasted_ms);
    }

    #[test]
    fn rare_periodic_app_served_by_arima() {
        // 300-minute period exceeds the 240-minute histogram range.
        let events: Vec<TimeMs> = (0..30).map(|i| i * 300 * MIN).collect();
        let horizon = 30 * 300 * MIN;

        let mut hybrid = HybridConfig::default().new_policy();
        let rh = simulate_app(&events, horizon, &mut hybrid);
        assert!(rh.used_arima);
        assert!(
            rh.cold_starts < 15,
            "ARIMA should pre-warm most 300-minute gaps: {} colds",
            rh.cold_starts
        );

        let mut noarima = HybridConfig::default().without_arima().new_policy();
        let rn = simulate_app(&events, horizon, &mut noarima);
        assert!(!rn.used_arima);
        assert!(
            rn.cold_starts > rh.cold_starts,
            "without ARIMA: {} vs with: {}",
            rn.cold_starts,
            rh.cold_starts
        );
    }

    #[test]
    fn cold_pct_and_always_cold() {
        let r = AppSimResult {
            invocations: 4,
            cold_starts: 1,
            ..Default::default()
        };
        assert_eq!(r.cold_pct(), 25.0);
        assert!(!r.always_cold());
        let all = AppSimResult {
            invocations: 3,
            cold_starts: 3,
            ..Default::default()
        };
        assert!(all.always_cold());
        assert_eq!(AppSimResult::default().cold_pct(), 0.0);
    }

    #[test]
    fn with_exec_reduces_to_zero_exec_when_exec_is_zero() {
        let events: Vec<TimeMs> = (0..50).map(|i| i * 13 * MIN).collect();
        let zeros = vec![0; events.len()];
        let horizon = 700 * MIN;

        let mut a = HybridConfig::default().new_policy();
        let ra = simulate_app(&events, horizon, &mut a);
        let mut b = HybridConfig::default().new_policy();
        let rb = simulate_app_with_exec(&events, &zeros, horizon, &mut b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn with_exec_shortens_idle_times() {
        // 10-minute arrival gaps, 4-minute executions: idle time is 6
        // minutes, so a fixed 5-minute keep-alive misses (cold) while it
        // would catch a 6-minute one.
        let events: Vec<TimeMs> = (0..20).map(|i| i * 10 * MIN).collect();
        let execs = vec![4 * MIN; events.len()];
        let horizon = 220 * MIN;

        let mut p5 = FixedKeepAlive::minutes(5);
        let r5 = simulate_app_with_exec(&events, &execs, horizon, &mut p5);
        assert_eq!(r5.cold_starts, 20, "6-minute idles exceed 5-minute KA");

        let mut p6 = FixedKeepAlive::minutes(6);
        let r6 = simulate_app_with_exec(&events, &execs, horizon, &mut p6);
        assert_eq!(r6.cold_starts, 1, "6-minute idles fit a 6-minute KA");
        // Waste counts only the idle portion, not the busy 4 minutes.
        assert_eq!(r6.wasted_ms, 19 * 6 * MIN + 6 * MIN);
    }

    #[test]
    fn concurrent_arrivals_are_warm_and_extend_busy() {
        // Second arrival lands inside the first execution: warm, no
        // policy update; third arrival measures idle from the extended
        // busy end.
        let events = [0, 2 * MIN, 20 * MIN];
        let execs = [5 * MIN, 5 * MIN, MIN];
        let mut p = FixedKeepAlive::minutes(10);
        let r = simulate_app_with_exec(&events, &execs, 30 * MIN, &mut p);
        assert_eq!(r.invocations, 3);
        // Busy until max(0+5, 2+5) = 7 min; idle gap to t=20 is 13 min >
        // 10-minute KA: cold.
        assert_eq!(r.cold_starts, 2);
    }

    #[test]
    #[should_panic(expected = "one exec time per event")]
    fn with_exec_rejects_length_mismatch() {
        let mut p = FixedKeepAlive::minutes(10);
        let _ = simulate_app_with_exec(&[0, 1], &[0], 10, &mut p);
    }

    #[test]
    fn verdict_trace_matches_simulate_app_counters() {
        // Irregular gaps exercising warm, cold, and pre-warm branches of
        // the hybrid policy; the folded counters of simulate_app must
        // equal the sums over verdict_trace's per-invocation records.
        let events: Vec<TimeMs> = (0..300)
            .map(|i| (i * i % 811) as TimeMs * MIN)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let horizon = *events.last().unwrap();

        let mut a = HybridConfig::default().new_policy();
        let folded = simulate_app(&events, horizon, &mut a);
        let mut b = HybridConfig::default().new_policy();
        let verdicts = verdict_trace(&events, &mut b);

        assert_eq!(verdicts.len() as u64, folded.invocations);
        assert_eq!(
            verdicts.iter().filter(|v| v.cold).count() as u64,
            folded.cold_starts
        );
        // Trailing-horizon pre-warm loads have no per-invocation record,
        // so the verdict sum can be at most one short.
        let prewarms = verdicts.iter().filter(|v| v.prewarm_load).count() as u64;
        assert!(folded.prewarm_loads - prewarms <= 1);
        assert!(verdicts[0].cold, "first invocation is cold by definition");
    }

    #[test]
    fn verdict_trace_empty_stream() {
        let mut p = FixedKeepAlive::minutes(10);
        assert!(verdict_trace(&[], &mut p).is_empty());
        let mut m = sitw_core::ProductionManager::new(sitw_core::ProductionConfig::default());
        assert!(production_verdict_trace(&[], &mut m, 0).is_empty());
    }

    #[test]
    fn production_verdict_trace_uses_absolute_days() {
        use sitw_core::{DayHistogram, ProductionConfig, ProductionManager};
        const DAY: TimeMs = 24 * 60 * MINUTE_MS;
        // Three days of a 30-minute pattern spanning day boundaries.
        let events: Vec<TimeMs> = (0..(3 * 48)).map(|i| i * 30 * MIN).collect();
        let mut m = ProductionManager::new(ProductionConfig::default());
        let verdicts = production_verdict_trace(&events, &mut m, 7);

        assert!(verdicts[0].cold, "first invocation cold by definition");
        assert_eq!(verdicts.len(), events.len());
        // Day boundaries fall at the absolute timestamps: one daily
        // histogram per trace day was retained.
        let state = m.export_app(7).unwrap();
        assert_eq!(
            state.days.iter().map(|d| d.day).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(state.days.iter().all(|d: &DayHistogram| d.oob == 0));
        // The learned pattern keeps the steady 30-minute gaps warm.
        let tail = &verdicts[verdicts.len() / 2..];
        assert!(tail.iter().all(|v| !v.cold), "pattern learned by mid-trace");
        // Backups ticked along the 3-day clock.
        assert_eq!(m.backups_taken(), (3 * DAY - 30 * MIN) / 3_600_000);
    }

    #[test]
    fn longer_fixed_keep_alive_never_more_colds() {
        // Monotonicity: for the same stream, a longer fixed keep-alive
        // can only reduce cold starts.
        let events: Vec<TimeMs> = (0..300)
            .map(|i| (i * i % 997) as TimeMs * MIN)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let horizon = 1_000 * MIN;
        let mut prev_colds = u64::MAX;
        for ka in [5, 10, 20, 60, 120] {
            let mut p = FixedKeepAlive::minutes(ka);
            let r = simulate_app(&events, horizon, &mut p);
            assert!(
                r.cold_starts <= prev_colds,
                "ka={ka} increased colds: {} > {prev_colds}",
                r.cold_starts
            );
            prev_colds = r.cold_starts;
        }
    }
}
