//! Quickstart: generate a synthetic FaaS workload, compare the provider
//! default (fixed 10-minute keep-alive) against the paper's hybrid
//! histogram policy, and print the headline numbers.
//!
//! Run with: `cargo run --release --example quickstart`

#![forbid(unsafe_code)]

use serverless_in_the_wild::prelude::*;

fn main() {
    // A small but representative workload: 500 applications, one week.
    let population = build_population(&PopulationConfig {
        num_apps: 500,
        seed: 7,
    });
    let trace_cfg = TraceConfig {
        horizon_ms: WEEK_MS,
        cap_per_day: 2_000.0,
        seed: 11,
    };

    let specs = vec![
        PolicySpec::fixed_minutes(10),
        PolicySpec::fixed_minutes(60),
        PolicySpec::NoUnloading,
        PolicySpec::Hybrid(HybridConfig::default()),
    ];
    println!(
        "simulating {} policies over {} apps…",
        specs.len(),
        population.len()
    );
    let results = run_sweep(&population, &trace_cfg, &specs, 4);

    let baseline = results[0].clone();
    println!(
        "\n{:<22} {:>12} {:>14} {:>16}",
        "policy", "cold starts", "p75 cold %", "memory vs 10min"
    );
    for agg in &results {
        println!(
            "{:<22} {:>12} {:>13.1}% {:>15.1}%",
            agg.label,
            agg.cold_starts,
            agg.cold_pct_percentile(75.0),
            agg.normalized_waste_pct(&baseline),
        );
    }

    let hybrid = results.last().unwrap();
    println!(
        "\nhybrid histogram policy: {:.1}× fewer cold starts than fixed-10min \
         ({} vs {}), ARIMA handled {:.2}% of invocations across {:.1}% of apps",
        baseline.cold_starts as f64 / hybrid.cold_starts.max(1) as f64,
        hybrid.cold_starts,
        baseline.cold_starts,
        hybrid.arima_invocation_share_pct(),
        hybrid.arima_app_share_pct(),
    );
}
