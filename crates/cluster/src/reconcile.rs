//! Epoch-based budget reconciliation.
//!
//! Each node enforces per-tenant memory budgets locally; the reconciler
//! keeps those local budgets meaningful cluster-wide. Every cycle it
//!
//! 1. polls each live node's per-tenant ledger integrals
//!    ([`ControlRequest::Report`] over a SITW-BIN control frame),
//! 2. aggregates the reports name-keyed into one cluster view
//!    ([`aggregate_usage`] — exported to `/metrics`), and
//! 3. pushes each budgeted tenant's **full** budget to its current ring
//!    owner ([`reconcile_shares`], a pure function of the ring epoch).
//!
//! Budget follows ownership: named tenants land whole on one node, so
//! the owner gets the whole budget and nobody else needs a share — a
//! node that loses a tenant loses its state with the take, and a node
//! that never owns it skips unknown names in a `BudgetSet` (uncounted in
//! the ack). Shares are recomputed from the ring on every cycle, so a
//! migration or node drop is reconciled one cycle after its epoch
//! advance, without any per-change bookkeeping.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sitw_serve::wire::{
    decode_server_frame, encode_control_frame, ControlReply, ControlRequest, ServerFrameDecode,
    TenantUsage,
};

use crate::ring::ClusterRing;

/// One node's control-plane report.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node slot in the ring.
    pub node: usize,
    /// Per-tenant ledger integrals as reported by the node.
    pub tenants: Vec<TenantUsage>,
}

/// Computes the per-node budget shares for one cycle: each budgeted
/// tenant's full budget goes to its current ring owner. Unbudgeted
/// tenants (0 = unlimited) are never pushed — a zero share would
/// *lift* a limit, not enforce one. Pure in `(budgets, ring)`, so the
/// shares are a function of the ring epoch.
pub fn reconcile_shares(
    budgets: &[(String, u64)],
    ring: &ClusterRing,
) -> Vec<(usize, Vec<(String, u64)>)> {
    let mut per_node: BTreeMap<usize, Vec<(String, u64)>> = BTreeMap::new();
    for (name, budget_mb) in budgets {
        if *budget_mb == 0 {
            continue;
        }
        if let Some(owner) = ring.node_of_tenant(name) {
            per_node
                .entry(owner)
                .or_default()
                .push((name.clone(), *budget_mb));
        }
    }
    per_node.into_iter().collect()
}

/// Folds node reports into one name-keyed cluster view: budgets take the
/// max (each named tenant has one enforcing owner; the default tenant's
/// budget is replicated, not split), everything else sums.
pub fn aggregate_usage(reports: &[NodeReport]) -> Vec<TenantUsage> {
    let mut by_name: BTreeMap<String, TenantUsage> = BTreeMap::new();
    for report in reports {
        for t in &report.tenants {
            let entry = by_name
                .entry(t.name.clone())
                .or_insert_with(|| TenantUsage {
                    name: t.name.clone(),
                    budget_mb: 0,
                    warm_mb: 0,
                    evictions: 0,
                    idle_mb_ms: 0,
                    invocations: 0,
                });
            entry.budget_mb = entry.budget_mb.max(t.budget_mb);
            entry.warm_mb += t.warm_mb;
            entry.evictions += t.evictions;
            entry.idle_mb_ms = entry.idle_mb_ms.saturating_add(t.idle_mb_ms);
            entry.invocations += t.invocations;
        }
    }
    by_name.into_values().collect()
}

/// One control-plane round trip: connects to `addr`, sends `req` as a
/// SITW-BIN control frame, and decodes the node's control reply. Used by
/// the reconciler and by parity tests that read ledger integrals off
/// live nodes.
pub fn control_roundtrip(addr: SocketAddr, req: &ControlRequest) -> io::Result<ControlReply> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut frame = Vec::new();
    encode_control_frame(&mut frame, req);
    stream.write_all(&frame)?;

    let mut buf = Vec::new();
    loop {
        match decode_server_frame(&buf) {
            ServerFrameDecode::Control { reply, .. } => return Ok(reply),
            ServerFrameDecode::Incomplete => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid control reply",
                    ));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            ServerFrameDecode::Error { code, detail, .. } => {
                return Err(io::Error::other(format!(
                    "control error {code:?}: {detail}"
                )))
            }
            ServerFrameDecode::Reply { .. }
            | ServerFrameDecode::ReplChunk { .. }
            | ServerFrameDecode::ReplCommit { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected reply frame to a control request",
                ))
            }
            ServerFrameDecode::Malformed(detail) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, detail))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(name: &str, budget: u64, warm: u64, ev: u64, idle: u64, inv: u64) -> TenantUsage {
        TenantUsage {
            name: name.into(),
            budget_mb: budget,
            warm_mb: warm,
            evictions: ev,
            idle_mb_ms: idle,
            invocations: inv,
        }
    }

    #[test]
    fn shares_follow_the_ring_owner() {
        let ring = ClusterRing::new(3);
        let budgets = vec![
            ("t0".to_owned(), 64),
            ("t1".to_owned(), 0), // Unlimited: never pushed.
            ("t2".to_owned(), 128),
        ];
        let shares = reconcile_shares(&budgets, &ring);
        let pushed: Vec<(&str, u64, usize)> = shares
            .iter()
            .flat_map(|(node, s)| s.iter().map(move |(n, b)| (n.as_str(), *b, *node)))
            .collect();
        assert_eq!(pushed.len(), 2, "only budgeted tenants are pushed");
        for (name, budget, node) in pushed {
            assert_eq!(Some(node), ring.node_of_tenant(name));
            assert_eq!(budget, if name == "t0" { 64 } else { 128 });
        }
    }

    #[test]
    fn shares_move_with_epoch_changes() {
        let mut ring = ClusterRing::new(2);
        let budgets = vec![("acme".to_owned(), 64)];
        let before = reconcile_shares(&budgets, &ring);
        let owner = before[0].0;
        ring.set_override("acme", 1 - owner).unwrap();
        let after = reconcile_shares(&budgets, &ring);
        assert_eq!(after[0].0, 1 - owner, "share follows the migration");
        ring.drop_node(1 - owner);
        let rehomed = reconcile_shares(&budgets, &ring);
        assert_eq!(rehomed[0].0, owner, "share follows the rehash");
    }

    #[test]
    fn aggregation_maxes_budgets_and_sums_the_rest() {
        let reports = vec![
            NodeReport {
                node: 0,
                tenants: vec![
                    usage("default", 0, 5, 0, 100, 7),
                    usage("t0", 64, 10, 1, 50, 3),
                ],
            },
            NodeReport {
                node: 1,
                tenants: vec![usage("default", 0, 2, 0, 30, 4)],
            },
        ];
        let agg = aggregate_usage(&reports);
        assert_eq!(agg.len(), 2);
        let default = agg.iter().find(|t| t.name == "default").unwrap();
        assert_eq!(
            (default.warm_mb, default.idle_mb_ms, default.invocations),
            (7, 130, 11)
        );
        let t0 = agg.iter().find(|t| t.name == "t0").unwrap();
        assert_eq!((t0.budget_mb, t0.evictions), (64, 1));
    }
}
