//! The cluster memory ledger: per-tenant warm-container accounting and
//! budgeted eviction.
//!
//! A [`TenantLedger`] tracks, for one tenant, every application whose
//! image is currently warm: when its keep-alive expires, and how many MB
//! it holds ([`crate::footprint_mb`]). From that it maintains
//!
//! * the current warm memory (`warm_mb`, a gauge),
//! * the exact loaded-memory integral in MB·ms — the §5.3 idle-memory
//!   metric, advanced event-by-event with expiries processed at their
//!   true times (the same bookkeeping `platform::report` derives from
//!   invoker integrals),
//! * and the tenant's eviction stream: when a charge pushes the tenant
//!   over its budget, victims go **by earliest keep-alive expiry**
//!   (ties by app id), through the shared [`crate::evict_until`] engine
//!   ported from `platform::cluster::make_room`.
//!
//! Everything is integer-valued and ordered deterministically, so a
//! ledger replayed from the same event stream — online, offline, or
//! across a snapshot/restore with a different shard layout — produces
//! identical charges, identical evictions, and identical integrals.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::evict::evict_until;

/// One warm container's charge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmEntry {
    /// Absolute time the keep-alive lapses (the image unloads).
    pub expiry_ms: u64,
    /// Charged footprint in MB.
    pub mb: u64,
    /// Lazy-deletion generation for the expiry heap (not persisted).
    gen: u64,
}

/// A point-in-time summary of one ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerStats {
    /// Warm memory currently charged, MB.
    pub warm_mb: u64,
    /// Warm containers currently charged.
    pub warm_apps: u64,
    /// Budget evictions so far.
    pub evictions: u64,
    /// Loaded-memory integral, MB·ms (saturating).
    pub idle_mb_ms: u64,
}

/// The persistable state of a ledger (snapshot text format payload).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LedgerExport {
    /// Warm entries as `(app, expiry_ms, mb)`, sorted by app id.
    pub warm: Vec<(String, u64, u64)>,
    /// Budget evictions so far.
    pub evictions: u64,
    /// Loaded-memory integral, MB·ms.
    pub idle_mb_ms: u64,
    /// The integral cursor (last advance time).
    pub cursor_ms: u64,
}

/// Per-tenant warm-memory ledger with budgeted eviction.
#[derive(Debug)]
pub struct TenantLedger {
    /// Budget in MB; 0 = unlimited (accounting only, never evicts).
    budget_mb: u64,
    warm_mb: u64,
    evictions: u64,
    idle_mb_ms: u64,
    cursor_ms: u64,
    warm: HashMap<String, WarmEntry>,
    /// Earliest-expiry queue with lazy deletion: `(expiry, app, gen)`;
    /// an entry is live iff its gen matches the map's.
    heap: BinaryHeap<Reverse<(u64, String, u64)>>,
    next_gen: u64,
}

impl TenantLedger {
    /// Creates an empty ledger under `budget_mb` (0 = unlimited).
    pub fn new(budget_mb: u64) -> Self {
        Self {
            budget_mb,
            warm_mb: 0,
            evictions: 0,
            idle_mb_ms: 0,
            cursor_ms: 0,
            warm: HashMap::new(),
            heap: BinaryHeap::new(),
            next_gen: 0,
        }
    }

    /// The configured budget (0 = unlimited).
    pub fn budget_mb(&self) -> u64 {
        self.budget_mb
    }

    /// Replaces the budget (0 = unlimited). Enforcement is lazy: the new
    /// budget bites on the *next* charge, never retroactively — so a
    /// cluster reconciler pushing shares mid-stream changes no verdict
    /// that has already been served, and a replay that applies the same
    /// budget updates at the same stream positions stays bit-identical.
    pub fn set_budget(&mut self, budget_mb: u64) {
        self.budget_mb = budget_mb;
    }

    /// Advances the clock to `now`: processes keep-alive expiries at
    /// their true times (each contributes to the integral up to its
    /// expiry) and extends the integral to `now`.
    ///
    /// An entry expiring exactly at `now` stays warm — mirroring
    /// [`sitw_core::Windows::classify_gap`], where an idle gap equal to
    /// the keep-alive window is still a warm hit.
    pub fn advance(&mut self, now_ms: u64) {
        while let Some(Reverse((expiry, _, _))) = self.heap.peek() {
            if *expiry >= now_ms {
                break;
            }
            let Reverse((expiry, app, gen)) = self.heap.pop().expect("peeked");
            let live = self.warm.get(&app).is_some_and(|e| e.gen == gen);
            if !live {
                continue; // Superseded by a fresher charge.
            }
            let dt = expiry.saturating_sub(self.cursor_ms);
            self.idle_mb_ms = self
                .idle_mb_ms
                .saturating_add(self.warm_mb.saturating_mul(dt));
            self.cursor_ms = self.cursor_ms.max(expiry);
            let entry = self.warm.remove(&app).expect("live entry");
            self.warm_mb -= entry.mb;
        }
        let dt = now_ms.saturating_sub(self.cursor_ms);
        self.idle_mb_ms = self
            .idle_mb_ms
            .saturating_add(self.warm_mb.saturating_mul(dt));
        self.cursor_ms = self.cursor_ms.max(now_ms);
    }

    /// Charges `app` as warm from `now_ms` until `expiry_ms` holding
    /// `mb`, then enforces the budget. Returns the apps evicted to make
    /// room, in eviction order — possibly including `app` itself, when
    /// even evicting everything else cannot fit its footprint.
    ///
    /// Two contracts worth stating precisely:
    ///
    /// * **Pre-warm windows are reserved, not free.** For a policy that
    ///   unloads and re-loads (`pre_warm_ms > 0`), the charge spans the
    ///   whole `[now, loaded_until]` interval even though the image is
    ///   unloaded during the pre-warm gap. This is deliberate and
    ///   conservative: the budget reserves the memory a scheduled
    ///   pre-warm will need, so a pre-warm load can never fail for
    ///   capacity; modeling the unloaded gap exactly would need
    ///   future-dated charges and pre-warm cancellation plumbed through
    ///   eviction.
    /// * **Ordering.** The ledger is deterministic in its *arrival
    ///   order*: the same charge sequence always produces the same
    ///   evictions (a `now_ms` behind the cursor saturates to it).
    ///   Bit-for-bit parity with the offline
    ///   [`crate::fleet_verdict_trace`] additionally requires a
    ///   tenant's events to arrive in timestamp order — true for any
    ///   single connection (the parity tests), not guaranteed when one
    ///   tenant's apps are spread across concurrent connections.
    pub fn charge(&mut self, app: &str, now_ms: u64, expiry_ms: u64, mb: u64) -> Vec<String> {
        self.advance(now_ms);
        if let Some(prev) = self.warm.get(app) {
            // Re-charge: the previous interval's integral is already
            // accounted up to `now`; only the footprint swaps.
            self.warm_mb -= prev.mb;
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        self.warm.insert(
            app.to_owned(),
            WarmEntry {
                expiry_ms: expiry_ms.max(now_ms),
                mb,
                gen,
            },
        );
        self.warm_mb += mb;
        self.heap
            .push(Reverse((expiry_ms.max(now_ms), app.to_owned(), gen)));

        let mut evicted = Vec::new();
        if self.budget_mb == 0 {
            return evicted;
        }
        // The budgeted-eviction engine shared with the platform's
        // invoker pool: victims by earliest keep-alive expiry.
        evict_until(
            self,
            |l| l.warm_mb <= l.budget_mb,
            |l| loop {
                let Reverse((_, app, gen)) = l.heap.pop()?;
                if l.warm.get(&app).is_some_and(|e| e.gen == gen) {
                    return Some(app);
                }
            },
            |l, victim| {
                let entry = l.warm.remove(&victim).expect("live victim");
                l.warm_mb -= entry.mb;
                l.evictions += 1;
                evicted.push(victim);
            },
        );
        evicted
    }

    /// The current summary.
    pub fn stats(&self) -> LedgerStats {
        LedgerStats {
            warm_mb: self.warm_mb,
            warm_apps: self.warm.len() as u64,
            evictions: self.evictions,
            idle_mb_ms: self.idle_mb_ms,
        }
    }

    /// Exports the persistable state (warm set sorted by app id).
    pub fn export(&self) -> LedgerExport {
        let mut warm: Vec<(String, u64, u64)> = self
            .warm
            .iter()
            .map(|(app, e)| (app.clone(), e.expiry_ms, e.mb))
            .collect();
        warm.sort();
        LedgerExport {
            warm,
            evictions: self.evictions,
            idle_mb_ms: self.idle_mb_ms,
            cursor_ms: self.cursor_ms,
        }
    }

    /// Rebuilds a ledger from an export. `warm_mb` is recomputed from
    /// the entries (so a caller may partition an export across shards);
    /// future expiry/eviction order is identical to the exporting
    /// ledger's because ordering depends only on `(expiry, app)`.
    pub fn restore(budget_mb: u64, export: LedgerExport) -> Self {
        let mut ledger = TenantLedger::new(budget_mb);
        ledger.evictions = export.evictions;
        ledger.idle_mb_ms = export.idle_mb_ms;
        ledger.cursor_ms = export.cursor_ms;
        for (app, expiry_ms, mb) in export.warm {
            let gen = ledger.next_gen;
            ledger.next_gen += 1;
            ledger.warm_mb += mb;
            ledger.heap.push(Reverse((expiry_ms, app.clone(), gen)));
            ledger.warm.insert(app, WarmEntry { expiry_ms, mb, gen });
        }
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbudgeted_ledger_accounts_without_evicting() {
        let mut l = TenantLedger::new(0);
        assert!(l.charge("a", 0, 1_000, 100).is_empty());
        assert!(l.charge("b", 0, 2_000, 50).is_empty());
        assert_eq!(l.stats().warm_mb, 150);
        assert_eq!(l.stats().warm_apps, 2);
        // Advance past a's expiry: a contributes 150*1000? No — both warm
        // until 1000 (150 MB·ms per ms), then only b (50) until 1500.
        l.advance(1_500);
        let s = l.stats();
        assert_eq!(s.warm_mb, 50);
        assert_eq!(s.warm_apps, 1);
        assert_eq!(s.idle_mb_ms, 150 * 1_000 + 50 * 500);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn expiry_boundary_is_inclusive_like_classify_gap() {
        let mut l = TenantLedger::new(0);
        l.charge("a", 0, 1_000, 10);
        l.advance(1_000);
        assert_eq!(l.stats().warm_apps, 1, "expiry == now stays warm");
        l.advance(1_001);
        assert_eq!(l.stats().warm_apps, 0);
    }

    #[test]
    fn budget_evicts_earliest_expiry_first_ties_by_app() {
        let mut l = TenantLedger::new(100);
        assert!(l.charge("late", 0, 5_000, 40).is_empty());
        assert!(l.charge("early", 0, 1_000, 40).is_empty());
        // 40+40+40 > 100: the earliest expiry ("early") goes first.
        let evicted = l.charge("new", 10, 9_000, 40);
        assert_eq!(evicted, vec!["early".to_owned()]);
        assert_eq!(l.stats().warm_mb, 80);
        assert_eq!(l.stats().evictions, 1);

        // Tie on expiry: lexicographically smaller app id goes first —
        // the just-charged "a" ties with "b" and evicts itself.
        let mut l = TenantLedger::new(50);
        l.charge("b", 0, 1_000, 30);
        let evicted = l.charge("a", 0, 1_000, 30);
        assert_eq!(evicted, vec!["a".to_owned()]);
        let evicted = l.charge("c", 0, 2_000, 30);
        assert_eq!(evicted, vec!["b".to_owned()]);
    }

    #[test]
    fn oversized_app_evicts_itself() {
        let mut l = TenantLedger::new(100);
        l.charge("small", 0, 10_000, 30);
        let evicted = l.charge("huge", 5, 20_000, 500);
        // Everything goes: "small" first (earlier expiry), then "huge"
        // itself — the tenant cannot hold it at all.
        assert_eq!(evicted, vec!["small".to_owned(), "huge".to_owned()]);
        assert_eq!(l.stats().warm_mb, 0);
        assert_eq!(l.stats().evictions, 2);
    }

    #[test]
    fn recharge_supersedes_stale_heap_entries() {
        let mut l = TenantLedger::new(0);
        l.charge("a", 0, 1_000, 100);
        // Re-invoke before expiry: new expiry, same footprint.
        l.charge("a", 500, 3_000, 100);
        l.advance(1_500);
        // The stale (1_000) heap entry must not expire the live charge.
        assert_eq!(l.stats().warm_apps, 1);
        assert_eq!(l.stats().warm_mb, 100);
        l.advance(3_001);
        assert_eq!(l.stats().warm_apps, 0);
        // Integral: 100 MB × 3000 ms (warm the whole time).
        assert_eq!(l.stats().idle_mb_ms, 100 * 3_000);
    }

    #[test]
    fn export_restore_continues_bit_for_bit() {
        let mut a = TenantLedger::new(120);
        a.charge("x", 0, 1_000, 50);
        a.charge("y", 100, 4_000, 50);
        a.charge("z", 200, 2_000, 50); // Evicts x (earliest expiry).
        let export = a.export();
        let mut b = TenantLedger::restore(120, export.clone());
        assert_eq!(b.export(), export);
        // Drive both forward identically.
        let ea = a.charge("w", 300, 5_000, 60);
        let eb = b.charge("w", 300, 5_000, 60);
        assert_eq!(ea, eb);
        a.advance(10_000);
        b.advance(10_000);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.export(), b.export());
    }

    #[test]
    fn partitioned_restore_recomputes_warm_mb() {
        let mut l = TenantLedger::new(0);
        l.charge("a", 0, 1_000, 10);
        l.charge("b", 0, 2_000, 20);
        let mut export = l.export();
        export.warm.retain(|(app, _, _)| app == "b");
        let part = TenantLedger::restore(0, export);
        assert_eq!(part.stats().warm_mb, 20);
        assert_eq!(part.stats().warm_apps, 1);
    }
}
