//! SITW-BIN v1 protocol conformance: codec round-trip fuzzing (the CI
//! "protocol-conformance" step runs this file by name), partial-I/O
//! reassembly against a live daemon, short-write handling on batched
//! replies, and the typed-error-frame behaviour that keeps connections
//! usable after malformed or oversized frames.

use std::io::{Read, Write};
use std::net::TcpStream;

use proptest::prelude::*;
use sitw_serve::wire::{
    self, decode_request_frame, decode_server_frame, encode_request_frame, BinErrorCode, BinReply,
    FrameDecode, ServerFrameDecode,
};
use sitw_serve::{ServeConfig, Server};
use sitw_sim::PolicySpec;

// ---------------------------------------------------------------------
// Codec fuzz (pure, no sockets).

/// Char pool mixing ASCII with 2-, 3-, and 4-byte UTF-8 sequences.
const APP_CHARS: [char; 16] = [
    'a', 'z', '0', '9', '-', '_', '.', ' ', 'é', 'ß', 'λ', '中', '功', '能', '🚀', '𝕏',
];

/// Timestamp edge values, indexed by a fuzzed selector.
fn edge_ts(selector: u64, raw: u64) -> u64 {
    match selector % 5 {
        0 => 0,
        1 => 1,
        2 => u64::MAX,
        3 => u64::MAX - 1,
        _ => raw,
    }
}

fn build_records(shape: &[(Vec<usize>, u64, u64)]) -> Vec<(String, u64)> {
    shape
        .iter()
        .map(|(chars, sel, raw)| {
            let mut app: String = chars
                .iter()
                .map(|&i| APP_CHARS[i % APP_CHARS.len()])
                .collect();
            if app.is_empty() {
                app.push('a'); // Non-empty by protocol rule.
            }
            (app, edge_ts(*sel, *raw))
        })
        .collect()
}

proptest! {
    /// Any batch of records — arbitrary UTF-8 app names, edge-value
    /// timestamps — round-trips bit-for-bit through the request codec.
    #[test]
    fn request_frame_roundtrips(
        lens in prop::collection::vec(0usize..24, 0..40),
        sels in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let shape: Vec<(Vec<usize>, u64, u64)> = lens
            .iter()
            .zip(&sels)
            .map(|(&n, &sel)| (((sel as usize)..(sel as usize) + n).collect(), sel, sel.wrapping_mul(0x9E37)))
            .collect();
        let records = build_records(&shape);
        let borrowed: Vec<(&str, u64)> = records.iter().map(|(a, t)| (a.as_str(), *t)).collect();
        let mut frame = Vec::new();
        encode_request_frame(&mut frame, &borrowed);
        match decode_request_frame(&frame) {
            FrameDecode::Request { records: got, consumed, .. } => {
                prop_assert_eq!(consumed, frame.len());
                prop_assert_eq!(got.len(), records.len());
                for (g, (app, ts)) in got.iter().zip(&records) {
                    prop_assert_eq!(&g.app, app);
                    prop_assert_eq!(g.ts, *ts);
                }
            }
            other => prop_assert!(false, "decode failed: {:?}", other),
        }
    }

    /// Every proper prefix of a valid frame is `Incomplete` — the
    /// incremental parser never misfires on a split frame.
    #[test]
    fn truncated_frames_are_incomplete(
        lens in prop::collection::vec(1usize..12, 1..8),
        cut_frac in 0u64..10_000,
    ) {
        let shape: Vec<(Vec<usize>, u64, u64)> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| ((i..i + n).collect(), i as u64, (i as u64) << 20))
            .collect();
        let records = build_records(&shape);
        let borrowed: Vec<(&str, u64)> = records.iter().map(|(a, t)| (a.as_str(), *t)).collect();
        let mut frame = Vec::new();
        encode_request_frame(&mut frame, &borrowed);
        let cut = (cut_frac as usize * frame.len()) / 10_000; // < len.
        prop_assert!(
            matches!(decode_request_frame(&frame[..cut]), FrameDecode::Incomplete),
            "prefix of {} / {} bytes must be Incomplete", cut, frame.len()
        );
    }

    /// Frames with a *valid envelope* (magic, version, kind, consistent
    /// payload_len) but arbitrary payload bytes never panic: they parse
    /// or yield a skippable typed error. Random garbage almost never
    /// forms a valid header, so this targets the record parser directly
    /// (regression: an oversized first record used to drive the next
    /// record's app_len read out of bounds).
    #[test]
    fn arbitrary_payloads_under_valid_headers_never_panic(
        payload in prop::collection::vec(0u64..256, 0..128),
        count in 0u64..64,
    ) {
        let mut frame = vec![wire::BIN_MAGIC, wire::BIN_VERSION, wire::FRAME_REQUEST];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&(count as u32).to_le_bytes());
        frame.extend(payload.iter().map(|&b| b as u8));
        match decode_request_frame(&frame) {
            FrameDecode::Request { records, consumed, .. } => {
                prop_assert_eq!(consumed, frame.len());
                prop_assert_eq!(records.len(), count as usize);
            }
            FrameDecode::Incomplete => prop_assert!(false, "complete frame reported Incomplete"),
            FrameDecode::Error { skip, .. } => {
                // An intact envelope must always be skippable.
                prop_assert_eq!(skip, Some(frame.len()));
            }
            FrameDecode::Control { .. } => {
                prop_assert!(false, "request frame decoded as control")
            }
        }
    }

    /// Garbage after the magic byte never panics the decoder: it ends in
    /// Incomplete (needs more) or a typed Error, and any reported skip
    /// stays within the declared frame.
    #[test]
    fn garbage_frames_error_without_panicking(
        body in prop::collection::vec(0u64..256, 0..64),
    ) {
        let mut frame = vec![wire::BIN_MAGIC];
        frame.extend(body.iter().map(|&b| b as u8));
        match decode_request_frame(&frame) {
            FrameDecode::Request { records, consumed, .. } => {
                // Only reachable when the bytes happen to form a valid
                // frame; sanity-check the invariants.
                prop_assert!(consumed <= frame.len());
                prop_assert!(records.len() <= wire::MAX_BATCH);
            }
            FrameDecode::Incomplete => {}
            FrameDecode::Error { skip, .. } => {
                if let Some(n) = skip {
                    prop_assert!(n >= wire::BIN_HEADER_LEN);
                    prop_assert!(n <= wire::BIN_HEADER_LEN + wire::MAX_FRAME_PAYLOAD);
                }
            }
            FrameDecode::Control { .. } => {
                // Reachable only when the random bytes form a valid
                // control frame; nothing further to assert.
            }
        }
        // The server-frame decoder must be just as panic-free on the
        // same bytes (clients face a hostile network too).
        let _ = decode_server_frame(&frame);
    }
}

// ---------------------------------------------------------------------
// Live-daemon helpers.

fn start_server(shards: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    })
    .expect("server start")
}

/// Reads one server frame from `stream`, accumulating into `buf`.
fn read_frame(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ServerFrameDecode {
    loop {
        match decode_server_frame(buf) {
            ServerFrameDecode::Incomplete => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk).expect("read");
                assert!(n > 0, "server closed mid-frame");
                buf.extend_from_slice(&chunk[..n]);
            }
            done => {
                let consumed = match &done {
                    ServerFrameDecode::Reply { consumed, .. }
                    | ServerFrameDecode::Error { consumed, .. } => *consumed,
                    other => panic!("{other:?}"),
                };
                buf.drain(..consumed);
                return done;
            }
        }
    }
}

fn expect_reply(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Vec<BinReply> {
    match read_frame(stream, buf) {
        ServerFrameDecode::Reply { records, .. } => records,
        other => panic!("expected reply frame, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Partial I/O: frames fragmented at every byte boundary.

#[test]
fn frame_written_one_byte_at_a_time_is_served() {
    let server = start_server(2);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let mut frame = Vec::new();
    encode_request_frame(
        &mut frame,
        &[("app-α-1", 0), ("app-α-1", 60_000), ("β", 1_000)],
    );
    // One write + flush per byte: the daemon sees the worst possible
    // fragmentation and must reassemble across all of it.
    for &b in &frame {
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
    }
    let mut buf = Vec::new();
    let records = expect_reply(&mut stream, &mut buf);
    assert_eq!(records.len(), 3);
    assert!(matches!(records[0], BinReply::Verdict { cold: true, .. }));
    assert!(matches!(records[1], BinReply::Verdict { cold: false, .. }));
    assert!(matches!(records[2], BinReply::Verdict { cold: true, .. }));
    server.shutdown().unwrap();
}

#[test]
fn frames_split_at_every_boundary_across_two_writes() {
    // For every split point of a two-record frame, the tail written
    // after a delay still produces the same reply. One connection per
    // split keeps per-app timestamps independent.
    let server = start_server(2);
    // Zero-padded names keep every split's frame the same length, so
    // `1..frame.len()` covers identical boundaries each round; unique
    // names keep each round's first invocation cold (policy state is
    // app-keyed and server-wide, not per-connection).
    let frame_for = |split: usize| {
        let mut frame = Vec::new();
        let a = format!("sp-{split:03}-a");
        let b = format!("sp-{split:03}-功");
        encode_request_frame(&mut frame, &[(a.as_str(), 5), (b.as_str(), 7)]);
        frame
    };
    let frame_len = frame_for(0).len();
    for split in 1..frame_len {
        let frame = frame_for(split);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&frame[..split]).unwrap();
        stream.flush().unwrap();
        // Let the server observe the partial frame (its read timeout is
        // 50 ms; any sleep forces at least one fill round).
        std::thread::sleep(std::time::Duration::from_millis(2));
        stream.write_all(&frame[split..]).unwrap();
        let mut buf = Vec::new();
        let records = expect_reply(&mut stream, &mut buf);
        assert_eq!(records.len(), 2, "split at {split}");
        assert!(
            matches!(records[0], BinReply::Verdict { cold: true, .. }),
            "split at {split}: fresh connection, first sight of the app"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn large_batched_reply_survives_slow_draining_client() {
    // A batch big enough that the reply (9 bytes/record + header)
    // overflows socket buffers if unread; the client drains it in tiny
    // chunks while the server's write_all handles the short writes.
    let server = start_server(4);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let n = 4_000usize;
    let records: Vec<(String, u64)> = (0..n)
        .map(|i| (format!("bulk-{:04}", i % 997), (i as u64) * 10))
        .collect();
    let borrowed: Vec<(&str, u64)> = records.iter().map(|(a, t)| (a.as_str(), *t)).collect();
    let mut frame = Vec::new();
    encode_request_frame(&mut frame, &borrowed);
    stream.write_all(&frame).unwrap();

    let mut buf = Vec::new();
    let expected = wire::BIN_HEADER_LEN + n * wire::REPLY_RECORD_LEN;
    let mut chunk = [0u8; 7]; // Deliberately tiny reads.
    while buf.len() < expected {
        let got = stream.read(&mut chunk).unwrap();
        assert!(got > 0, "server closed mid-reply");
        buf.extend_from_slice(&chunk[..got]);
    }
    match decode_server_frame(&buf) {
        ServerFrameDecode::Reply { records, consumed } => {
            assert_eq!(consumed, expected);
            assert_eq!(records.len(), n);
            assert!(records
                .iter()
                .all(|r| matches!(r, BinReply::Verdict { .. })));
        }
        other => panic!("{other:?}"),
    }
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Typed error frames and connection survival (regression: before
// SITW-BIN existed, any non-HTTP byte tore the connection down with no
// answer at all; malformed frames must now be answered and survived).

#[test]
fn malformed_frame_gets_typed_error_and_connection_stays_usable() {
    let server = start_server(2);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // Intact envelope, empty app name inside: Malformed, recoverable.
    // (A pad byte keeps the payload at the minimum record size, so the
    // header-level count/payload check passes and the record parser is
    // the one that rejects.)
    let mut payload = vec![0u8, 0];
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.push(0xAA);
    let mut bad = vec![wire::BIN_MAGIC, wire::BIN_VERSION, wire::FRAME_REQUEST];
    bad.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bad.extend_from_slice(&1u32.to_le_bytes());
    bad.extend_from_slice(&payload);
    stream.write_all(&bad).unwrap();

    let mut buf = Vec::new();
    match read_frame(&mut stream, &mut buf) {
        ServerFrameDecode::Error { code, detail, .. } => {
            assert_eq!(code, BinErrorCode::Malformed);
            assert!(detail.contains("empty app"), "{detail}");
        }
        other => panic!("{other:?}"),
    }

    // The same connection still serves: a good frame, then JSON, then
    // the metrics endpoint — full protocol mixing after the error.
    let mut good = Vec::new();
    encode_request_frame(&mut good, &[("recovered", 1)]);
    stream.write_all(&good).unwrap();
    let records = expect_reply(&mut stream, &mut buf);
    assert!(matches!(records[0], BinReply::Verdict { cold: true, .. }));

    let body = br#"{"app":"recovered","ts":2}"#;
    stream
        .write_all(
            format!(
                "POST /invoke HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    stream.write_all(body).unwrap();
    let mut http = [0u8; 1024];
    let n = stream.read(&mut http).unwrap();
    let text = String::from_utf8_lossy(&http[..n]);
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.contains("\"verdict\":\"warm\""), "{text}");

    // The error is counted; only the good frame counts as served.
    let proto = server.metrics().proto;
    assert_eq!(proto.proto_errors, 1);
    assert_eq!(proto.frames, 1);
    assert_eq!(proto.batched_decisions, 1);
    server.shutdown().unwrap();
}

#[test]
fn oversized_batch_gets_typed_error_and_connection_stays_usable() {
    let server = start_server(1);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // count > MAX_BATCH with a small, intact envelope.
    let mut bad = vec![wire::BIN_MAGIC, wire::BIN_VERSION, wire::FRAME_REQUEST];
    bad.extend_from_slice(&16u32.to_le_bytes());
    bad.extend_from_slice(&((wire::MAX_BATCH + 1) as u32).to_le_bytes());
    bad.extend_from_slice(&[0u8; 16]);
    stream.write_all(&bad).unwrap();

    let mut buf = Vec::new();
    match read_frame(&mut stream, &mut buf) {
        ServerFrameDecode::Error { code, .. } => assert_eq!(code, BinErrorCode::Oversized),
        other => panic!("{other:?}"),
    }
    let mut good = Vec::new();
    encode_request_frame(&mut good, &[("still-alive", 3)]);
    stream.write_all(&good).unwrap();
    let records = expect_reply(&mut stream, &mut buf);
    assert_eq!(records.len(), 1);
    assert_eq!(server.metrics().proto.proto_errors, 1);
    server.shutdown().unwrap();
}

#[test]
fn unrecoverable_frame_errors_answer_then_close() {
    let server = start_server(1);

    // Bad version: typed error frame, then FIN.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(&[
            wire::BIN_MAGIC,
            99,
            wire::FRAME_REQUEST,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
        ])
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap(); // Returns only on FIN.
    match decode_server_frame(&raw) {
        ServerFrameDecode::Error { code, .. } => assert_eq!(code, BinErrorCode::BadVersion),
        other => panic!("{other:?}"),
    }

    // Payload length beyond the 1 MiB cap: same fate (mirrors HTTP 413).
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut huge = vec![wire::BIN_MAGIC, wire::BIN_VERSION, wire::FRAME_REQUEST];
    huge.extend_from_slice(&((wire::MAX_FRAME_PAYLOAD + 1) as u32).to_le_bytes());
    huge.extend_from_slice(&1u32.to_le_bytes());
    stream.write_all(&huge).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    match decode_server_frame(&raw) {
        ServerFrameDecode::Error { code, .. } => assert_eq!(code, BinErrorCode::Oversized),
        other => panic!("{other:?}"),
    }

    assert_eq!(server.metrics().proto.proto_errors, 2);
    server.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Server-side frame pipelining: many frames written back-to-back without
// reading a single reply; the server decodes and dispatches them while
// earlier batches are still in flight, and replies MUST come back in
// frame order (the pipelining ordering invariant).

#[test]
fn pipelined_frames_get_replies_in_frame_order() {
    let server = start_server(4);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // 60 single-record frames (the bin:batch=1 shape that used to pay a
    // synchronous round trip each), all written before any read. Each
    // frame uses its own app with a strictly increasing timestamp, so
    // frame k's verdict is uniquely identifiable: the first invocation
    // of app k is cold, the second (sent in frame k + 30) is warm with
    // app k's keep-alive — distinct per k via fixed policy? One policy
    // for all; identify by cold/warm sequence instead: frames 0..30 are
    // first-sight colds, frames 30..60 revisit the same apps in order
    // and must be warm.
    let n = 30u64;
    let mut batch = Vec::new();
    for k in 0..n {
        encode_request_frame(&mut batch, &[(format!("pipe-{k:02}").as_str(), 0)]);
    }
    for k in 0..n {
        encode_request_frame(&mut batch, &[(format!("pipe-{k:02}").as_str(), 60_000 + k)]);
    }
    stream.write_all(&batch).unwrap();

    let mut buf = Vec::new();
    for k in 0..n {
        let records = expect_reply(&mut stream, &mut buf);
        assert_eq!(records.len(), 1, "frame {k}");
        assert!(
            matches!(records[0], BinReply::Verdict { cold: true, .. }),
            "frame {k} must be the cold first sight of app {k}: {:?}",
            records[0]
        );
    }
    for k in 0..n {
        let records = expect_reply(&mut stream, &mut buf);
        assert!(
            matches!(records[0], BinReply::Verdict { cold: false, .. }),
            "frame {} must be the warm revisit of app {k}: {:?}",
            n + k,
            records[0]
        );
    }
    let proto = server.metrics().proto;
    assert_eq!(proto.frames, 2 * n);
    assert_eq!(proto.batched_decisions, 2 * n);
    server.shutdown().unwrap();
}

#[test]
fn pipelined_frames_interleave_with_errors_in_order() {
    // A malformed frame sandwiched between good frames, all written
    // back-to-back: the typed error frame must come back exactly between
    // the two replies (errors join the pipeline queue, they do not jump
    // it).
    let server = start_server(2);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let mut batch = Vec::new();
    encode_request_frame(&mut batch, &[("inter-a", 1)]);
    // Malformed-but-delimited: empty app with an intact envelope.
    let mut payload = vec![0u8, 0];
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.push(0xAA);
    batch.extend_from_slice(&[wire::BIN_MAGIC, wire::BIN_VERSION, wire::FRAME_REQUEST]);
    batch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    batch.extend_from_slice(&1u32.to_le_bytes());
    batch.extend_from_slice(&payload);
    encode_request_frame(&mut batch, &[("inter-b", 2)]);
    stream.write_all(&batch).unwrap();

    let mut buf = Vec::new();
    let first = expect_reply(&mut stream, &mut buf);
    assert!(matches!(first[0], BinReply::Verdict { cold: true, .. }));
    match read_frame(&mut stream, &mut buf) {
        ServerFrameDecode::Error { code, .. } => assert_eq!(code, BinErrorCode::Malformed),
        other => panic!("expected the error frame second, got {other:?}"),
    }
    let third = expect_reply(&mut stream, &mut buf);
    assert!(matches!(third[0], BinReply::Verdict { cold: true, .. }));
    server.shutdown().unwrap();
}

#[test]
fn out_of_order_records_are_per_record_errors_not_frame_errors() {
    let server = start_server(1);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let mut frame = Vec::new();
    encode_request_frame(
        &mut frame,
        &[("ooo", 600_000), ("ooo", 60_000), ("ooo", 700_000)],
    );
    stream.write_all(&frame).unwrap();
    let mut buf = Vec::new();
    let records = expect_reply(&mut stream, &mut buf);
    assert!(matches!(records[0], BinReply::Verdict { cold: true, .. }));
    assert_eq!(records[1], BinReply::OutOfOrder { last_ts: 600_000 });
    assert!(matches!(records[2], BinReply::Verdict { cold: false, .. }));
    // Rejections are data, not protocol errors.
    assert_eq!(server.metrics().proto.proto_errors, 0);
    server.shutdown().unwrap();
}
