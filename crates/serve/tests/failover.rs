//! The ISSUE-10 acceptance tests: primary → warm-standby failover is
//! invisible in the decision stream.
//!
//! A multi-tenant fleet replay (mixed JSON and SITW-BIN v2 blocks) runs
//! against a 2-shard primary while a follower pulls the replication
//! stream; the primary dies mid-trace, the follower promotes into a
//! 5-shard serving daemon, and the remaining events replay against it.
//! Verdicts, windows, and the per-tenant ledger integrals must be
//! **bit-identical** to `sitw_sim::fleet_verdict_trace` over the
//! uninterrupted stream — no snapshot file is ever written, so every
//! byte of state crosses only the replication wire. A second test
//! drives the dead-primary auto-promotion policy end to end.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sitw_fleet::{footprint_mb, FleetEvent, TenantId, TenantRegistry};
use sitw_serve::wire::{self, BinReply, ServerFrameDecode};
use sitw_serve::{FollowConfig, Follower, ServeConfig, Server, TenantConfig};
use sitw_sim::{fleet_verdict_trace, FleetVerdict, PolicySpec};
use sitw_trace::{app_invocations, build_population, PopulationConfig, TraceConfig, DAY_MS};

/// One observed verdict, protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Observed {
    cold: bool,
    prewarm_load: bool,
    evicted: bool,
    kind: &'static str,
    pre_warm_ms: u64,
    keep_alive_ms: u64,
}

/// Blocking JSON/HTTP client.
struct JsonClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl JsonClient {
    fn connect(addr: SocketAddr) -> JsonClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        JsonClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let req = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("write");
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
                let status: u16 = header
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status");
                let content_length: usize = header
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let total = header_end + 4 + content_length;
                while self.buf.len() < total {
                    self.fill();
                }
                let body = String::from_utf8_lossy(&self.buf[header_end + 4..total]).into_owned();
                self.buf.drain(..total);
                return (status, body);
            }
            self.fill();
        }
    }

    fn invoke(&mut self, tenant: Option<&str>, app: &str, ts: u64) -> (u16, String) {
        let body = match tenant {
            Some(t) => format!("{{\"tenant\":\"{t}\",\"app\":\"{app}\",\"ts\":{ts}}}"),
            None => format!("{{\"app\":\"{app}\",\"ts\":{ts}}}"),
        };
        self.request("POST", "/invoke", &body)
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed connection unexpectedly");
        self.buf.extend_from_slice(&chunk[..n]);
    }
}

fn parse_observed(body: &str) -> Observed {
    let cold = body.contains("\"verdict\":\"cold\"");
    assert!(cold || body.contains("\"verdict\":\"warm\""), "{body}");
    let field = |name: &str| -> u64 {
        let key = format!("\"{name}\":");
        let rest = &body[body
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {body}"))
            + key.len()..];
        rest.chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let kind_key = "\"kind\":\"";
    let rest = &body[body.find(kind_key).unwrap() + kind_key.len()..];
    let kind = &rest[..rest.find('"').unwrap()];
    Observed {
        cold,
        prewarm_load: body.contains("\"prewarm_load\":true"),
        evicted: body.contains("\"evicted\":true"),
        kind: wire::kind_str(wire::kind_from_str(kind).unwrap()),
        pre_warm_ms: field("pre_warm_ms"),
        keep_alive_ms: field("keep_alive_ms"),
    }
}

/// Blocking SITW-BIN v2 client.
struct BinClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BinClient {
    fn connect(addr: SocketAddr) -> BinClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        BinClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn batch(&mut self, records: &[(u16, &str, u64)]) -> Vec<BinReply> {
        let mut frame = Vec::new();
        wire::encode_request_frame_v2(&mut frame, records);
        self.stream.write_all(&frame).expect("write frame");
        loop {
            match wire::decode_server_frame(&self.buf) {
                ServerFrameDecode::Reply { records, consumed } => {
                    self.buf.drain(..consumed);
                    return records;
                }
                ServerFrameDecode::Incomplete => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).expect("read");
                    assert!(n > 0, "server closed mid-frame");
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                other => panic!("unexpected server frame: {other:?}"),
            }
        }
    }
}

/// Tenant layout of the test fleet (same shape as the fleet-parity
/// tests: a budgeted hybrid tenant squeezed enough to guarantee
/// evictions, so the ledger integrals are non-trivial across failover).
struct Fleet {
    default_policy: PolicySpec,
    tenants: Vec<TenantConfig>,
}

fn fleet(metered_apps: &[String]) -> Fleet {
    let footprints: Vec<u64> = metered_apps
        .iter()
        .map(|a| footprint_mb("metered", a))
        .collect();
    let mut sorted = footprints.clone();
    sorted.sort_unstable();
    let metered_budget = sorted[sorted.len() - 1] + sorted[sorted.len() - 2];
    Fleet {
        default_policy: PolicySpec::fixed_minutes(10),
        tenants: vec![
            TenantConfig {
                name: "fast".into(),
                policy: PolicySpec::fixed_minutes(20),
                budget_mb: 0,
            },
            TenantConfig {
                name: "metered".into(),
                policy: PolicySpec::parse("hybrid").unwrap(),
                budget_mb: metered_budget,
            },
            TenantConfig {
                name: "prod".into(),
                policy: PolicySpec::parse("production").unwrap(),
                budget_mb: 0,
            },
        ],
    }
}

/// One workload entry: JSON tenant name (None = default), wire tenant
/// id, app, timestamp.
type WorkloadEvent = (Option<&'static str>, TenantId, String, u64);

/// The merged multi-tenant workload: multi-day streams so production-day
/// rotation crosses the failover.
fn workload() -> (Vec<WorkloadEvent>, Vec<String>) {
    let tenant_of = |idx: usize| -> (Option<&'static str>, TenantId) {
        match idx % 4 {
            0 => (None, 0),
            1 => (Some("fast"), 1),
            2 => (Some("metered"), 2),
            _ => (Some("prod"), 3),
        }
    };
    let population = build_population(&PopulationConfig {
        num_apps: 26,
        seed: 5151,
    });
    let cfg = TraceConfig {
        horizon_ms: 2 * DAY_MS,
        cap_per_day: 120.0,
        seed: 31,
    };
    let mut merged: Vec<WorkloadEvent> = Vec::new();
    let mut metered_apps: Vec<String> = Vec::new();
    for (idx, app) in population.apps.iter().enumerate() {
        let (name, tid) = tenant_of(idx);
        let app_id = app.id.to_string();
        if tid == 2 {
            metered_apps.push(app_id.clone());
        }
        for ts in app_invocations(app, &cfg) {
            merged.push((name, tid, app_id.clone(), ts));
        }
    }
    merged.sort_by(|a, b| (a.3, a.1, &a.2).cmp(&(b.3, b.1, &b.2)));
    assert!(
        merged.len() >= 1_000,
        "workload too small: {}",
        merged.len()
    );
    assert!(metered_apps.len() >= 4, "need several metered apps");
    (merged, metered_apps)
}

/// Replays `merged` in alternating protocol blocks (17 JSON requests,
/// then one 29-record BIN frame), appending observations in order.
fn replay_mixed(addr: SocketAddr, merged: &[WorkloadEvent], online: &mut Vec<Observed>) {
    let mut json = JsonClient::connect(addr);
    let mut bin = BinClient::connect(addr);
    let mut i = 0usize;
    let mut use_json = true;
    while i < merged.len() {
        if use_json {
            for (name, _, app, ts) in merged[i..merged.len().min(i + 17)].iter() {
                let (status, body) = json.invoke(*name, app, *ts);
                assert_eq!(status, 200, "{body}");
                online.push(parse_observed(&body));
            }
            i = merged.len().min(i + 17);
        } else {
            let block = &merged[i..merged.len().min(i + 29)];
            let records: Vec<(u16, &str, u64)> = block
                .iter()
                .map(|(_, tid, app, ts)| (*tid, app.as_str(), *ts))
                .collect();
            let replies = bin.batch(&records);
            assert_eq!(replies.len(), block.len());
            for reply in replies {
                match reply {
                    BinReply::Verdict {
                        cold,
                        prewarm_load,
                        evicted,
                        kind,
                        pre_warm_ms,
                        keep_alive_ms,
                    } => online.push(Observed {
                        cold,
                        prewarm_load,
                        evicted,
                        kind: wire::kind_str(kind),
                        pre_warm_ms: pre_warm_ms as u64,
                        keep_alive_ms: keep_alive_ms as u64,
                    }),
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            i = merged.len().min(i + 29);
        }
        use_json = !use_json;
    }
}

/// Waits until the follower's replica provably contains every mutation
/// the (now quiescent) primary holds: once a round commits *without*
/// bumping the epoch, that round was a clean commit — the primary had
/// nothing dirty left to stream.
fn wait_caught_up(follower: &Follower) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut prev = follower.status();
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let s = follower.status();
        if s.epoch > 0 && s.rounds > prev.rounds && s.epoch == prev.epoch {
            return;
        }
        assert!(Instant::now() < deadline, "follower never caught up: {s:?}");
        prev = s;
    }
}

/// Reads one per-tenant counter out of a Prometheus scrape.
fn scraped(text: &str, family: &str, tenant: &str) -> u64 {
    let needle = format!("{family}{{tenant=\"{tenant}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("{needle}missing from scrape"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn fleet_failover_replay_matches_uninterrupted_fleet_trace() {
    let (merged, metered_apps) = workload();
    let fleet = fleet(&metered_apps);
    let half = merged.len() / 2;

    // The primary writes no snapshot file: everything the promoted
    // daemon serves from must have crossed the replication wire.
    let primary = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: fleet.default_policy.clone(),
        tenants: fleet.tenants.clone(),
        ..ServeConfig::default()
    })
    .unwrap();

    // Warm standby, promoting into a *5-shard* fleet — failover parity
    // must hold across a shard-count change, like restore parity does.
    let follower = Follower::start(FollowConfig {
        primary_addr: primary.addr().to_string(),
        pull_interval: Duration::from_millis(15),
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 5,
            policy: fleet.default_policy.clone(),
            tenants: fleet.tenants.clone(),
            ..ServeConfig::default()
        },
        ..FollowConfig::default()
    })
    .unwrap();

    // Phase 1: first half against the primary, replication running
    // underneath the whole time.
    let mut online: Vec<Observed> = Vec::new();
    replay_mixed(primary.addr(), &merged[..half], &mut online);
    wait_caught_up(&follower);

    // No stop-the-world: every one of the `half` decisions flowed through
    // the decide-stage histograms while replication rounds (including at
    // least one full sync) were being streamed.
    let report = primary.metrics();
    assert!(
        report.repl.rounds >= 2,
        "repl rounds: {}",
        report.repl.rounds
    );
    assert!(report.repl.full_syncs >= 1);
    assert!(report.repl.bytes_streamed > 0);
    let stages = report.stage_hists();
    let (name, decide) = &stages[3];
    assert_eq!(*name, "decide");
    assert_eq!(
        decide.json.count() + decide.bin.count(),
        half as u64,
        "replication must never block or drop decisions"
    );

    // The follower's control surface reports the live replication state.
    let mut ctl = JsonClient::connect(follower.addr());
    let (status, health) = ctl.request("GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\":\"following\""), "{health}");
    assert!(!health.contains("\"epoch\":0,"), "synced: {health}");
    let (status, scrape) = ctl.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        scrape.contains("sitw_serve_repl_full_syncs_total"),
        "repl families on the follower scrape"
    );

    // The primary dies. Its final snapshot is discarded — crash
    // semantics: the replica alone must carry the state forward.
    let _ = primary.shutdown().unwrap();

    // Supervised promotion over the operator endpoint.
    let (status, body) = ctl.request("POST", "/admin/promote", "");
    assert_eq!(status, 200, "{body}");
    let key = "\"serve_addr\":\"";
    let rest = &body[body.find(key).expect("serve_addr in promote reply") + key.len()..];
    let serve_addr: SocketAddr = rest[..rest.find('"').unwrap()].parse().unwrap();
    assert_eq!(follower.status().promoted, Some(serve_addr));
    let (_, health) = ctl.request("GET", "/healthz", "");
    assert!(health.contains("\"status\":\"promoted\""), "{health}");

    // Phase 2: the rest of the trace against the promoted daemon.
    replay_mixed(serve_addr, &merged[half..], &mut online);

    // Offline ground truth: the uninterrupted fleet simulator.
    let mut registry = TenantRegistry::new(fleet.default_policy.clone());
    for t in &fleet.tenants {
        registry
            .register(&t.name, t.policy.clone(), t.budget_mb)
            .unwrap();
    }
    let events: Vec<FleetEvent> = merged
        .iter()
        .map(|(_, tid, app, ts)| FleetEvent {
            tenant: *tid,
            app: app.clone(),
            ts: *ts,
        })
        .collect();
    let offline = fleet_verdict_trace(&events, &registry);

    assert_eq!(online.len(), offline.len());
    let mut evicted_seen = 0u64;
    for (i, (on, off)) in online.iter().zip(&offline).enumerate() {
        let off: &FleetVerdict = off
            .as_ref()
            .unwrap_or_else(|e| panic!("offline rejected event {i} ({:?}): {e:?}", events[i]));
        let ctx = || format!("event {i} = {:?}", events[i]);
        assert_eq!(on.cold, off.cold, "cold mismatch at {}", ctx());
        assert_eq!(on.prewarm_load, off.prewarm_load, "prewarm at {}", ctx());
        assert_eq!(on.evicted, off.evicted, "evicted at {}", ctx());
        assert_eq!(on.kind, wire::kind_str(off.kind), "kind at {}", ctx());
        assert_eq!(
            (on.pre_warm_ms, on.keep_alive_ms),
            (off.windows.pre_warm_ms, off.windows.keep_alive_ms),
            "windows at {}",
            ctx()
        );
        if off.evicted {
            evicted_seen += 1;
        }
    }
    assert!(evicted_seen > 0, "the budgeted tenant must see evictions");

    // Ledger integrals: the promoted daemon's per-tenant counters match
    // the uninterrupted offline ledgers exactly — the idle-memory
    // integral (MB·ms) is the paper's §5.3 cost metric, so losing even
    // one charge interval across the failover would show up here.
    let mut sim = sitw_sim::FleetSim::new(&registry);
    for e in &events {
        sim.step(e.tenant, &e.app, e.ts).unwrap();
    }
    let mut serve_client = JsonClient::connect(serve_addr);
    let (status, text) = serve_client.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    // Invocation counters are observability state, not policy state —
    // they are not replicated (same as restore). The promoted daemon
    // must have served exactly the phase-2 events, no more, no fewer.
    let mut event_counts: HashMap<TenantId, u64> = HashMap::new();
    for e in &events[half..] {
        *event_counts.entry(e.tenant).or_default() += 1;
    }
    for (name, tid) in [("default", 0u16), ("fast", 1), ("metered", 2), ("prod", 3)] {
        let ledger = sim.ledger(tid).unwrap().stats();
        assert_eq!(
            scraped(&text, "sitw_serve_tenant_evictions_total", name),
            ledger.evictions,
            "{name}: evictions across failover"
        );
        // Named tenants route whole to one shard, so their single-writer
        // ledgers must survive the failover bit-for-bit. The default
        // tenant's ledger is sharded (one cursor per shard), so its
        // integral is a per-shard approximation that no shard-count
        // change preserves exactly — restore parity has the same bound.
        if tid != 0 {
            assert_eq!(
                scraped(&text, "sitw_serve_tenant_idle_mb_ms_total", name),
                ledger.idle_mb_ms,
                "{name}: idle-memory integral across failover"
            );
        }
        assert_eq!(
            scraped(&text, "sitw_serve_tenant_invocations_total", name),
            event_counts[&tid],
            "{name}: no decision lost or duplicated"
        );
    }

    // The lifecycle trail: at least one full sync and the promotion.
    let (_, ev) = ctl.request("GET", "/debug/events", "");
    assert!(ev.contains("\"kind\":\"repl-sync\""), "{ev}");
    assert!(ev.contains("\"kind\":\"promotion\""), "{ev}");
    assert!(ev.contains("operator request"), "{ev}");

    // Shutting the follower down drains the promoted server gracefully.
    let final_snap = follower.shutdown().unwrap();
    assert!(final_snap.is_some(), "promoted server yields its snapshot");
}

#[test]
fn follower_auto_promotes_when_primary_dies_silently() {
    let population = build_population(&PopulationConfig {
        num_apps: 10,
        seed: 808,
    });
    let cfg = TraceConfig {
        horizon_ms: DAY_MS,
        cap_per_day: 150.0,
        seed: 9,
    };
    let mut per_app: HashMap<String, Vec<u64>> = HashMap::new();
    let mut merged: Vec<(String, u64)> = Vec::new();
    for app in &population.apps {
        let events = app_invocations(app, &cfg);
        if events.is_empty() {
            continue;
        }
        let name = app.id.to_string();
        for &ts in &events {
            merged.push((name.clone(), ts));
        }
        per_app.insert(name, events);
    }
    merged.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
    assert!(merged.len() >= 200, "workload too small: {}", merged.len());
    let half = merged.len() / 2;

    let primary = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    })
    .unwrap();
    let follower = Follower::start(FollowConfig {
        primary_addr: primary.addr().to_string(),
        pull_interval: Duration::from_millis(20),
        auto_promote_after: Some(Duration::from_millis(250)),
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 3,
            policy: PolicySpec::fixed_minutes(10),
            ..ServeConfig::default()
        },
        ..FollowConfig::default()
    })
    .unwrap();

    let mut client = JsonClient::connect(primary.addr());
    let mut online: HashMap<String, Vec<Observed>> = HashMap::new();
    for (app, ts) in &merged[..half] {
        let (status, body) = client.invoke(None, app, *ts);
        assert_eq!(status, 200, "{body}");
        online
            .entry(app.clone())
            .or_default()
            .push(parse_observed(&body));
    }
    wait_caught_up(&follower);

    // The primary vanishes without ceremony. The dead-primary policy
    // (three failed pulls *and* 250 ms of commit silence) must fire on
    // its own.
    let _ = primary.shutdown().unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let serve_addr = loop {
        if let Some(addr) = follower.status().promoted {
            break addr;
        }
        assert!(
            Instant::now() < deadline,
            "auto-promotion never fired: {:?}",
            follower.status()
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    let mut client = JsonClient::connect(serve_addr);
    for (app, ts) in &merged[half..] {
        let (status, body) = client.invoke(None, app, *ts);
        assert_eq!(status, 200, "{body}");
        online
            .entry(app.clone())
            .or_default()
            .push(parse_observed(&body));
    }

    // Bit-for-bit against the uninterrupted offline policy, per app.
    for (app, events) in &per_app {
        let mut policy = sitw_core::FixedKeepAlive::minutes(10);
        let offline = sitw_sim::verdict_trace(events, &mut policy);
        let observed = &online[app];
        assert_eq!(observed.len(), offline.len(), "{app}");
        for (i, (on, off)) in observed.iter().zip(&offline).enumerate() {
            assert_eq!(on.cold, off.cold, "{app} event {i}");
            assert_eq!(
                (on.pre_warm_ms, on.keep_alive_ms),
                (off.windows.pre_warm_ms, off.windows.keep_alive_ms),
                "{app} event {i}"
            );
        }
    }

    // The lifecycle trail names the cause.
    let mut ctl = JsonClient::connect(follower.addr());
    let (_, ev) = ctl.request("GET", "/debug/events", "");
    assert!(ev.contains("\"kind\":\"node-down\""), "{ev}");
    assert!(ev.contains("auto policy: primary unreachable"), "{ev}");
    follower.shutdown().unwrap();
}
