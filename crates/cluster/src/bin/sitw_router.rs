//! `sitw-router` — the cluster-mode routing daemon.
//!
//! One port in front of N `sitw-serve` nodes: tenant-keyed consistent
//! routing, cluster-wide QoS admission, and epoch-based budget
//! reconciliation. See the crate docs of `sitw-cluster` for the design.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use sitw_cluster::{FailoverMode, Router, RouterConfig, RouterTenant};
use sitw_core::PolicySpec;

const USAGE: &str = "\
sitw-router — route tenants across a cluster of sitw-serve nodes

USAGE:
    sitw-router --addr HOST:PORT --node HOST:PORT [--node HOST:PORT ...]
                [--tenants N]
                [--tenant NAME=POLICY[,budget=MB][,qos=SPEC]]
                [--reconcile-ms MS] [--trace-sample N]
                [--failover off|supervised|auto] [--probe-ms MS]
                [--standby IDX=CONTROL_ADDR] [--upstream-timeout-ms MS]

OPTIONS:
    --addr HOST:PORT     Listen address (default 127.0.0.1:7180)
    --node HOST:PORT     A sitw-serve node; repeat once per node.
                         Argument order defines ring node indices.
    --tenants N          Shorthand: register tenants t0..t{N-1} with the
                         hybrid policy and no budget or rate limit.
    --tenant SPEC        One tenant: NAME=POLICY[,budget=MB][,qos=SPEC],
                         e.g. acme=hybrid,budget=64,qos=bronze:rate=50.
                         Repeatable; combines with --tenants.
    --reconcile-ms MS    Budget reconciliation interval (default 1000;
                         0 disables the background reconciler).
    --trace-sample N     Tag every Nth untraced request with a
                         router-originated trace id and record hop
                         spans for all traced requests (default 0 =
                         hop recording off; client trace ids still
                         propagate to the nodes).
    --failover MODE      off (default): operators drop dead nodes via
                         POST /admin/ring/drop. supervised: a health
                         prober raises drop/promote proposals on
                         GET /admin/ring/proposals for operators to
                         confirm via POST /admin/ring/proposals/confirm.
                         auto: proposals are confirmed automatically.
    --probe-ms MS        Health-probe interval with failover on
                         (default 500).
    --standby IDX=ADDR   Warm standby for ring slot IDX: the *control*
                         address of a `sitw-serve --follow` replica.
                         Confirming a failover of that slot promotes the
                         standby in place instead of dropping the node.
                         Repeatable, one per slot.
    --upstream-timeout-ms MS
                         Data-path upstream deadline (connect, read,
                         write; default 2000). A hung node surfaces as
                         a typed 503 / Unavailable naming the node
                         within this bound.
";

fn parse_args() -> Result<RouterConfig, String> {
    let mut cfg = RouterConfig {
        addr: "127.0.0.1:7180".into(),
        ..RouterConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--node" => cfg.nodes.push(value("--node")?),
            "--tenants" => {
                let n: usize = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
                for i in 0..n {
                    cfg.tenants.push(RouterTenant {
                        name: format!("t{i}"),
                        policy: PolicySpec::parse("hybrid").expect("hybrid parses"),
                        budget_mb: 0,
                        qos: None,
                    });
                }
            }
            "--tenant" => {
                let t = RouterTenant::parse(&value("--tenant")?)?;
                cfg.tenants.push(t);
            }
            "--reconcile-ms" => {
                cfg.reconcile_ms = value("--reconcile-ms")?
                    .parse()
                    .map_err(|e| format!("--reconcile-ms: {e}"))?;
            }
            "--trace-sample" => {
                cfg.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|e| format!("--trace-sample: {e}"))?;
            }
            "--failover" => {
                cfg.failover = FailoverMode::parse(&value("--failover")?)?;
            }
            "--probe-ms" => {
                cfg.probe_ms = value("--probe-ms")?
                    .parse()
                    .map_err(|e| format!("--probe-ms: {e}"))?;
            }
            "--standby" => {
                let spec = value("--standby")?;
                let (idx, ctrl) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--standby: expected IDX=ADDR, got '{spec}'"))?;
                let idx: usize = idx.parse().map_err(|e| format!("--standby: {e}"))?;
                cfg.standbys.push((idx, ctrl.to_owned()));
            }
            "--upstream-timeout-ms" => {
                let ms: u64 = value("--upstream-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--upstream-timeout-ms: {e}"))?;
                cfg.upstream_timeout = Duration::from_millis(ms.max(1));
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                cfg.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if cfg.nodes.is_empty() {
        return Err("at least one --node is required".into());
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("sitw-router: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let nodes = cfg.nodes.clone();
    let tenants = cfg.tenants.len();
    let router = match Router::start(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sitw-router: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sitw-router listening on {} ({} nodes: {}; {} named tenants)",
        router.addr(),
        nodes.len(),
        nodes.join(", "),
        tenants,
    );
    router.wait();
    ExitCode::SUCCESS
}
