//! Arrival-process archetypes and invocation stream generation.
//!
//! §3.3 of the paper finds that real inter-arrival-time (IAT)
//! distributions are "more complex than the simply periodic or memoryless
//! ones": timer apps are often but not always strictly periodic, only a
//! small fraction of apps look Poisson (CV ≈ 1), ~20% of all apps have
//! CV ≈ 0 (including ~10% of no-timer apps — e.g. periodic IoT callers),
//! and ~40% have CV > 1. The generator reproduces this mixture with five
//! archetypes, each a well-defined stochastic process.

use rand::Rng;

use crate::time::{TimeMs, DAY_MS, HOUR_MS};

/// A single cron-style timer: fires at `phase + k * period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerSpec {
    /// Firing period in milliseconds.
    pub period_ms: TimeMs,
    /// Offset of the first firing in milliseconds.
    pub phase_ms: TimeMs,
}

/// The arrival process driving an application's invocations.
#[derive(Debug, Clone, PartialEq)]
pub enum Archetype {
    /// One or more strict timers (CV 0 for a single timer; multiple
    /// periods/phases raise the CV, §3.3).
    Timers(Vec<TimerSpec>),
    /// Homogeneous Poisson arrivals (memoryless, CV 1).
    Poisson,
    /// Poisson arrivals modulated by the diurnal/weekly load shape of
    /// Figure 4 (thinning construction).
    Diurnal {
        /// Hour of day (0–24) at which this app's load peaks.
        peak_hour: f64,
    },
    /// Bursty session traffic: bursts arrive as a Poisson process, each
    /// burst carrying a geometric number of closely spaced invocations.
    /// IAT CV is well above 1 (the ~40% of apps beyond CV 1 in
    /// Figure 6), and the short intra-burst gaps are what lets even
    /// rarely invoked applications see warm starts under small
    /// keep-alives (Figure 14).
    Bursty {
        /// Mean invocations per burst (≥ 1).
        mean_burst_size: f64,
        /// Mean gap between invocations inside a burst, milliseconds.
        intra_gap_ms: f64,
        /// Hour of day the sessions cluster around; burst arrivals are
        /// diurnally thinned (sharper than the aggregate Figure 4 shape)
        /// so night-time idle gaps stretch to many hours.
        peak_hour: f64,
    },
    /// Quasi-periodic arrivals with a long period — e.g. sensors/IoT
    /// devices reporting every few hours. These exceed the histogram
    /// range and exercise the policy's ARIMA path.
    RarePeriodic {
        /// Period in milliseconds (typically above the histogram range).
        period_ms: TimeMs,
        /// Standard deviation of the Gaussian jitter, milliseconds.
        jitter_ms: f64,
    },
    /// Timers plus a Poisson overlay carrying the residual rate (apps
    /// with timer *and* other triggers, 15.8% of apps per §3.2).
    Mixed {
        /// The timer components.
        timers: Vec<TimerSpec>,
        /// Daily rate of the non-timer overlay traffic.
        overlay_daily_rate: f64,
    },
}

impl Archetype {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Archetype::Timers(_) => "timers",
            Archetype::Poisson => "poisson",
            Archetype::Diurnal { .. } => "diurnal",
            Archetype::Bursty { .. } => "bursty",
            Archetype::RarePeriodic { .. } => "rare-periodic",
            Archetype::Mixed { .. } => "mixed",
        }
    }
}

/// The platform-wide load-shape multiplier at time `t` (Figure 4):
/// a flat baseline plus a smooth diurnal bump, damped on weekends.
///
/// Day 0 is a Monday; days 5 and 6 of each week are the weekend. The
/// returned multiplier averages roughly 1 over a week, so modulating a
/// Poisson process with it approximately preserves the app's mean rate.
pub fn load_shape(t: TimeMs, peak_hour: f64) -> f64 {
    let day = (t / DAY_MS) % 7;
    let weekend = day >= 5;
    let hour = (t % DAY_MS) as f64 / HOUR_MS as f64;
    // Smooth bump peaking at `peak_hour`, period 24 h.
    let angle = (hour - peak_hour) / 24.0 * std::f64::consts::TAU;
    let bump = 0.5 * (1.0 + angle.cos());
    let weekday_amp = if weekend {
        crate::calibration::WEEKEND_FACTOR
    } else {
        1.0
    };
    let baseline = crate::calibration::DIURNAL_BASELINE;
    // Normalize: the bump averages 0.5 over a day, weekday amplitude
    // averages (5 + 2*wf)/7 over a week.
    let wf_mean = (5.0 + 2.0 * crate::calibration::WEEKEND_FACTOR) / 7.0;
    let mean = baseline + (1.0 - baseline) * 0.5 * wf_mean;
    (baseline + (1.0 - baseline) * bump * weekday_amp) / mean
}

/// Generates the sorted invocation timestamps of an application over
/// `[0, horizon_ms)`.
///
/// `daily_rate` is the app's target average invocations per day; rates
/// above `cap_per_day` are clamped (hot applications behave identically
/// for cold-start purposes once they are invoked every few seconds, and
/// the clamp bounds memory).
pub fn generate_events<R: Rng + ?Sized>(
    archetype: &Archetype,
    daily_rate: f64,
    horizon_ms: TimeMs,
    cap_per_day: f64,
    rng: &mut R,
) -> Vec<TimeMs> {
    let rate = daily_rate.min(cap_per_day).max(0.0);
    let mut events = match archetype {
        Archetype::Timers(timers) => timer_events(timers, horizon_ms),
        Archetype::Poisson => poisson_events(rate, horizon_ms, rng),
        Archetype::Diurnal { peak_hour } => diurnal_events(rate, *peak_hour, horizon_ms, rng),
        Archetype::Bursty {
            mean_burst_size,
            intra_gap_ms,
            peak_hour,
        } => bursty_events(
            rate,
            *mean_burst_size,
            *intra_gap_ms,
            *peak_hour,
            horizon_ms,
            rng,
        ),
        Archetype::RarePeriodic {
            period_ms,
            jitter_ms,
        } => rare_periodic_events(*period_ms, *jitter_ms, horizon_ms, rng),
        Archetype::Mixed {
            timers,
            overlay_daily_rate,
        } => {
            let mut ev = timer_events(timers, horizon_ms);
            let overlay = poisson_events(overlay_daily_rate.min(cap_per_day), horizon_ms, rng);
            ev.extend(overlay);
            ev.sort_unstable();
            ev
        }
    };
    events.sort_unstable();
    events
}

/// Strict timer firings, merged across all timers.
fn timer_events(timers: &[TimerSpec], horizon_ms: TimeMs) -> Vec<TimeMs> {
    let mut out = Vec::new();
    for t in timers {
        assert!(t.period_ms > 0, "timer period must be positive");
        let mut at = t.phase_ms;
        while at < horizon_ms {
            out.push(at);
            at += t.period_ms;
        }
    }
    out.sort_unstable();
    out
}

/// Homogeneous Poisson process via exponential IATs.
fn poisson_events<R: Rng + ?Sized>(
    daily_rate: f64,
    horizon_ms: TimeMs,
    rng: &mut R,
) -> Vec<TimeMs> {
    if daily_rate <= 0.0 {
        return Vec::new();
    }
    let rate_per_ms = daily_rate / DAY_MS as f64;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let horizon = horizon_ms as f64;
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        t += -u.ln() / rate_per_ms;
        if t >= horizon {
            break;
        }
        out.push(t as TimeMs);
    }
    out
}

/// Inhomogeneous Poisson process matching the Figure 4 load shape, by
/// thinning a homogeneous process at the peak rate.
fn diurnal_events<R: Rng + ?Sized>(
    daily_rate: f64,
    peak_hour: f64,
    horizon_ms: TimeMs,
    rng: &mut R,
) -> Vec<TimeMs> {
    if daily_rate <= 0.0 {
        return Vec::new();
    }
    // Max of load_shape over a week occurs at the weekday peak.
    let baseline = crate::calibration::DIURNAL_BASELINE;
    let wf_mean = (5.0 + 2.0 * crate::calibration::WEEKEND_FACTOR) / 7.0;
    let mean = baseline + (1.0 - baseline) * 0.5 * wf_mean;
    let max_shape = 1.0 / mean; // baseline + (1-baseline)*1*1, normalized.
    let lambda_max = daily_rate / DAY_MS as f64 * max_shape;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let horizon = horizon_ms as f64;
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        t += -u.ln() / lambda_max;
        if t >= horizon {
            break;
        }
        let shape = load_shape(t as TimeMs, peak_hour);
        if rng.random::<f64>() < shape / max_shape {
            out.push(t as TimeMs);
        }
    }
    out
}

/// Burst-cluster ("session") arrivals: diurnally thinned Poisson bursts,
/// geometric burst sizes, exponential intra-burst gaps. The burst rate
/// is chosen so the long-run event rate matches `daily_rate`. Burst
/// starts follow the **square** of the load shape — sessions concentrate
/// in the app's daytime, so overnight idle gaps stretch to many hours.
fn bursty_events<R: Rng + ?Sized>(
    daily_rate: f64,
    mean_burst_size: f64,
    intra_gap_ms: f64,
    peak_hour: f64,
    horizon_ms: TimeMs,
    rng: &mut R,
) -> Vec<TimeMs> {
    if daily_rate <= 0.0 {
        return Vec::new();
    }
    let burst_size = mean_burst_size.max(1.0);
    let intra_gap = intra_gap_ms.max(1.0);
    let burst_rate_per_ms = daily_rate / burst_size / DAY_MS as f64;
    let (mean_sq, max_sq) = shape_sq_stats(peak_hour);
    let lambda_max = burst_rate_per_ms * max_sq / mean_sq;
    let horizon = horizon_ms as f64;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Candidate burst start at the peak rate; thin by shape².
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        t += -u.ln() / lambda_max;
        if t >= horizon {
            break;
        }
        let shape = load_shape(t as TimeMs, peak_hour);
        if rng.random::<f64>() >= shape * shape / max_sq {
            continue;
        }
        // Geometric burst size with the requested mean.
        let n = geometric(rng, burst_size);
        let mut bt = t;
        out.push(bt as TimeMs);
        for _ in 1..n {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            bt += -u.ln() * intra_gap;
            if bt >= horizon {
                break;
            }
            out.push(bt as TimeMs);
        }
        t = t.max(bt); // Next inter-burst gap starts at the burst's end.
    }
    out
}

/// Weekly mean and max of the squared load shape (coarse 15-minute grid;
/// exact enough for thinning normalization).
fn shape_sq_stats(peak_hour: f64) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let steps = 7 * 24 * 4;
    for i in 0..steps {
        let t = i as u64 * 15 * 60 * 1000;
        let s = load_shape(t, peak_hour);
        let sq = s * s;
        sum += sq;
        if sq > max {
            max = sq;
        }
    }
    (sum / steps as f64, max)
}

/// Geometric sample (support ≥ 1) with the given mean.
fn geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
}

/// Long-period quasi-periodic arrivals with Gaussian jitter.
fn rare_periodic_events<R: Rng + ?Sized>(
    period_ms: TimeMs,
    jitter_ms: f64,
    horizon_ms: TimeMs,
    rng: &mut R,
) -> Vec<TimeMs> {
    assert!(period_ms > 0, "period must be positive");
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Box–Muller standard normal jitter.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        t += period_ms as f64 + z * jitter_ms;
        if t >= horizon_ms as f64 {
            break;
        }
        if t >= 0.0 {
            out.push(t as TimeMs);
        }
    }
    out
}

/// Inter-arrival times (ms, as f64) of a sorted event sequence.
pub fn iats(events: &[TimeMs]) -> Vec<f64> {
    events.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MINUTE_MS, WEEK_MS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sitw_stats::Welford;

    fn cv_of(events: &[TimeMs]) -> f64 {
        let mut w = Welford::new();
        for iat in iats(events) {
            w.push(iat);
        }
        w.cv()
    }

    #[test]
    fn single_timer_is_strictly_periodic() {
        let arch = Archetype::Timers(vec![TimerSpec {
            period_ms: 5 * MINUTE_MS,
            phase_ms: 30_000,
        }]);
        let mut rng = StdRng::seed_from_u64(1);
        let ev = generate_events(&arch, 288.0, DAY_MS, 1e9, &mut rng);
        assert_eq!(ev.len(), 288); // 24h / 5min.
        assert_eq!(ev[0], 30_000);
        assert!(cv_of(&ev) < 1e-9, "timer CV must be 0");
    }

    #[test]
    fn multiple_timers_raise_cv_above_zero() {
        let arch = Archetype::Timers(vec![
            TimerSpec {
                period_ms: 5 * MINUTE_MS,
                phase_ms: 0,
            },
            TimerSpec {
                period_ms: 7 * MINUTE_MS,
                phase_ms: 2 * MINUTE_MS,
            },
        ]);
        let mut rng = StdRng::seed_from_u64(2);
        let ev = generate_events(&arch, 0.0, DAY_MS, 1e9, &mut rng);
        let cv = cv_of(&ev);
        assert!(cv > 0.1, "multi-timer CV {cv}");
    }

    #[test]
    fn poisson_rate_and_cv() {
        let mut rng = StdRng::seed_from_u64(3);
        let ev = generate_events(&Archetype::Poisson, 1000.0, WEEK_MS, 1e9, &mut rng);
        let per_day = ev.len() as f64 / 7.0;
        assert!((per_day - 1000.0).abs() < 60.0, "rate {per_day}");
        let cv = cv_of(&ev);
        assert!((cv - 1.0).abs() < 0.1, "poisson CV {cv}");
    }

    #[test]
    fn bursty_clusters_have_high_cv_and_short_gaps() {
        let mut rng = StdRng::seed_from_u64(4);
        let arch = Archetype::Bursty {
            mean_burst_size: 8.0,
            intra_gap_ms: 10_000.0,
            peak_hour: 13.0,
        };
        let ev = generate_events(&arch, 2000.0, WEEK_MS, 1e9, &mut rng);
        let cv = cv_of(&ev);
        assert!(cv > 1.5, "bursty CV {cv}");
        // Mean rate approximately honored (burst overlap inflates a bit).
        let per_day = ev.len() as f64 / 7.0;
        assert!(
            (1500.0..3000.0).contains(&per_day),
            "rate {per_day} events/day"
        );
        // Most gaps are intra-burst (short): the warm-start fuel of
        // Figure 14.
        let short = iats(&ev).iter().filter(|&&g| g < 60_000.0).count();
        assert!(
            short as f64 > 0.5 * (ev.len() - 1) as f64,
            "short gaps {short}/{}",
            ev.len()
        );
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = StdRng::seed_from_u64(40);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| geometric(&mut rng, 6.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.2, "geometric mean {mean}");
        assert_eq!(geometric(&mut rng, 0.5), 1);
    }

    #[test]
    fn rare_periodic_cv_near_zero_and_long_gaps() {
        let mut rng = StdRng::seed_from_u64(5);
        let arch = Archetype::RarePeriodic {
            period_ms: 6 * HOUR_MS,
            jitter_ms: 2.0 * MINUTE_MS as f64,
        };
        let ev = generate_events(&arch, 4.0, WEEK_MS, 1e9, &mut rng);
        assert!((26..=29).contains(&ev.len()), "events {}", ev.len());
        assert!(cv_of(&ev) < 0.05);
        // Every gap exceeds a 4-hour histogram range.
        for gap in iats(&ev) {
            assert!(gap > 4.0 * HOUR_MS as f64);
        }
    }

    #[test]
    fn diurnal_preserves_mean_rate_and_shapes_load() {
        let mut rng = StdRng::seed_from_u64(6);
        let arch = Archetype::Diurnal { peak_hour: 14.0 };
        let ev = generate_events(&arch, 5000.0, WEEK_MS, 1e9, &mut rng);
        let per_day = ev.len() as f64 / 7.0;
        assert!(
            (per_day - 5000.0).abs() < 400.0,
            "diurnal rate {per_day}/day"
        );
        // Peak-hour traffic must exceed trough-hour traffic.
        let mut by_hour = [0usize; 24];
        for &e in &ev {
            by_hour[((e % DAY_MS) / HOUR_MS) as usize] += 1;
        }
        let peak = by_hour[14];
        let trough = by_hour[2];
        assert!(
            peak as f64 > 1.3 * trough as f64,
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn mixed_merges_timer_and_overlay() {
        let mut rng = StdRng::seed_from_u64(7);
        let arch = Archetype::Mixed {
            timers: vec![TimerSpec {
                period_ms: HOUR_MS,
                phase_ms: 0,
            }],
            overlay_daily_rate: 24.0,
        };
        let ev = generate_events(&arch, 48.0, DAY_MS, 1e9, &mut rng);
        // 24 timer firings + ~24 Poisson arrivals.
        assert!((34..70).contains(&ev.len()), "events {}", ev.len());
        assert!(ev.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
        // Timer firings at exact hours must be present.
        assert!(ev.contains(&0));
        assert!(ev.contains(&HOUR_MS));
    }

    #[test]
    fn rate_cap_clamps_hot_apps() {
        let mut rng = StdRng::seed_from_u64(8);
        let ev = generate_events(&Archetype::Poisson, 1.0e6, DAY_MS, 10_000.0, &mut rng);
        let per_day = ev.len() as f64;
        assert!(per_day < 11_000.0, "capped rate {per_day}");
        assert!(per_day > 9_000.0);
    }

    #[test]
    fn zero_rate_produces_no_events() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(generate_events(&Archetype::Poisson, 0.0, WEEK_MS, 1e9, &mut rng).is_empty());
    }

    #[test]
    fn load_shape_weekly_mean_is_one() {
        // Numerical average over a week of minutes.
        let mut acc = 0.0;
        let n = 7 * 24 * 60;
        for m in 0..n {
            acc += load_shape(m as TimeMs * MINUTE_MS, 13.0);
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn load_shape_weekend_damped() {
        // Tuesday 13:00 vs Saturday 13:00 (day 0 = Monday).
        let tue = load_shape(DAY_MS + 13 * HOUR_MS, 13.0);
        let sat = load_shape(5 * DAY_MS + 13 * HOUR_MS, 13.0);
        assert!(tue > sat, "tue {tue} sat {sat}");
    }

    #[test]
    fn determinism_per_seed() {
        let arch = Archetype::Bursty {
            mean_burst_size: 4.0,
            intra_gap_ms: 20_000.0,
            peak_hour: 11.0,
        };
        let a = generate_events(&arch, 100.0, DAY_MS, 1e9, &mut StdRng::seed_from_u64(42));
        let b = generate_events(&arch, 100.0, DAY_MS, 1e9, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
