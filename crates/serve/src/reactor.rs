//! The connection reactor: a small fixed pool of event-loop threads
//! multiplexing every client connection over epoll.
//!
//! Each reactor thread owns a generational slab of [`Conn`]s, an
//! [`Epoll`] instance, and one inbound queue fed by two producers: the
//! acceptor (new connections, round-robin across the pool) and the shard
//! workers (decision replies, routed by slab token through a
//! [`ReplySink`]). The queue pairs with an armed eventfd [`Waker`], so a
//! shard finishing a batch while the reactor is busy pays no syscall at
//! all, and exactly one `write(2)` when the reactor is asleep in
//! `epoll_wait`.
//!
//! The loop each thread runs:
//!
//! 1. drain the message queue — adopt new connections, slot shard
//!    replies into their connection's pipeline (stale tokens from
//!    closed connections are dropped by the slab's generation check);
//! 2. pump every touched connection once — render completed responses,
//!    write, update epoll interest (batching the queue drain before the
//!    pump is what keeps it one `write(2)` per readiness cycle instead
//!    of one per reply);
//! 3. sweep for slowloris timeouts on a coarse tick;
//! 4. arm the waker, re-check the queue (closing the sleep race), and
//!    block in `epoll_wait` for socket readiness, the waker, or the
//!    tick;
//! 5. serve socket events through [`Conn::on_event`].
//!
//! On shutdown a reactor stops reading, keeps pumping until every
//! connection settles (bounded by [`SHUTDOWN_GRACE`] — a client that
//! never drains its responses cannot hang the daemon, which the
//! thread-per-connection design could not guarantee), closes everything,
//! and exits.

use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sitw_reactor::{Epoll, Events, Interest, Slab, Waker};

use crate::conn::{Conn, Flow};
use crate::server::ServerCtx;
use crate::shard::{BatchItem, BatchReply, Decision, InvokeError, InvokeReply};
use crate::telem::{QueueGauge, ReactorTelemHandle};

/// Token reserved for the reactor's own waker fd.
const WAKER_TOKEN: u64 = u64::MAX;

/// How long a winding-down reactor keeps pumping unsettled connections
/// before force-closing them.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

/// Events buffer size per poll round.
const EVENTS_PER_WAIT: usize = 1024;

/// Empty rounds a reactor re-polls non-blockingly after a busy round
/// before arming its waker and blocking in `epoll_wait`. One free
/// re-poll catches work that arrived while the previous round was being
/// processed; anything higher turns into a spin that starves the very
/// shard threads the reactor is waiting on (measured: sustained
/// throughput *halves* with an 8-round yield spin on one core).
const SPIN_ROUNDS: u32 = 1;

/// One message into a reactor thread.
pub(crate) enum ReactorMsg {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// A shard's reply to one JSON decision on connection `conn`.
    Invoke {
        /// Slab token of the owning connection.
        conn: u64,
        /// The reply to slot in.
        reply: InvokeReply,
    },
    /// A shard's reply to its slice of one SITW-BIN frame.
    Batch {
        /// Slab token of the owning connection.
        conn: u64,
        /// The reply to slot in.
        reply: BatchReply,
    },
}

/// Sending half of one reactor thread, held by the acceptor and the
/// server context (for shutdown wakes).
pub(crate) struct ReactorRef {
    pub(crate) tx: Sender<ReactorMsg>,
    pub(crate) waker: Arc<Waker>,
}

/// Where a shard worker sends the reply to one dispatched decision or
/// batch: the owning reactor's queue, tagged with the connection's slab
/// token, waking the reactor's event loop if it is asleep. Replies to
/// connections that died in the meantime fail the slab's generation
/// check and are dropped — a disconnect mid-batch can never poison
/// another connection or wedge the shard (sends never block).
pub struct ReplySink {
    tx: Sender<ReactorMsg>,
    waker: Arc<Waker>,
    conn: u64,
}

impl ReplySink {
    /// Delivers a JSON decision reply.
    pub fn invoke(&self, reply: InvokeReply) {
        let _ = self.tx.send(ReactorMsg::Invoke {
            conn: self.conn,
            reply,
        });
        self.waker.wake();
    }

    /// Delivers a batched frame reply.
    pub fn batch(&self, reply: BatchReply) {
        let _ = self.tx.send(ReactorMsg::Batch {
            conn: self.conn,
            reply,
        });
        self.waker.wake();
    }
}

/// Per-reactor reusable scratch handed into connection methods — the
/// reactor-wide halves of the zero-allocation hot path.
pub(crate) struct ReactorIo<'a> {
    /// Shared server state (config, shard mailboxes, registry, counters).
    pub ctx: &'a ServerCtx,
    tx: &'a Sender<ReactorMsg>,
    waker: &'a Arc<Waker>,
    /// Response-body scratch (JSON rendering).
    pub scratch: &'a mut Vec<u8>,
    /// Ordered-results scratch for reply-frame encoding.
    pub results: &'a mut Vec<Result<Decision, InvokeError>>,
    /// Per-shard partition buffers for frame dispatch.
    pub per_shard: &'a mut Vec<Vec<BatchItem>>,
    /// This reactor thread's telemetry handle (spans, stage hists).
    pub telem: &'a ReactorTelemHandle,
}

impl ReactorIo<'_> {
    /// A reply sink addressing connection `conn` on this reactor.
    // sitw-lint: hot-path
    pub fn reply_sink(&self, conn: u64) -> ReplySink {
        ReplySink {
            // Sender::clone is an Arc bump, not a heap allocation.
            tx: self.tx.clone(), // sitw-lint: allow(hot-path-alloc)
            waker: Arc::clone(self.waker),
            conn,
        }
    }
}

/// Runs one reactor thread until shutdown completes.
pub(crate) fn reactor_loop(
    id: usize,
    ctx: Arc<ServerCtx>,
    rx: Receiver<ReactorMsg>,
    tx: Sender<ReactorMsg>,
    waker: Arc<Waker>,
) {
    let telem = ReactorTelemHandle::new(
        ctx.telem.enabled,
        ctx.telem.clock.clone(),
        Arc::clone(&ctx.telem.reactors[id]),
        id,
    );
    let gauge: Option<Arc<QueueGauge>> = ctx
        .telem
        .enabled
        .then(|| Arc::clone(&ctx.telem.reactor_gauges[id]));
    let epoll = Epoll::new().expect("epoll_create1 failed");
    epoll
        .add(waker.raw_fd(), WAKER_TOKEN, Interest::READ)
        .expect("failed to register reactor waker");
    let mut conns: Slab<Conn> = Slab::new();
    let mut events = Events::with_capacity(EVENTS_PER_WAIT);
    let mut scratch: Vec<u8> = Vec::with_capacity(256);
    let mut results: Vec<Result<Decision, InvokeError>> = Vec::new();
    let mut per_shard: Vec<Vec<BatchItem>> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut sweep_tokens: Vec<u64> = Vec::new();

    // The poll tick bounds shutdown latency and the sweep cadence, like
    // the read timeout bounded them in the thread-per-connection model.
    let tick = ctx.cfg.read_timeout.max(Duration::from_millis(1));
    let tick_ms = tick.as_millis().min(i32::MAX as u128) as i32;
    // Wall-clock deadlines (sweep cadence, shutdown grace) are real
    // time by design, not simulated trace time.
    // sitw-lint: allow(clock-discipline)
    let mut next_sweep = Instant::now() + tick;
    let mut shutdown_deadline: Option<Instant> = None;

    macro_rules! io {
        () => {
            ReactorIo {
                ctx: &ctx,
                tx: &tx,
                waker: &waker,
                scratch: &mut scratch,
                results: &mut results,
                per_shard: &mut per_shard,
                telem: &telem,
            }
        };
    }

    let mut idle_spins = 0u32;
    // Empty spin rounds buffer their epoll_wait count locally and flush
    // it on the next eventful (or blocking) wait, so an idle-spinning
    // reactor takes no telemetry lock per round. Totals stay exact.
    let mut pending_waits = 0u64;
    loop {
        let mut worked = false;
        // 1. Drain the cross-thread queue, slotting replies and adopting
        // connections; defer pumping so a burst of replies costs one
        // write per connection, not one per reply. The inbox gauge is
        // drain-observed: count the wave's backlog here, once — the
        // senders (shards, acceptor) never touch the gauge.
        let mut drained = 0u64;
        loop {
            match rx.try_recv() {
                Ok(msg) => {
                    worked = true;
                    drained += 1;
                    handle_msg(msg, &ctx, &epoll, &mut conns, &mut touched);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        if drained > 0 {
            if let Some(g) = &gauge {
                g.observe(drained);
            }
        }

        // 2. Pump touched connections.
        for &token in &touched {
            let Some(conn) = conns.get_mut(token) else {
                continue;
            };
            conn.dirty = false;
            let flow = conn.pump(&mut io!());
            finish(&ctx, &epoll, &mut conns, token, flow);
        }
        touched.clear();

        // 3. Shutdown wind-down.
        if ctx.shutdown.load(Ordering::SeqCst) {
            // sitw-lint: allow(clock-discipline)
            let now = Instant::now();
            let deadline = *shutdown_deadline.get_or_insert(now + SHUTDOWN_GRACE);
            let force = now >= deadline;
            sweep_tokens.clear();
            sweep_tokens.extend(conns.tokens());
            for &token in &sweep_tokens {
                let Some(conn) = conns.get_mut(token) else {
                    continue;
                };
                conn.begin_shutdown();
                let flow = conn.pump(&mut io!());
                if force {
                    close_conn(&ctx, &epoll, &mut conns, token);
                } else {
                    finish(&ctx, &epoll, &mut conns, token, flow);
                }
            }
            if conns.is_empty() {
                return;
            }
        }

        // 4. Slowloris sweep on the tick.
        // sitw-lint: allow(clock-discipline)
        let now = Instant::now();
        if now >= next_sweep {
            next_sweep = now + tick;
            sweep_tokens.clear();
            sweep_tokens.extend(conns.tokens());
            for &token in &sweep_tokens {
                let Some(conn) = conns.get_mut(token) else {
                    continue;
                };
                if let Flow::Close = conn.sweep(now, ctx.cfg.idle_timeout) {
                    close_conn(&ctx, &epoll, &mut conns, token);
                }
            }
        }

        // 5. Poll or sleep. While rounds keep finding work, poll the
        // sockets non-blockingly and yield to the shard/acceptor
        // threads between empty rounds ([`SPIN_ROUNDS`]); only after
        // the spin budget is spent, arm the waker — re-checking the
        // queue *after* arming so a producer racing the sleep sees the
        // armed flag and fires the eventfd, never losing the wakeup —
        // and block in `epoll_wait` for the tick.
        let n = if idle_spins < SPIN_ROUNDS {
            let n = epoll.wait(&mut events, 0).unwrap_or_default();
            pending_waits += 1;
            if n > 0 {
                let waits = std::mem::take(&mut pending_waits);
                telem.with(|t| {
                    t.epoll_waits += waits;
                    t.events_per_wake.record(n as u64);
                });
            }
            n
        } else {
            waker.arm();
            match rx.try_recv() {
                Ok(msg) => {
                    waker.disarm();
                    idle_spins = 0;
                    handle_msg(msg, &ctx, &epoll, &mut conns, &mut touched);
                    continue;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    waker.disarm();
                    return;
                }
            }
            // The blocking wait is timed (epoll_wait_seconds_total on
            // /metrics); the telemetry guard is NOT held across it — a
            // scraper must never stall a tick behind a sleeping reactor.
            let t0 = telem.now();
            let n = epoll.wait(&mut events, tick_ms).unwrap_or_default();
            let t1 = telem.now();
            waker.disarm();
            let waits = std::mem::take(&mut pending_waits) + 1;
            telem.with(|t| {
                t.epoll_waits += waits;
                t.epoll_wait_ns += t1.saturating_sub(t0);
                if n > 0 {
                    t.events_per_wake.record(n as u64);
                }
            });
            n
        };

        // 6. Socket readiness.
        if n > 0 {
            worked = true;
            for ev in events.iter() {
                if ev.token == WAKER_TOKEN {
                    waker.drain();
                    telem.with(|t| t.wakeups += 1);
                    continue;
                }
                let Some(conn) = conns.get_mut(ev.token) else {
                    continue;
                };
                let flow = conn.on_event(ev.readable, ev.hangup, &mut io!());
                finish(&ctx, &epoll, &mut conns, ev.token, flow);
            }
        }

        if worked {
            idle_spins = 0;
        } else {
            idle_spins += 1;
            if idle_spins < SPIN_ROUNDS {
                std::thread::yield_now();
            }
        }
    }
}

/// Handles one queue message; marks the owning connection touched.
// sitw-lint: hot-path
fn handle_msg(
    msg: ReactorMsg,
    ctx: &ServerCtx,
    epoll: &Epoll,
    conns: &mut Slab<Conn>,
    touched: &mut Vec<u64>,
) {
    match msg {
        ReactorMsg::Conn(stream) => match Conn::new(stream) {
            Ok(conn) => {
                let token = conns.insert(conn);
                match conns.get_mut(token) {
                    Some(conn) => {
                        conn.set_token(token);
                        if epoll
                            .add(conn.raw_fd(), token, conn.initial_interest())
                            .is_err()
                        {
                            conns.remove(token);
                            ctx.conns_live.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    // insert() just handed out this token, so the slot
                    // exists; if the slab ever disagrees, shed the
                    // connection instead of panicking the reactor.
                    None => {
                        conns.remove(token);
                        ctx.conns_live.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                ctx.conns_live.fetch_sub(1, Ordering::Relaxed);
            }
        },
        ReactorMsg::Invoke { conn, reply } => {
            // A stale token (connection died, slot possibly reused) is
            // dropped here by the generation check.
            if let Some(c) = conns.get_mut(conn) {
                c.on_invoke_reply(reply);
                if !c.dirty {
                    c.dirty = true;
                    touched.push(conn);
                }
            }
        }
        ReactorMsg::Batch { conn, reply } => {
            if let Some(c) = conns.get_mut(conn) {
                c.on_batch_reply(reply);
                if !c.dirty {
                    c.dirty = true;
                    touched.push(conn);
                }
            }
        }
    }
}

/// Applies a connection's post-activity fate: close, or re-sync epoll
/// interest.
// sitw-lint: hot-path
fn finish(ctx: &ServerCtx, epoll: &Epoll, conns: &mut Slab<Conn>, token: u64, flow: Flow) {
    match flow {
        Flow::Close => close_conn(ctx, epoll, conns, token),
        Flow::Keep => {
            if let Some(conn) = conns.get_mut(token) {
                if let Some(interest) = conn.interest_change() {
                    if epoll.modify(conn.raw_fd(), token, interest).is_err() {
                        close_conn(ctx, epoll, conns, token);
                    }
                }
            }
        }
    }
}

/// Retires a connection: deregisters, frees the slab slot (staling any
/// in-flight reply tokens), closes the socket, and drops the live gauge.
fn close_conn(ctx: &ServerCtx, epoll: &Epoll, conns: &mut Slab<Conn>, token: u64) {
    if let Some(conn) = conns.remove(token) {
        let _ = epoll.delete(conn.raw_fd());
        ctx.conns_live.fetch_sub(1, Ordering::Relaxed);
        // Drop closes the socket.
    }
}
