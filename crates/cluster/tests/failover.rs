//! Router failover integration tests (ISSUE 10, layer 3).
//!
//! Three scenarios:
//!
//! * A **hung** upstream (accepts, never answers — the SIGSTOP shape)
//!   must surface as a typed 503 naming the node within the configured
//!   `upstream_timeout`, not stall the client drain forever.
//! * **Supervised failover**: the health prober raises a proposal for a
//!   dead primary; confirming it promotes the slot's warm standby
//!   (a `sitw-serve --follow` replica) in place, bumps the ring epoch,
//!   and traffic resumes against the promoted node.
//! * **Auto failover without a standby**: the prober's proposal is
//!   confirmed automatically and the dead node is dropped, rehashing
//!   its tenants over the survivors.

mod common;

use std::io::{Read, Write};
use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

use sitw_cluster::{FailoverMode, Router, RouterConfig, RouterTenant};
use sitw_core::PolicySpec;
use sitw_serve::{FollowConfig, Follower, ServeConfig};

use common::{http, start_node, JsonClient};

/// Polls `f` until it returns true or the deadline passes.
fn wait_for(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if f() {
            return;
        }
        thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for {what}");
}

/// A fake node that answers the router's provisioning request
/// (`GET /admin/tenants`) and then *hangs* on everything else: the
/// connection stays open, no bytes ever come back — the wire shape of a
/// SIGSTOPped or dead-disk node, as opposed to a killed one.
fn start_hung_node() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake node");
    let addr = listener.local_addr().unwrap();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 4096];
                while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
                let head = String::from_utf8_lossy(&buf);
                if head.starts_with("GET /admin/tenants") {
                    let body = r#"[{"id":0,"name":"default","policy":"-","budget_mb":0}]"#;
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let _ = stream.write_all(resp.as_bytes());
                } else {
                    // Hang: hold the connection open well past any
                    // deadline the test asserts on.
                    thread::sleep(Duration::from_secs(30));
                }
            });
        }
    });
    addr
}

#[test]
fn hung_upstream_times_out_with_typed_503() {
    let node = start_hung_node();
    let router = Router::start(RouterConfig {
        nodes: vec![node.to_string()],
        reconcile_ms: 0,
        upstream_timeout: Duration::from_millis(250),
        ..RouterConfig::default()
    })
    .expect("router starts");

    let mut client = JsonClient::connect(router.addr());
    let t0 = Instant::now();
    let (status, body) = client.invoke(None, "app-0", 1_000);
    let elapsed = t0.elapsed();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains(&node.to_string()), "names the node: {body}");
    assert!(body.contains("timed out"), "names the failure: {body}");
    // The deadline, not the hang, bounds the answer. Generous upper
    // margin for loaded CI boxes — the regression this guards against
    // is a 30-second stall.
    assert!(
        elapsed < Duration::from_secs(5),
        "bounded by upstream_timeout, took {elapsed:?}"
    );
    router.shutdown();
}

#[test]
fn supervised_failover_promotes_standby_and_resumes_traffic() {
    let primary = start_node();
    let follower = Follower::start(FollowConfig {
        primary_addr: primary.addr().to_string(),
        pull_interval: Duration::from_millis(15),
        serve: ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            policy: PolicySpec::fixed_minutes(10),
            ..ServeConfig::default()
        },
        ..FollowConfig::default()
    })
    .expect("follower starts");
    let router = Router::start(RouterConfig {
        nodes: vec![primary.addr().to_string()],
        tenants: vec![RouterTenant::parse("t0=fixed:10").unwrap()],
        reconcile_ms: 0,
        failover: FailoverMode::Supervised,
        probe_ms: 30,
        standbys: vec![(0, follower.addr().to_string())],
        upstream_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("router starts");

    let (status, body) = http(router.addr(), "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"failover\":\"supervised\""), "{body}");

    // Phase 1: traffic lands on the primary and replicates.
    let mut client = JsonClient::connect(router.addr());
    for i in 0..20u64 {
        let (status, body) = client.invoke(Some("t0"), "app-a", 1_000 * (i + 1));
        assert_eq!(status, 200, "{body}");
    }
    drop(client);

    // The primary dies. The prober needs three consecutive failures to
    // raise the proposal; nothing is dropped or promoted until then.
    let primary_addr = primary.addr().to_string();
    let _ = primary.shutdown();
    wait_for("failover proposal", Duration::from_secs(10), || {
        let (status, body) = http(router.addr(), "GET", "/admin/ring/proposals", "");
        status == 200 && body.contains("\"node\":0")
    });
    let (_, proposals) = http(router.addr(), "GET", "/admin/ring/proposals", "");
    assert!(
        proposals.contains(&format!("\"standby\":\"{}\"", follower.addr())),
        "proposal names the standby: {proposals}"
    );

    // Supervised: the ring is untouched until the operator confirms.
    let (_, ring) = http(router.addr(), "GET", "/admin/ring", "");
    assert!(ring.contains("\"epoch\":0"), "{ring}");
    let (status, confirm) = http(
        router.addr(),
        "POST",
        "/admin/ring/proposals/confirm?node=0",
        "",
    );
    assert_eq!(status, 200, "{confirm}");
    assert!(confirm.contains("\"action\":\"promoted\""), "{confirm}");
    assert!(confirm.contains("\"epoch\":1"), "{confirm}");

    // The proposal is consumed and the slot now points at the promoted
    // standby's serve address.
    let (_, proposals) = http(router.addr(), "GET", "/admin/ring/proposals", "");
    assert!(proposals.contains("\"proposals\":[]"), "{proposals}");
    let (_, ring) = http(router.addr(), "GET", "/admin/ring", "");
    assert!(ring.contains("\"epoch\":1"), "{ring}");
    assert!(
        !ring.contains(&primary_addr),
        "dead primary gone from the ring: {ring}"
    );

    // Phase 2: traffic resumes against the promoted node — same slot,
    // same tenant, new address.
    let mut client = JsonClient::connect(router.addr());
    for i in 20..30u64 {
        let (status, body) = client.invoke(Some("t0"), "app-a", 1_000 * (i + 1));
        assert_eq!(status, 200, "{body}");
    }

    // Lifecycle and metrics provenance.
    let (_, events) = http(router.addr(), "GET", "/debug/events", "");
    assert!(events.contains("\"kind\":\"node-down\""), "{events}");
    assert!(events.contains("\"kind\":\"failover\""), "{events}");
    assert!(events.contains("standby promoted"), "{events}");
    let (_, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert!(metrics.contains("sitw_router_failover_mode 1"), "{metrics}");
    assert!(
        metrics.contains("sitw_router_failover_promotions_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sitw_router_failover_proposals_total 1"),
        "{metrics}"
    );
    router.shutdown();
}

#[test]
fn auto_failover_without_standby_drops_the_dead_node() {
    let node0 = start_node();
    let node1 = start_node();
    let router = Router::start(RouterConfig {
        nodes: vec![node0.addr().to_string(), node1.addr().to_string()],
        tenants: vec![
            RouterTenant::parse("t0=fixed:10").unwrap(),
            RouterTenant::parse("t1=fixed:10").unwrap(),
        ],
        reconcile_ms: 0,
        failover: FailoverMode::Auto,
        probe_ms: 30,
        upstream_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("router starts");

    let _ = node1.shutdown();
    // Auto mode confirms its own proposals: the dead node is dropped
    // without any operator round-trip.
    wait_for("auto drop", Duration::from_secs(10), || {
        let (_, ring) = http(router.addr(), "GET", "/admin/ring", "");
        ring.contains("\"node\":1,") && ring.contains("\"live\":false")
    });

    // Both tenants now land on the survivor, whichever node they hashed
    // to before the drop.
    let mut client = JsonClient::connect(router.addr());
    for tenant in ["t0", "t1"] {
        let (status, body) = client.invoke(Some(tenant), "app-a", 1_000);
        assert_eq!(status, 200, "{body}");
    }
    let (_, events) = http(router.addr(), "GET", "/debug/events", "");
    assert!(events.contains("no standby"), "{events}");
    let (_, metrics) = http(router.addr(), "GET", "/metrics", "");
    assert!(metrics.contains("sitw_router_failover_mode 2"), "{metrics}");
    assert!(
        metrics.contains("sitw_router_failover_promotions_total 0"),
        "{metrics}"
    );
    router.shutdown();
    let _ = node0.shutdown();
}
