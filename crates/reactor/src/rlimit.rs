//! File-descriptor limit helper for high-fan-in deployments and stress
//! tests.

use std::io;

use crate::sys;

/// Raises the soft `RLIMIT_NOFILE` toward `min(target, hard limit)` and
/// returns the soft limit now in effect (which may already have been
/// higher). Holding thousands of keep-alive sockets needs more than the
/// classic 1024-descriptor default.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    sys::sys_raise_nofile(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_is_idempotent_and_capped_by_hard_limit() {
        let first = raise_nofile_limit(4_096).unwrap();
        assert!(first > 0);
        // Asking again for no more than we have changes nothing.
        let second = raise_nofile_limit(first).unwrap();
        assert_eq!(first, second);
        // An absurd target is clamped to the hard limit, not an error.
        let clamped = raise_nofile_limit(u64::MAX).unwrap();
        assert!(clamped >= first);
    }
}
