//! The workload model: applications, functions, and triggers.
//!
//! Azure Functions groups functions into applications; "the application,
//! not the function, is the unit of scheduling and resource allocation"
//! (§2). Cold starts and keep-alive therefore apply at application
//! granularity, while triggers, execution times and invocation shares are
//! per-function.

use crate::archetype::Archetype;

/// Identifier of an application within a [`Population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u32);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app-{:06}", self.0)
    }
}

/// The paper's seven trigger classes (§2, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TriggerType {
    /// HTTP requests.
    Http,
    /// Event streams (Event Hub, Event Grid): few functions, very high
    /// invocation rates.
    Event,
    /// Message queues (Service Bus, Kafka, ...).
    Queue,
    /// Cron-like timers firing at pre-determined intervals.
    Timer,
    /// Durable Functions orchestration.
    Orchestration,
    /// Database / filesystem change triggers (Blob, Redis, ...).
    Storage,
    /// Everything else.
    Others,
}

impl TriggerType {
    /// All trigger classes, in the paper's Figure 2 order.
    pub const ALL: [TriggerType; 7] = [
        TriggerType::Http,
        TriggerType::Queue,
        TriggerType::Event,
        TriggerType::Orchestration,
        TriggerType::Timer,
        TriggerType::Storage,
        TriggerType::Others,
    ];

    /// Short label used in the paper's Figure 3 ("H", "T", "Q", ...).
    pub fn letter(&self) -> char {
        match self {
            TriggerType::Http => 'H',
            TriggerType::Event => 'E',
            TriggerType::Queue => 'Q',
            TriggerType::Timer => 'T',
            TriggerType::Orchestration => 'O',
            TriggerType::Storage => 'S',
            TriggerType::Others => 'o',
        }
    }

    /// Full display name.
    pub fn name(&self) -> &'static str {
        match self {
            TriggerType::Http => "HTTP",
            TriggerType::Event => "Event",
            TriggerType::Queue => "Queue",
            TriggerType::Timer => "Timer",
            TriggerType::Orchestration => "Orchestration",
            TriggerType::Storage => "Storage",
            TriggerType::Others => "Others",
        }
    }
}

impl std::fmt::Display for TriggerType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static profile of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionProfile {
    /// Trigger class of this function.
    pub trigger: TriggerType,
    /// Share of the application's invocations routed to this function
    /// (shares sum to 1 within an app).
    pub invocation_share: f64,
    /// Average execution time in seconds (log-normal population,
    /// Figure 7).
    pub avg_exec_secs: f64,
    /// Fastest observed execution, seconds.
    pub min_exec_secs: f64,
    /// Slowest observed execution, seconds.
    pub max_exec_secs: f64,
}

/// Static profile of one application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application identifier.
    pub id: AppId,
    /// Per-function profiles (at least one).
    pub functions: Vec<FunctionProfile>,
    /// Target average invocations per day across all functions.
    pub daily_rate: f64,
    /// Arrival-process archetype driving invocation timestamps.
    pub archetype: Archetype,
    /// Average allocated memory in MB (Burr population, Figure 8).
    pub memory_mb: f64,
    /// 1st-percentile allocated memory in MB.
    pub memory_mb_pct1: f64,
    /// Maximum allocated memory in MB.
    pub memory_mb_max: f64,
}

impl AppProfile {
    /// Trigger classes present in this app, deduplicated, in
    /// [`TriggerType::ALL`] order.
    pub fn trigger_set(&self) -> Vec<TriggerType> {
        let mut out = Vec::new();
        for t in TriggerType::ALL {
            if self.functions.iter().any(|f| f.trigger == t) {
                out.push(t);
            }
        }
        out
    }

    /// True when at least one function is timer-triggered.
    pub fn has_timer(&self) -> bool {
        self.functions
            .iter()
            .any(|f| f.trigger == TriggerType::Timer)
    }

    /// True when **all** functions are timer-triggered.
    pub fn only_timers(&self) -> bool {
        !self.functions.is_empty()
            && self
                .functions
                .iter()
                .all(|f| f.trigger == TriggerType::Timer)
    }

    /// The Figure 3(b)-style combination key: sorted trigger letters, e.g.
    /// `"HT"` for an app with HTTP and Timer triggers.
    pub fn combo_key(&self) -> String {
        self.trigger_set().iter().map(|t| t.letter()).collect()
    }
}

/// A generated population of application profiles.
#[derive(Debug, Clone)]
pub struct Population {
    /// The application profiles (ids are dense, `0..apps.len()`).
    pub apps: Vec<AppProfile>,
}

impl Population {
    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when the population has no applications.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Total number of functions across all applications.
    pub fn num_functions(&self) -> usize {
        self.apps.iter().map(|a| a.functions.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::Archetype;

    fn func(trigger: TriggerType) -> FunctionProfile {
        FunctionProfile {
            trigger,
            invocation_share: 1.0,
            avg_exec_secs: 0.5,
            min_exec_secs: 0.1,
            max_exec_secs: 2.0,
        }
    }

    fn app(triggers: &[TriggerType]) -> AppProfile {
        AppProfile {
            id: AppId(0),
            functions: triggers.iter().map(|&t| func(t)).collect(),
            daily_rate: 10.0,
            archetype: Archetype::Poisson,
            memory_mb: 170.0,
            memory_mb_pct1: 120.0,
            memory_mb_max: 300.0,
        }
    }

    #[test]
    fn trigger_set_dedup_and_order() {
        let a = app(&[
            TriggerType::Timer,
            TriggerType::Http,
            TriggerType::Timer,
            TriggerType::Queue,
        ]);
        assert_eq!(
            a.trigger_set(),
            vec![TriggerType::Http, TriggerType::Queue, TriggerType::Timer]
        );
        assert_eq!(a.combo_key(), "HQT");
    }

    #[test]
    fn timer_predicates() {
        assert!(app(&[TriggerType::Timer]).only_timers());
        assert!(app(&[TriggerType::Timer]).has_timer());
        let mixed = app(&[TriggerType::Timer, TriggerType::Http]);
        assert!(mixed.has_timer());
        assert!(!mixed.only_timers());
        assert!(!app(&[TriggerType::Http]).has_timer());
    }

    #[test]
    fn display_formats() {
        assert_eq!(AppId(7).to_string(), "app-000007");
        assert_eq!(TriggerType::Http.to_string(), "HTTP");
        assert_eq!(TriggerType::Others.letter(), 'o');
    }

    #[test]
    fn population_counts() {
        let p = Population {
            apps: vec![
                app(&[TriggerType::Http]),
                app(&[TriggerType::Http, TriggerType::Queue]),
            ],
        };
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_functions(), 3);
        assert!(!p.is_empty());
    }
}
