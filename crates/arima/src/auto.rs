//! Automatic order selection — the crate's `auto_arima`.
//!
//! The paper (§4.2) "used the auto_arima implementation from the pmdarima
//! package, which automatically searches for the ARIMA parameters (p,d,q)
//! that produce the best fit", refitting after every invocation of the
//! rare applications routed to the time-series path. This module
//! reproduces that behaviour: a differencing heuristic picks `d`, then a
//! grid search over `(p, q)` minimizes AIC.

use crate::diff::difference;
use crate::model::{fit, ArimaError, ArimaFit, ArimaSpec};

/// Configuration for [`auto_arima`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoArimaConfig {
    /// Largest AR order to consider.
    pub max_p: usize,
    /// Largest differencing order to consider.
    pub max_d: usize,
    /// Largest MA order to consider.
    pub max_q: usize,
}

impl Default for AutoArimaConfig {
    fn default() -> Self {
        // pmdarima defaults are 5/2/5; idle-time series are short, so a
        // tighter grid keeps refit-per-invocation affordable (§5.3 reports
        // 26.9 ms initial / 5.3 ms subsequent in the paper's setup).
        Self {
            max_p: 3,
            max_d: 1,
            max_q: 2,
        }
    }
}

/// Picks the differencing order with successive KPSS tests, as pmdarima's
/// `auto_arima` does: difference while the level-stationarity null is
/// rejected at 5%, up to `max_d`.
///
/// Short series (where KPSS is unreliable) fall back to the classic
/// variance-minimization heuristic of [`select_d_variance`].
pub fn select_d(series: &[f64], max_d: usize) -> usize {
    if series.len() < 12 {
        return select_d_variance(series, max_d);
    }
    let mut d = 0;
    let mut cur = series.to_vec();
    while d < max_d && cur.len() >= 12 {
        match kpss_statistic(&cur) {
            // 5% critical value for level stationarity.
            Some(stat) if stat > 0.463 => {
                cur = difference(&cur, 1);
                d += 1;
            }
            _ => break,
        }
    }
    d
}

/// KPSS test statistic for level stationarity (Kwiatkowski et al., 1992):
/// `η = n⁻² Σ S_t² / σ̂²_lr` with a Bartlett-window long-run variance.
///
/// Returns `None` for series shorter than 4 points or with zero long-run
/// variance (a constant series is trivially stationary).
pub fn kpss_statistic(series: &[f64]) -> Option<f64> {
    let n = series.len();
    if n < 4 {
        return None;
    }
    let nf = n as f64;
    let mean = series.iter().sum::<f64>() / nf;
    let e: Vec<f64> = series.iter().map(|x| x - mean).collect();

    // Partial sums S_t.
    let mut s = 0.0;
    let mut sum_s2 = 0.0;
    for &v in &e {
        s += v;
        sum_s2 += s * s;
    }

    // Long-run variance with Bartlett weights, Schwert's short lag rule.
    let lags = (4.0 * (nf / 100.0).powf(0.25)).floor() as usize;
    let gamma0: f64 = e.iter().map(|v| v * v).sum::<f64>() / nf;
    let mut lrv = gamma0;
    for l in 1..=lags.min(n - 1) {
        let gamma_l: f64 = (l..n).map(|t| e[t] * e[t - l]).sum::<f64>() / nf;
        lrv += 2.0 * (1.0 - l as f64 / (lags as f64 + 1.0)) * gamma_l;
    }
    if lrv <= 1e-12 {
        return None;
    }
    Some(sum_s2 / (nf * nf * lrv))
}

/// Variance-minimization fallback for choosing `d`: the smallest `d` whose
/// further differencing does not reduce the standard deviation by > 5%.
pub fn select_d_variance(series: &[f64], max_d: usize) -> usize {
    let mut best_d = 0;
    let mut best_std = std_of(series);
    for d in 1..=max_d {
        if series.len() <= d + 2 {
            break;
        }
        let s = std_of(&difference(series, d));
        if s < best_std * 0.95 {
            best_d = d;
            best_std = s;
        }
    }
    best_d
}

fn std_of(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt()
}

/// Fits the AIC-best ARIMA model within the configured order grid.
///
/// Orders whose estimation fails (series too short for the larger lags,
/// singular designs) are skipped; the search fails only when *no* order
/// can be fitted — in particular, `ARIMA(0,0,0)` (the mean model) fits any
/// series of length ≥ 3, so `auto_arima` succeeds on anything the policy
/// will realistically hand it.
pub fn auto_arima(series: &[f64], config: AutoArimaConfig) -> Result<ArimaFit, ArimaError> {
    if series.iter().any(|v| !v.is_finite()) {
        return Err(ArimaError::NonFinite);
    }
    if series.len() < 3 {
        return Err(ArimaError::TooShort {
            needed: 3,
            got: series.len(),
        });
    }

    // Constant series: the mean model is exact; skip the grid.
    if std_of(series) < 1e-12 {
        return fit(series, ArimaSpec::new(0, 0, 0));
    }

    let d = select_d(series, config.max_d);
    let mut best: Option<ArimaFit> = None;
    let mut last_err = ArimaError::TooShort {
        needed: 3,
        got: series.len(),
    };
    for p in 0..=config.max_p {
        for q in 0..=config.max_q {
            match fit(series, ArimaSpec::new(p, d, q)) {
                Ok(candidate) => {
                    let better = match &best {
                        None => true,
                        Some(b) => candidate.aic() < b.aic(),
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
                Err(e) => last_err = e,
            }
        }
    }
    // If nothing fitted with the selected d (very short series), retry the
    // simplest undifferenced mean model before giving up.
    match best {
        Some(b) => Ok(b),
        None => fit(series, ArimaSpec::new(0, 0, 0)).map_err(|_| last_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn auto_on_constant_series() {
        let fit = auto_arima(&[120.0; 10], AutoArimaConfig::default()).unwrap();
        assert_eq!(fit.spec(), ArimaSpec::new(0, 0, 0));
        assert!((fit.forecast_one() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn auto_on_trend_picks_differencing() {
        let series: Vec<f64> = (0..40).map(|t| 3.0 * t as f64).collect();
        let fit = auto_arima(&series, AutoArimaConfig::default()).unwrap();
        assert_eq!(fit.spec().d, 1, "trend needs d=1, got {}", fit.spec());
        let fc = fit.forecast_one();
        assert!((fc - 120.0).abs() < 2.0, "forecast {fc}");
    }

    #[test]
    fn auto_on_ar1_prefers_ar_terms() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut prev = 0.0f64;
        let series: Vec<f64> = (0..1500)
            .map(|_| {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = 0.8 * prev + z;
                prev = v;
                v
            })
            .collect();
        let fit = auto_arima(&series, AutoArimaConfig::default()).unwrap();
        assert!(fit.spec().p >= 1, "expected AR terms, got {}", fit.spec());
        assert_eq!(fit.spec().d, 0);
    }

    #[test]
    fn auto_short_series_still_fits() {
        // 4 observations: only tiny models are possible, but it must work —
        // the policy calls this for rarely-invoked apps.
        let fit = auto_arima(&[250.0, 310.0, 280.0, 295.0], AutoArimaConfig::default()).unwrap();
        let pred = fit.forecast_one();
        assert!(pred.is_finite());
        assert!((200.0..400.0).contains(&pred), "pred {pred}");
    }

    #[test]
    fn auto_rejects_tiny_and_nan() {
        assert!(matches!(
            auto_arima(&[1.0, 2.0], AutoArimaConfig::default()),
            Err(ArimaError::TooShort { .. })
        ));
        assert!(matches!(
            auto_arima(&[1.0, f64::INFINITY, 3.0], AutoArimaConfig::default()),
            Err(ArimaError::NonFinite)
        ));
    }

    #[test]
    fn select_d_levels() {
        // Stationary noise: d = 0.
        let mut rng = StdRng::seed_from_u64(5);
        let noise: Vec<f64> = (0..200).map(|_| rng.random::<f64>()).collect();
        assert_eq!(select_d(&noise, 2), 0);

        // Linear trend: d = 1 (second difference no better).
        let trend: Vec<f64> = (0..200).map(|t| 2.0 * t as f64).collect();
        assert_eq!(select_d(&trend, 2), 1);
    }

    #[test]
    fn select_d_keeps_stationary_ar_undifferenced() {
        // A persistent but stationary AR(1): variance heuristics would
        // over-difference; KPSS must not.
        let mut rng = StdRng::seed_from_u64(8);
        let mut prev = 0.0f64;
        let series: Vec<f64> = (0..800)
            .map(|_| {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = 0.8 * prev + z;
                prev = v;
                v
            })
            .collect();
        assert_eq!(select_d(&series, 2), 0);
    }

    #[test]
    fn kpss_detects_random_walk() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut acc = 0.0f64;
        let walk: Vec<f64> = (0..500)
            .map(|_| {
                acc += rng.random::<f64>() - 0.5;
                acc
            })
            .collect();
        let stat = kpss_statistic(&walk).unwrap();
        assert!(stat > 0.463, "random walk should reject: {stat}");
    }

    #[test]
    fn kpss_constant_series_is_none() {
        assert!(kpss_statistic(&[5.0; 50]).is_none());
        assert!(kpss_statistic(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn auto_periodic_idle_times() {
        // The paper's motivating case: an app with ~5 h idle times (300
        // minutes) that a 4 h histogram cannot represent. ARIMA must
        // predict ≈ 300 so pre-warming (0.85×) lands before the invocation.
        let mut rng = StdRng::seed_from_u64(77);
        let its: Vec<f64> = (0..30)
            .map(|_| 300.0 + (rng.random::<f64>() - 0.5) * 20.0)
            .collect();
        let fit = auto_arima(&its, AutoArimaConfig::default()).unwrap();
        let pred = fit.forecast_one();
        assert!((pred - 300.0).abs() < 25.0, "pred {pred}");
    }
}
