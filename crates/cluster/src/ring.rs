//! The cluster ring: epoch-versioned tenant → node placement.
//!
//! One level up from `sitw_fleet`'s tenant → shard routing, and built on
//! the same invariant: **named tenants land whole on one node**, by hash
//! of the tenant name over the live node set, so each tenant's budget
//! ledger keeps a single writer cluster-wide. The default tenant (id 0)
//! spreads by app hash, exactly as it spreads over shards inside a node.
//!
//! The ring is versioned by an **epoch** that advances on every
//! membership or placement change (a node dropped, a tenant migrated).
//! Routing decisions are a pure function of `(epoch state, key)`, so the
//! epoch is the cluster-wide cache-invalidation token: the reconciler
//! stamps its budget pushes with it, and tests assert recovery by
//! watching it advance.

use std::collections::BTreeMap;

use sitw_fleet::fnv1a;

/// Epoch-versioned node membership plus per-tenant placement overrides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterRing {
    epoch: u64,
    /// Liveness per node index. Indices are stable for the life of the
    /// router (dead nodes keep their slot so metrics and admin output
    /// stay addressable); only the live subset receives traffic.
    live: Vec<bool>,
    /// Tenant name → node index, installed by migration. An override
    /// pins the tenant regardless of the hash placement.
    overrides: BTreeMap<String, usize>,
}

impl ClusterRing {
    /// A ring of `nodes` live nodes (indices `0..nodes`).
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a ring needs at least one node");
        Self {
            epoch: 0,
            live: vec![true; nodes],
            overrides: BTreeMap::new(),
        }
    }

    /// The current epoch (starts at 0, bumps on every change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total node slots, live or not.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Always false (constructed non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Live node count.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Whether a node slot is live.
    pub fn is_live(&self, node: usize) -> bool {
        self.live.get(node).copied().unwrap_or(false)
    }

    /// The live node indices, ascending — the hash space.
    fn live_nodes(&self) -> Vec<usize> {
        (0..self.live.len()).filter(|&i| self.live[i]).collect()
    }

    /// Routes a named tenant: its override if migrated, else the hash of
    /// its name over the live node list. Returns `None` when no node is
    /// live (the caller surfaces a typed unavailable error).
    pub fn node_of_tenant(&self, tenant: &str) -> Option<usize> {
        if let Some(&node) = self.overrides.get(tenant) {
            if self.is_live(node) {
                return Some(node);
            }
            // The pinned node died: fall through to the hash placement
            // (the same rehash an epoch advance applies to everyone).
        }
        let live = self.live_nodes();
        if live.is_empty() {
            return None;
        }
        Some(live[(fnv1a(tenant.as_bytes()) % live.len() as u64) as usize])
    }

    /// Routes a default-tenant invocation by app id — mirroring how the
    /// default tenant spreads over shards inside a node.
    pub fn node_of_app(&self, app: &str) -> Option<usize> {
        let live = self.live_nodes();
        if live.is_empty() {
            return None;
        }
        Some(live[(fnv1a(app.as_bytes()) % live.len() as u64) as usize])
    }

    /// Marks a node dead and advances the epoch. Overrides pointing at
    /// the dead node are removed (their tenants rehash with everyone
    /// else). Returns false (no epoch change) when the node was already
    /// dead or out of range.
    pub fn drop_node(&mut self, node: usize) -> bool {
        if !self.is_live(node) {
            return false;
        }
        self.live[node] = false;
        self.overrides.retain(|_, &mut n| n != node);
        self.epoch += 1;
        true
    }

    /// Advances the epoch without a membership change — the slot's
    /// *address* changed (a promoted standby took the node over), so
    /// every epoch-stamped cache must refresh even though placement is
    /// untouched. Returns the new epoch.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Pins `tenant` to `node` (migration landing) and advances the
    /// epoch. Fails when the node is dead or out of range.
    pub fn set_override(&mut self, tenant: &str, node: usize) -> Result<(), String> {
        if !self.is_live(node) {
            return Err(format!("node {node} is not live"));
        }
        self.overrides.insert(tenant.to_owned(), node);
        self.epoch += 1;
        Ok(())
    }

    /// The placement overrides, name-sorted.
    pub fn overrides(&self) -> impl Iterator<Item = (&str, usize)> {
        self.overrides.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_route_whole_and_deterministically() {
        let ring = ClusterRing::new(3);
        for name in ["t0", "t1", "acme", "batch"] {
            let n = ring.node_of_tenant(name).unwrap();
            assert!(n < 3);
            assert_eq!(ring.node_of_tenant(name), Some(n), "deterministic");
            assert_eq!(n, (fnv1a(name.as_bytes()) % 3) as usize);
        }
    }

    #[test]
    fn drop_rehashes_and_advances_epoch() {
        let mut ring = ClusterRing::new(3);
        assert_eq!(ring.epoch(), 0);
        // Find a tenant that hashes to node 1, then kill node 1.
        let tenant = (0..100)
            .map(|i| format!("t{i}"))
            .find(|t| ring.node_of_tenant(t) == Some(1))
            .unwrap();
        assert!(ring.drop_node(1));
        assert_eq!(ring.epoch(), 1);
        assert!(!ring.drop_node(1), "double drop is a no-op");
        assert_eq!(ring.live_count(), 2);
        let rehashed = ring.node_of_tenant(&tenant).unwrap();
        assert_ne!(rehashed, 1, "dead node receives nothing");
        // Placement over the survivors is the hash over the live list.
        assert_eq!(rehashed, [0, 2][(fnv1a(tenant.as_bytes()) % 2) as usize]);
    }

    #[test]
    fn bump_epoch_invalidates_without_membership_change() {
        let mut ring = ClusterRing::new(2);
        let before: Vec<_> = (0..8)
            .map(|i| ring.node_of_tenant(&format!("t{i}")))
            .collect();
        assert_eq!(ring.bump_epoch(), 1);
        assert_eq!(ring.epoch(), 1);
        assert_eq!(ring.live_count(), 2, "membership untouched");
        let after: Vec<_> = (0..8)
            .map(|i| ring.node_of_tenant(&format!("t{i}")))
            .collect();
        assert_eq!(before, after, "placement untouched");
    }

    #[test]
    fn overrides_pin_until_their_node_dies() {
        let mut ring = ClusterRing::new(3);
        let home = ring.node_of_tenant("acme").unwrap();
        let target = (home + 1) % 3;
        ring.set_override("acme", target).unwrap();
        assert_eq!(ring.epoch(), 1);
        assert_eq!(ring.node_of_tenant("acme"), Some(target));
        assert_eq!(ring.overrides().count(), 1);
        // The pinned node dies: the tenant rehashes like everyone else.
        ring.drop_node(target);
        assert_eq!(ring.epoch(), 2);
        let n = ring.node_of_tenant("acme").unwrap();
        assert_ne!(n, target);
        assert_eq!(ring.overrides().count(), 0, "stale override removed");
        assert!(ring.set_override("acme", target).is_err(), "dead target");
    }
}
