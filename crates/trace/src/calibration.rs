//! Calibration constants anchored to the paper's published numbers.
//!
//! Every table here cites the figure/table it reproduces. The synthetic
//! generator samples from these targets, so regenerating the
//! characterization figures recovers the published shapes. All values are
//! plain data — adjust and rebuild a population to explore alternatives.

use sitw_stats::distributions::PiecewiseLogQuantile;

use crate::model::TriggerType;

/// Quantile anchors for the **applications'** average invocations per day
/// (Figure 5(a)).
///
/// * 45% of apps are invoked at most once per hour (≤ 24/day);
/// * 81% at most once per minute (≤ 1440/day);
/// * the full range spans ~8 orders of magnitude.
pub fn app_daily_rate_quantiles() -> PiecewiseLogQuantile {
    PiecewiseLogQuantile::new(vec![
        (0.0, 0.05),
        (0.20, 1.0),
        (0.45, 24.0),
        (0.81, 1440.0),
        (0.96, 1.0e5),
        (1.0, 5.0e6),
    ])
}

/// Quantile anchors for the number of functions per application
/// (Figure 1): 54% of apps have one function, 95% at most 10, ~0.04%
/// more than 100.
///
/// The first interior anchor sits at 0.45 rather than 0.54 because the
/// sampled value is rounded to an integer: quantiles in (0.45, ~0.54)
/// produce values below 1.5 that round to one function, so the *post-
/// rounding* single-function share lands on the paper's 54%.
pub fn functions_per_app_quantiles() -> PiecewiseLogQuantile {
    PiecewiseLogQuantile::new(vec![
        (0.0, 1.0),
        (0.45, 1.0),
        (0.95, 10.0),
        (0.9996, 100.0),
        (1.0, 2000.0),
    ])
}

/// Figure 3(b): the most popular trigger combinations and their share of
/// applications. Keys are sorted trigger letters; the remainder (~10.4%)
/// is spread over rarer combinations by [`combo_table`].
pub const COMBO_SHARES: [(&str, f64); 12] = [
    ("H", 0.4327),
    ("T", 0.1336),
    ("Q", 0.0947),
    ("HT", 0.0459),
    ("HQ", 0.0422),
    ("E", 0.0301),
    ("S", 0.0280),
    ("TQ", 0.0257),
    ("HTQ", 0.0248),
    ("Ho", 0.0169),
    ("HS", 0.0105),
    ("HO", 0.0103),
];

/// Extra, rarer combinations filling the tail beyond Figure 3(b)'s
/// explicit rows, chosen to keep Figure 3(a)'s per-trigger app shares
/// (64% H, 29% T, 24% Q, 7% S, 6% E, 3% O, 6% o) approximately right.
pub const COMBO_TAIL: [(&str, f64); 8] = [
    ("HE", 0.0250),
    ("QT", 0.0000), // Alias of "TQ"; kept zero to document ordering.
    ("HQT", 0.0150),
    ("O", 0.0100),
    ("o", 0.0220),
    ("ST", 0.0150),
    ("EQ", 0.0120),
    ("HST", 0.0056),
];

/// The full combination table: Figure 3(b) rows plus the tail, weights
/// normalized to 1.
pub fn combo_table() -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> = COMBO_SHARES
        .iter()
        .chain(COMBO_TAIL.iter())
        .filter(|(_, w)| *w > 0.0)
        .map(|(k, w)| (k.to_string(), *w))
        .collect();
    let total: f64 = rows.iter().map(|(_, w)| w).sum();
    for (_, w) in rows.iter_mut() {
        *w /= total;
    }
    rows
}

/// Parses a combination key (e.g. `"HTQ"`) into trigger types.
pub fn parse_combo(key: &str) -> Vec<TriggerType> {
    key.chars()
        .map(|c| match c {
            'H' => TriggerType::Http,
            'E' => TriggerType::Event,
            'Q' => TriggerType::Queue,
            'T' => TriggerType::Timer,
            'O' => TriggerType::Orchestration,
            'S' => TriggerType::Storage,
            'o' => TriggerType::Others,
            other => panic!("unknown trigger letter {other:?}"),
        })
        .collect()
}

/// Rate-band tilt applied to combination sampling: high-rate applications
/// are far more likely to be fed by Event/Queue triggers (Figure 2 shows
/// Event triggers are 2.2% of functions but 24.7% of invocations).
///
/// Returns a multiplicative weight for a combo given the app's daily rate.
pub fn combo_rate_tilt(combo: &str, daily_rate: f64) -> f64 {
    let has = |c: char| combo.contains(c);
    if daily_rate >= 1.0e5 {
        // The extreme head is where Event streams live: few apps, a
        // quarter of all invocations (Figure 2). Timers never fire this
        // fast (95% of timers fire at most once per minute, §3.2).
        let mut w = 1.0;
        if has('E') {
            w *= 12.0;
        }
        if has('Q') {
            w *= 3.0;
        }
        if has('T') {
            w *= 0.02;
        }
        w
    } else if daily_rate >= 1440.0 {
        let mut w = 1.0;
        if has('E') {
            w *= 3.0;
        }
        if has('Q') {
            w *= 3.0;
        }
        if has('T') {
            w *= 0.05;
        }
        w
    } else if daily_rate >= 24.0 {
        // The warm band (1/hour – 1/minute) is where cron-style timers
        // fire: periods of 1–60 minutes imply 24–1440 firings per day.
        let mut w = 1.0;
        if has('E') {
            w *= 1.2;
        }
        if has('T') {
            w *= 1.6;
        }
        w
    } else {
        // The cold band skews to HTTP-only apps and slow (multi-hour to
        // daily) cron jobs.
        let mut w = 1.0;
        if has('E') {
            w *= 0.1;
        }
        if has('Q') {
            w *= 0.6;
        }
        if has('T') {
            w *= 1.2;
        }
        w
    }
}

/// Median execution-time scale per trigger, relative to the global fit
/// (§3.4: per-trigger medians spread ~10× between 200 ms and 2 s;
/// orchestration functions are an outlier at ~30 ms).
pub fn trigger_exec_scale(t: TriggerType) -> f64 {
    match t {
        TriggerType::Http => 1.0,
        TriggerType::Event => 0.45,
        TriggerType::Queue => 1.8,
        TriggerType::Timer => 2.2,
        TriggerType::Orchestration => 0.045,
        TriggerType::Storage => 1.3,
        TriggerType::Others => 0.9,
    }
}

/// Common timer periods in minutes with selection weights (cron-style
/// schedules; 95% of timer functions fire at most once per minute, §3.2).
pub const TIMER_PERIODS_MIN: [(f64, f64); 8] = [
    (1.0, 0.18),
    (5.0, 0.30),
    (15.0, 0.16),
    (30.0, 0.12),
    (60.0, 0.14),
    (240.0, 0.05),
    (720.0, 0.02),
    (1440.0, 0.03),
];

/// Fraction of hourly platform load that is a flat baseline (Figure 4
/// shows "a constant baseline of roughly 50% of the invocations").
pub const DIURNAL_BASELINE: f64 = 0.5;

/// Relative weekend load (Figure 4: weekend peaks are visibly lower).
pub const WEEKEND_FACTOR: f64 = 0.72;

/// Memory spread multipliers around the Burr-sampled average (Figure 8
/// plots 1st-percentile, average and maximum as separate curves).
pub const MEMORY_PCT1_RANGE: (f64, f64) = (0.55, 0.90);

/// See [`MEMORY_PCT1_RANGE`]; multiplier range for the maximum curve.
pub const MEMORY_MAX_RANGE: (f64, f64) = (1.15, 2.6);

/// Execution-time spread multipliers: minimum and maximum around the
/// sampled average (Figure 7 plots min/avg/max separately).
pub const EXEC_MIN_RANGE: (f64, f64) = (0.10, 0.85);

/// See [`EXEC_MIN_RANGE`]; multiplier range for the maximum curve
/// (log-uniform: maxima stretch far above the average).
pub const EXEC_MAX_RANGE: (f64, f64) = (1.3, 40.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_table_normalized_and_nonempty() {
        let t = combo_table();
        assert!(t.len() >= 12);
        let total: f64 = t.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(t.iter().all(|(_, w)| *w > 0.0));
    }

    #[test]
    fn combo_table_matches_figure3b_relative_order() {
        let t = combo_table();
        let get = |k: &str| t.iter().find(|(key, _)| key == k).unwrap().1;
        assert!(get("H") > get("T"));
        assert!(get("T") > get("Q"));
        assert!(get("HT") > get("HO"));
    }

    #[test]
    fn parse_combo_roundtrip() {
        let ts = parse_combo("HTQ");
        assert_eq!(
            ts,
            vec![TriggerType::Http, TriggerType::Timer, TriggerType::Queue]
        );
        assert_eq!(parse_combo("o"), vec![TriggerType::Others]);
    }

    #[test]
    #[should_panic(expected = "unknown trigger letter")]
    fn parse_combo_rejects_garbage() {
        parse_combo("X");
    }

    #[test]
    fn app_rate_anchors_hit_paper_quantiles() {
        use sitw_stats::distributions::ContinuousDist;
        let d = app_daily_rate_quantiles();
        assert!((d.quantile(0.45) - 24.0).abs() < 1e-6);
        assert!((d.quantile(0.81) - 1440.0).abs() < 1e-6);
        // 8 orders of magnitude.
        assert!(d.quantile(1.0) / d.quantile(0.0) >= 1e7);
    }

    #[test]
    fn functions_per_app_anchors() {
        use sitw_stats::distributions::ContinuousDist;
        let d = functions_per_app_quantiles();
        assert_eq!(d.quantile(0.30), 1.0);
        assert!((d.quantile(0.95) - 10.0).abs() < 1e-9);
        assert!(d.quantile(1.0) >= 1000.0);
    }

    #[test]
    fn timer_periods_mostly_at_most_once_per_minute() {
        // §3.2: 95% of timer functions fire at most once per minute,
        // i.e. periods of at least one minute. All our periods satisfy it.
        let total: f64 = TIMER_PERIODS_MIN.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(TIMER_PERIODS_MIN.iter().all(|(p, _)| *p >= 1.0));
    }

    #[test]
    fn tilt_boosts_event_for_hot_apps() {
        assert!(combo_rate_tilt("E", 1.0e5) > combo_rate_tilt("H", 1.0e5));
        assert!(combo_rate_tilt("T", 2000.0) < combo_rate_tilt("H", 2000.0));
        assert!(combo_rate_tilt("E", 1.0) < combo_rate_tilt("H", 1.0));
    }

    #[test]
    fn exec_scales_span_an_order_of_magnitude() {
        let scales: Vec<f64> = TriggerType::ALL
            .iter()
            .filter(|t| **t != TriggerType::Orchestration)
            .map(|&t| trigger_exec_scale(t))
            .collect();
        let max = scales.iter().cloned().fold(f64::MIN, f64::max);
        let min = scales.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 3.0);
        // Orchestration is the ~30 ms outlier (§3.4).
        assert!(trigger_exec_scale(TriggerType::Orchestration) < 0.1);
    }
}
