//! Cross-thread event-loop wakeups over an `eventfd`, with an *armed*
//! flag that keeps the hot path syscall-free.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::sys;

/// An `eventfd`-backed waker for one event-loop thread.
///
/// Protocol: producers enqueue work on a normal channel, then call
/// [`Waker::wake`]. The loop thread calls [`Waker::arm`] *before* its
/// final emptiness check and `epoll_wait`; [`Waker::wake`] only writes
/// the eventfd when it observes the armed flag (and atomically clears
/// it, so N concurrent producers pay one syscall). A producer that runs
/// entirely while the loop is awake pays nothing — the loop will drain
/// the queue anyway before arming, and the arm-then-recheck ordering
/// closes the sleep race.
pub struct Waker {
    fd: RawFd,
    armed: AtomicBool,
}

impl Waker {
    /// Creates a non-blocking eventfd waker.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::sys_eventfd()?,
            armed: AtomicBool::new(false),
        })
    }

    /// The descriptor to register with the loop's epoll (read interest).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the loop if it is (about to be) asleep; no-op otherwise.
    pub fn wake(&self) {
        if self.armed.swap(false, Ordering::AcqRel) {
            sys::sys_eventfd_signal(self.fd);
        }
    }

    /// Wakes the loop unconditionally (shutdown paths, where a missed
    /// wakeup must be impossible rather than merely bounded by the poll
    /// tick).
    pub fn wake_force(&self) {
        sys::sys_eventfd_signal(self.fd);
    }

    /// Declares the loop about to sleep. The loop must re-check its
    /// queues *after* arming and before blocking.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Declares the loop awake again.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Zeroes the eventfd counter after a wakeup delivered it.
    pub fn drain(&self) {
        sys::sys_eventfd_drain(self.fd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::sys_close(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epoll, Events, Interest};

    #[test]
    fn wake_only_fires_while_armed() {
        let waker = Waker::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(waker.raw_fd(), 9, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);

        // Not armed: wake is a no-op, nothing becomes readable.
        waker.wake();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // Armed: one write; readable until drained.
        waker.arm();
        waker.wake();
        waker.wake(); // Second producer: flag already cleared, no-op.
        assert_eq!(epoll.wait(&mut events, 1_000).unwrap(), 1);
        assert_eq!(events.iter().next().unwrap().token, 9);
        waker.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn wake_force_bypasses_the_flag() {
        let waker = Waker::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(waker.raw_fd(), 1, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);
        waker.wake_force();
        assert_eq!(epoll.wait(&mut events, 1_000).unwrap(), 1);
        waker.drain();
    }

    #[test]
    fn cross_thread_wakeup() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let epoll = Epoll::new().unwrap();
        epoll.add(waker.raw_fd(), 5, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);
        waker.arm();
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || w.wake());
        assert_eq!(epoll.wait(&mut events, 2_000).unwrap(), 1);
        t.join().unwrap();
    }
}
