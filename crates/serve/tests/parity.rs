//! End-to-end tests of the serving daemon on a loopback port:
//!
//! * **Online/offline parity**: replaying a synthetic trace through
//!   `POST /invoke` produces verdicts bit-for-bit identical to
//!   `sitw_sim::verdict_trace` / `simulate_app` on the same streams.
//! * **Snapshot/restore continuity**: a server restored mid-stream from
//!   a snapshot continues the exact decision sequence.
//! * **Protocol behaviour**: health, metrics, rejections, admin
//!   shutdown.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use sitw_core::{FixedKeepAlive, HybridConfig, PolicyFactory, ProductionConfig, ProductionManager};
use sitw_serve::wire::{self, BinReply, ServerFrameDecode};
use sitw_serve::{ServeConfig, Server};
use sitw_sim::{
    production_verdict_trace, simulate_app, verdict_trace, InvocationVerdict, PolicySpec,
};
use sitw_trace::{app_invocations, build_population, PopulationConfig, TraceConfig, DAY_MS};

/// Blocking single-request client: sends one request, reads one response.
struct TestClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TestClient {
    fn connect(addr: SocketAddr) -> TestClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        TestClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let req = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(req.as_bytes()).expect("write");
        // Read until a complete response (headers + content-length body).
        loop {
            if let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let header = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
                let status: u16 = header
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .expect("status");
                let content_length: usize = header
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse().ok())?
                    })
                    .unwrap_or(0);
                let total = header_end + 4 + content_length;
                while self.buf.len() < total {
                    self.fill();
                }
                let body = String::from_utf8_lossy(&self.buf[header_end + 4..total]).into_owned();
                self.buf.drain(..total);
                return (status, body);
            }
            self.fill();
        }
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed connection unexpectedly");
        self.buf.extend_from_slice(&chunk[..n]);
    }

    fn invoke(&mut self, app: &str, ts: u64) -> (u16, String) {
        self.request(
            "POST",
            "/invoke",
            &format!("{{\"app\":\"{app}\",\"ts\":{ts}}}"),
        )
    }
}

/// The merged `(app, ts)` request stream and the per-app event lists it
/// was built from.
type Workload = (Vec<(String, u64)>, HashMap<String, Vec<u64>>);

/// The test workload: ~40 apps, one day, enough events to exceed 1 000
/// invocations, merged into one global time-ordered stream.
fn workload() -> Workload {
    workload_with(40, DAY_MS, 400.0)
}

/// A multi-day workload so daily-histogram rotation and retention are
/// actually exercised (production mode is day-aware).
fn multiday_workload() -> Workload {
    workload_with(25, 3 * DAY_MS, 150.0)
}

fn workload_with(num_apps: usize, horizon_ms: u64, cap_per_day: f64) -> Workload {
    let population = build_population(&PopulationConfig {
        num_apps,
        seed: 1213,
    });
    let cfg = TraceConfig {
        horizon_ms,
        cap_per_day,
        seed: 77,
    };
    let mut per_app: HashMap<String, Vec<u64>> = HashMap::new();
    let mut merged: Vec<(String, u64)> = Vec::new();
    for app in &population.apps {
        let events = app_invocations(app, &cfg);
        if events.is_empty() {
            continue;
        }
        let name = app.id.to_string();
        for &ts in &events {
            merged.push((name.clone(), ts));
        }
        per_app.insert(name, events);
    }
    merged.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
    assert!(
        merged.len() >= 1_000,
        "workload too small: {} events",
        merged.len()
    );
    (merged, per_app)
}

fn parse_verdict(body: &str) -> (bool, u64, u64) {
    let cold = body.contains("\"verdict\":\"cold\"");
    assert!(cold || body.contains("\"verdict\":\"warm\""), "{body}");
    let field = |name: &str| -> u64 {
        let key = format!("\"{name}\":");
        let rest = &body[body
            .find(&key)
            .unwrap_or_else(|| panic!("{name} in {body}"))
            + key.len()..];
        rest.chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    (cold, field("pre_warm_ms"), field("keep_alive_ms"))
}

#[test]
fn online_verdicts_match_offline_simulator_bit_for_bit() {
    let (merged, per_app) = workload();
    let spec = PolicySpec::Hybrid(HybridConfig::default());
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 3,
        policy: spec,
        ..ServeConfig::default()
    })
    .expect("server start");
    let mut client = TestClient::connect(server.addr());

    // Online replay, recording per-app verdict sequences.
    let mut online: HashMap<String, Vec<(bool, u64, u64)>> = HashMap::new();
    for (app, ts) in &merged {
        let (status, body) = client.invoke(app, *ts);
        assert_eq!(status, 200, "{body}");
        online
            .entry(app.clone())
            .or_default()
            .push(parse_verdict(&body));
    }

    // Offline: the same streams through the §5.1 simulator.
    for (app, events) in &per_app {
        let mut policy = HybridConfig::default().new_policy();
        let offline = verdict_trace(events, &mut policy);
        let online_app = &online[app];
        assert_eq!(online_app.len(), offline.len(), "{app}");
        for (i, (on, off)) in online_app.iter().zip(&offline).enumerate() {
            assert_eq!(on.0, off.cold, "{app} invocation {i}: cold mismatch");
            assert_eq!(
                (on.1, on.2),
                (off.windows.pre_warm_ms, off.windows.keep_alive_ms),
                "{app} invocation {i}: window mismatch"
            );
        }
        // And the aggregate matches simulate_app's counters exactly.
        let mut policy = HybridConfig::default().new_policy();
        let folded = simulate_app(events, DAY_MS, &mut policy);
        let online_colds = online_app.iter().filter(|v| v.0).count() as u64;
        assert_eq!(online_colds, folded.cold_starts, "{app}");
    }

    // Metrics agree with what was served.
    let report = server.metrics();
    assert_eq!(report.invocations(), merged.len() as u64);
    assert_eq!(report.apps() as usize, per_app.len());
    let offline_total_colds: u64 = per_app
        .values()
        .map(|events| {
            let mut policy = HybridConfig::default().new_policy();
            simulate_app(events, DAY_MS, &mut policy).cold_starts
        })
        .sum();
    assert_eq!(report.cold(), offline_total_colds);

    server.shutdown().expect("shutdown");
}

#[test]
fn snapshot_restore_continues_decision_stream_exactly() {
    let (merged, per_app) = workload();
    let half = merged.len() / 2;
    let spec = || PolicySpec::Hybrid(HybridConfig::default());

    let dir = std::env::temp_dir().join(format!("sitw-serve-restore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("state.snapshot");

    // Phase 1: first half against server A; snapshot on shutdown.
    let server_a = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: spec(),
        snapshot_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = TestClient::connect(server_a.addr());
    for (app, ts) in &merged[..half] {
        let (status, _) = client.invoke(app, *ts);
        assert_eq!(status, 200);
    }
    drop(client);
    let final_state = server_a.shutdown().unwrap();
    assert!(snap_path.exists());
    assert!(!final_state.apps.is_empty());

    // Phase 2: second half against server B, restored from the file —
    // with a *different* shard count to prove state is app-keyed.
    let server_b = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        policy: spec(),
        restore_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = TestClient::connect(server_b.addr());
    let mut online_tail: HashMap<String, Vec<(bool, u64, u64)>> = HashMap::new();
    for (app, ts) in &merged[half..] {
        let (status, body) = client.invoke(app, *ts);
        assert_eq!(status, 200, "{body}");
        online_tail
            .entry(app.clone())
            .or_default()
            .push(parse_verdict(&body));
    }
    drop(client);
    server_b.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    // The tail verdicts must equal the tail of an uninterrupted offline
    // replay: restore is exact, not approximate.
    let tail_counts: HashMap<&String, usize> =
        online_tail.iter().map(|(k, v)| (k, v.len())).collect();
    for (app, events) in &per_app {
        let Some(&tail_n) = tail_counts.get(app) else {
            continue;
        };
        let mut policy = HybridConfig::default().new_policy();
        let offline = verdict_trace(events, &mut policy);
        let offline_tail = &offline[events.len() - tail_n..];
        for (i, (on, off)) in online_tail[app].iter().zip(offline_tail).enumerate() {
            assert_eq!(on.0, off.cold, "{app} tail invocation {i}");
            assert_eq!(
                (on.1, on.2),
                (off.windows.pre_warm_ms, off.windows.keep_alive_ms),
                "{app} tail invocation {i}"
            );
        }
    }
}

/// Extracts the decision-branch name from an `/invoke` response body.
fn parse_kind(body: &str) -> String {
    let key = "\"kind\":\"";
    let rest = &body[body.find(key).unwrap_or_else(|| panic!("kind in {body}")) + key.len()..];
    rest[..rest.find('"').unwrap()].to_owned()
}

/// The §6 serving mode end to end: a multi-day trace through a
/// production-mode daemon equals the offline [`ProductionManager`]
/// replay bit-for-bit — cold/warm verdict, decision branch, and both
/// windows — including across a snapshot/restore that *changes the
/// shard count* mid-stream. Also checks the §6 bookkeeping surfaced in
/// `/metrics` (hourly backups, pre-warm events scheduled 90 s early).
#[test]
fn production_mode_matches_offline_manager_across_shard_change() {
    let (merged, per_app) = multiday_workload();
    let half = merged.len() / 2;
    let spec = || PolicySpec::Production(ProductionConfig::default());

    let dir = std::env::temp_dir().join(format!("sitw-serve-prod-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("state.snapshot");

    // Phase 1: first half against a 2-shard server.
    let server_a = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: spec(),
        snapshot_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = TestClient::connect(server_a.addr());
    let mut online: HashMap<String, Vec<(bool, u64, u64, String)>> = HashMap::new();
    for (app, ts) in &merged[..half] {
        let (status, body) = client.invoke(app, *ts);
        assert_eq!(status, 200, "{body}");
        let (cold, pw, ka) = parse_verdict(&body);
        online
            .entry(app.clone())
            .or_default()
            .push((cold, pw, ka, parse_kind(&body)));
    }
    drop(client);
    server_a.shutdown().unwrap();
    let text = std::fs::read_to_string(&snap_path).unwrap();
    assert!(text.contains("\nclock "), "backup clock must be persisted");
    assert!(text.contains(" production "), "per-app daily histograms");

    // Phase 2: second half against a 5-shard server restored from the
    // snapshot — app slices land on entirely different managers.
    let server_b = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 5,
        policy: spec(),
        restore_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = TestClient::connect(server_b.addr());
    for (app, ts) in &merged[half..] {
        let (status, body) = client.invoke(app, *ts);
        assert_eq!(status, 200, "{body}");
        let (cold, pw, ka) = parse_verdict(&body);
        online
            .entry(app.clone())
            .or_default()
            .push((cold, pw, ka, parse_kind(&body)));
    }

    // Offline ground truth: the uninterrupted day-aware replay.
    for (app, events) in &per_app {
        let mut manager = ProductionManager::new(ProductionConfig::default());
        let offline = production_verdict_trace(events, &mut manager, 0);
        let online_app = &online[app];
        assert_eq!(online_app.len(), offline.len(), "{app}");
        for (i, (on, off)) in online_app.iter().zip(&offline).enumerate() {
            assert_eq!(on.0, off.cold, "{app} invocation {i}: cold mismatch");
            assert_eq!(
                (on.1, on.2),
                (off.windows.pre_warm_ms, off.windows.keep_alive_ms),
                "{app} invocation {i}: window mismatch"
            );
            assert_eq!(
                on.3,
                match off.kind {
                    sitw_core::DecisionKind::Histogram => "histogram",
                    sitw_core::DecisionKind::StandardKeepAlive => "standard",
                    other => panic!("unexpected production branch {other:?}"),
                },
                "{app} invocation {i}: kind mismatch"
            );
        }
    }

    // §6 bookkeeping is visible in /metrics.
    let (status, text) = client.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("sitw_serve_backups_total"), "{text}");
    assert!(
        text.contains("sitw_serve_prewarm_scheduled_total"),
        "{text}"
    );
    let total = |name: &str| -> u64 {
        text.lines()
            .filter(|l| l.starts_with(name) && !l.starts_with('#'))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum()
    };
    assert!(
        total("sitw_serve_backups_total") > 0,
        "a multi-day trace must take hourly backups"
    );
    assert!(
        total("sitw_serve_prewarm_scheduled_total") > 0,
        "learned patterns must schedule pre-warm events"
    );

    // Equal-timestamp regression: re-sending the last accepted (app, ts)
    // is warm (a concurrent arrival), never a 409 or a cold.
    let (last_app, last_ts) = merged.last().unwrap().clone();
    let (status, body) = client.invoke(&last_app, last_ts);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"verdict\":\"warm\""), "{body}");

    drop(client);
    server_b.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Blocking SITW-BIN client: sends one frame, reads one reply frame.
struct BinClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BinClient {
    fn connect(addr: SocketAddr) -> BinClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        BinClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn batch(&mut self, records: &[(&str, u64)]) -> Vec<BinReply> {
        let mut frame = Vec::new();
        wire::encode_request_frame(&mut frame, records);
        self.stream.write_all(&frame).expect("write frame");
        loop {
            match wire::decode_server_frame(&self.buf) {
                ServerFrameDecode::Reply { records, consumed } => {
                    self.buf.drain(..consumed);
                    return records;
                }
                ServerFrameDecode::Incomplete => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).expect("read");
                    assert!(n > 0, "server closed mid-frame");
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                other => panic!("unexpected server frame: {other:?}"),
            }
        }
    }
}

/// One observed verdict, protocol-agnostic: cold, pre-warm window,
/// keep-alive window, decision branch, and (binary only, the JSON test
/// client does not parse it) the pre-warm-load flag.
type Observed = (bool, u64, u64, String, Option<bool>);

/// Replays `merged` against `addr` in alternating protocol blocks — 17
/// invocations as sequential JSON requests, then 29 as one SITW-BIN
/// frame — appending each app's observed verdicts to `online`.
fn replay_mixed(
    addr: SocketAddr,
    merged: &[(String, u64)],
    online: &mut HashMap<String, Vec<Observed>>,
) {
    let mut json = TestClient::connect(addr);
    let mut bin = BinClient::connect(addr);
    let mut i = 0usize;
    let mut use_json = true;
    while i < merged.len() {
        if use_json {
            for (app, ts) in merged[i..merged.len().min(i + 17)].iter() {
                let (status, body) = json.invoke(app, *ts);
                assert_eq!(status, 200, "{body}");
                let (cold, pw, ka) = parse_verdict(&body);
                online.entry(app.clone()).or_default().push((
                    cold,
                    pw,
                    ka,
                    parse_kind(&body),
                    None,
                ));
            }
            i = merged.len().min(i + 17);
        } else {
            let block = &merged[i..merged.len().min(i + 29)];
            let records: Vec<(&str, u64)> = block.iter().map(|(a, ts)| (a.as_str(), *ts)).collect();
            let replies = bin.batch(&records);
            assert_eq!(replies.len(), block.len());
            for ((app, _), reply) in block.iter().zip(&replies) {
                match reply {
                    BinReply::Verdict {
                        cold,
                        prewarm_load,
                        kind,
                        pre_warm_ms,
                        keep_alive_ms,
                        ..
                    } => online.entry(app.clone()).or_default().push((
                        *cold,
                        *pre_warm_ms as u64,
                        *keep_alive_ms as u64,
                        wire::kind_str(*kind).to_owned(),
                        Some(*prewarm_load),
                    )),
                    other => panic!("{app}: unexpected reply {other:?}"),
                }
            }
            i = merged.len().min(i + 29);
        }
        use_json = !use_json;
    }
}

fn assert_streams_match_offline(
    label: &str,
    online: &HashMap<String, Vec<Observed>>,
    per_app: &HashMap<String, Vec<u64>>,
    offline_fn: impl Fn(&[u64]) -> Vec<InvocationVerdict>,
) {
    for (app, events) in per_app {
        let offline = offline_fn(events);
        let online_app = &online[app];
        assert_eq!(online_app.len(), offline.len(), "{label}/{app}");
        for (i, (on, off)) in online_app.iter().zip(&offline).enumerate() {
            assert_eq!(on.0, off.cold, "{label}/{app} invocation {i}: cold");
            assert!(
                off.windows.pre_warm_ms < u32::MAX as u64
                    && off.windows.keep_alive_ms < u32::MAX as u64,
                "{label}/{app}: windows exceed the u32 wire range"
            );
            assert_eq!(
                (on.1, on.2),
                (off.windows.pre_warm_ms, off.windows.keep_alive_ms),
                "{label}/{app} invocation {i}: windows"
            );
            assert_eq!(
                on.3,
                wire::kind_str(off.kind),
                "{label}/{app} invocation {i}: kind"
            );
            if let Some(prewarm_load) = on.4 {
                assert_eq!(
                    prewarm_load, off.prewarm_load,
                    "{label}/{app} invocation {i}: prewarm_load"
                );
            }
        }
    }
}

/// The ISSUE-3 acceptance test: JSON and SITW-BIN verdict streams are
/// bit-identical to the offline simulator, for the fixed and production
/// policies, across a snapshot/restore that changes the shard count.
/// Both protocols interleave on the same servers (blocks of 17 JSON
/// requests and 29-record binary frames), so the merged stream proves
/// the two paths drive the exact same policy state.
#[test]
fn bin_and_json_streams_match_offline_for_fixed_and_production_across_restore() {
    // Fixed keep-alive over the one-day workload.
    run_mixed_protocol_case(
        "fixed",
        || PolicySpec::fixed_minutes(10),
        workload(),
        |events| {
            let mut policy = FixedKeepAlive::minutes(10);
            verdict_trace(events, &mut policy)
        },
    );
    // Production manager (§6) over the multi-day workload, so daily
    // rotation, retention, and backup clocks cross the restore too.
    run_mixed_protocol_case(
        "production",
        || PolicySpec::Production(ProductionConfig::default()),
        multiday_workload(),
        |events| {
            let mut manager = ProductionManager::new(ProductionConfig::default());
            production_verdict_trace(events, &mut manager, 0)
        },
    );
}

fn run_mixed_protocol_case(
    label: &str,
    spec: impl Fn() -> PolicySpec,
    (merged, per_app): Workload,
    offline_fn: impl Fn(&[u64]) -> Vec<InvocationVerdict>,
) {
    let half = merged.len() / 2;
    let dir = std::env::temp_dir().join(format!("sitw-serve-bin-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("state.snapshot");

    // Phase 1: first half against a 2-shard server.
    let server_a = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: spec(),
        snapshot_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut online: HashMap<String, Vec<Observed>> = HashMap::new();
    replay_mixed(server_a.addr(), &merged[..half], &mut online);
    server_a.shutdown().unwrap();

    // Phase 2: the rest against a 5-shard server restored from the
    // snapshot — both protocols must continue the exact streams.
    let server_b = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 5,
        policy: spec(),
        restore_path: Some(snap_path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    replay_mixed(server_b.addr(), &merged[half..], &mut online);

    // The binary path really ran: frames were served on both servers.
    let proto = server_b.metrics().proto;
    assert!(proto.frames > 0, "{label}: no frames served after restore");
    assert!(proto.batched_decisions > 0, "{label}");
    assert_eq!(proto.proto_errors, 0, "{label}");

    server_b.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    assert_streams_match_offline(label, &online, &per_app, offline_fn);
}

/// Regression: one request header declaring a huge `Content-Length`
/// used to tear the connection down silently (and before that, could
/// drive a matching allocation); now it gets `413 Payload Too Large`.
#[test]
fn oversized_body_declaration_gets_413() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 1,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"POST /invoke HTTP/1.1\r\ncontent-length: 1099511627776\r\n\r\n")
        .unwrap();
    // Stream some of the declared body too: the server must drain it
    // before closing, so the 413 arrives as data + FIN, not an RST that
    // would make this read fail with ECONNRESET.
    stream.write_all(&vec![b'x'; 256 * 1024]).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap(); // Server closes after.
    assert!(
        response.starts_with("HTTP/1.1 413 Payload Too Large\r\n"),
        "{response}"
    );
    assert!(response.contains("payload too large"), "{response}");
    server.shutdown().unwrap();
}

#[test]
fn health_metrics_and_rejections() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = TestClient::connect(server.addr());

    let (status, body) = client.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""));
    assert!(body.contains("\"shards\":2"));
    assert!(body.contains("fixed-10min"));

    // Malformed body and unknown path.
    let (status, _) = client.request("POST", "/invoke", "not json");
    assert_eq!(status, 400);
    let (status, _) = client.request("GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = client.request("DELETE", "/metrics", "");
    assert_eq!(status, 405);

    // Out-of-order timestamps are a 409 with the last accepted ts.
    assert_eq!(client.invoke("a", 1_000_000).0, 200);
    let (status, body) = client.invoke("a", 500_000);
    assert_eq!(status, 409);
    assert!(body.contains("\"last_ts\":1000000"), "{body}");

    // Metrics text includes per-shard counters and latency quantiles.
    let (status, text) = client.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("sitw_serve_invocations_total{shard=\"0\"}"));
    assert!(text.contains("sitw_serve_out_of_order_total"));
    assert!(text.contains("quantile=\"0.99\""));

    server.shutdown().unwrap();
}

#[test]
fn admin_shutdown_stops_the_server() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 1,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = TestClient::connect(server.addr());
    assert_eq!(client.invoke("a", 0).0, 200);
    let (status, body) = client.request("POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("stopping"));
    server.wait(); // Returns because the flag is now set.
    let snapshot = server.shutdown().unwrap();
    assert_eq!(snapshot.apps.len(), 1);
    assert_eq!(snapshot.apps[0].app, "a");
}

#[test]
fn pipelined_requests_get_ordered_responses() {
    // Send a burst of pipelined requests on one connection and check
    // responses come back in order (sequence numbers make cold/warm
    // positions deterministic: first "p" invocation cold, rest warm).
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        policy: PolicySpec::fixed_minutes(10),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let n = 200u64;
    let mut batch = Vec::new();
    for i in 0..n {
        let body = format!("{{\"app\":\"p\",\"ts\":{}}}", i * 1_000);
        batch.extend_from_slice(
            format!(
                "POST /invoke HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
    }
    stream.write_all(&batch).unwrap();

    let mut responses = Vec::new();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while responses.len() < n as usize {
        let read = stream.read(&mut chunk).unwrap();
        assert!(read > 0);
        buf.extend_from_slice(&chunk[..read]);
        // Split out complete responses.
        while let Some(header_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let header = String::from_utf8_lossy(&buf[..header_end]).into_owned();
            let content_length: usize = header
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().ok())?
                })
                .unwrap_or(0);
            let total = header_end + 4 + content_length;
            if buf.len() < total {
                break;
            }
            responses.push(String::from_utf8_lossy(&buf[header_end + 4..total]).into_owned());
            buf.drain(..total);
        }
    }
    assert!(responses[0].contains("\"verdict\":\"cold\""));
    for (i, r) in responses[1..].iter().enumerate() {
        assert!(
            r.contains("\"verdict\":\"warm\""),
            "response {}: {r}",
            i + 1
        );
    }
    server.shutdown().unwrap();
}
