//! Autocorrelation and partial autocorrelation functions.
//!
//! Re-exports the ACF from `sitw-stats` and adds the PACF via the
//! Durbin–Levinson recursion, which doubles as a Yule–Walker AR solver.

pub use sitw_stats::fit::{acf, autocorrelation};

/// Partial autocorrelation function for lags `1..=max_lag` via
/// Durbin–Levinson. Returns an empty vector when the series is too short
/// or has zero variance.
pub fn pacf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(xs, max_lag);
    if rho.len() < 2 || rho[1..].iter().all(|v| *v == 0.0) && xs.len() < 2 {
        return Vec::new();
    }
    durbin_levinson(&rho).0
}

/// Durbin–Levinson recursion on an autocorrelation sequence
/// `rho[0..=max_lag]` (with `rho[0] = 1`).
///
/// Returns `(pacf, last_phi)` where `pacf[k-1]` is the partial
/// autocorrelation at lag `k` and `last_phi` are the Yule–Walker AR
/// coefficients of order `max_lag`.
pub fn durbin_levinson(rho: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let max_lag = rho.len().saturating_sub(1);
    let mut pacf_out = Vec::with_capacity(max_lag);
    let mut phi_prev: Vec<f64> = Vec::new();
    let mut v: f64 = 1.0; // Innovation variance ratio.
    for k in 1..=max_lag {
        let mut num = rho[k];
        for (j, &ph) in phi_prev.iter().enumerate() {
            num -= ph * rho[k - 1 - j];
        }
        let alpha = if v.abs() < 1e-12 { 0.0 } else { num / v };
        let mut phi_new = Vec::with_capacity(k);
        for j in 0..k - 1 {
            phi_new.push(phi_prev[j] - alpha * phi_prev[k - 2 - j]);
        }
        phi_new.push(alpha);
        v *= 1.0 - alpha * alpha;
        pacf_out.push(alpha);
        phi_prev = phi_new;
    }
    (pacf_out, phi_prev)
}

/// Yule–Walker estimate of AR(`order`) coefficients from a series.
///
/// Returns `None` when the series is shorter than `order + 2` or
/// degenerate.
pub fn yule_walker(xs: &[f64], order: usize) -> Option<Vec<f64>> {
    if xs.len() < order + 2 || order == 0 {
        return None;
    }
    let rho = acf(xs, order);
    if rho.iter().skip(1).all(|v| *v == 0.0) {
        // Zero variance or pure noise at all lags; AR coefficients are 0.
        return Some(vec![0.0; order]);
    }
    let (_, phi) = durbin_levinson(&rho);
    Some(phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = 0.0;
        (0..n)
            .map(|_| {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = phi * prev + z;
                prev = v;
                v
            })
            .collect()
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let xs = ar1(5000, 0.6, 1);
        let p = pacf(&xs, 5);
        assert!((p[0] - 0.6).abs() < 0.05, "pacf1 {}", p[0]);
        for (i, &v) in p.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.1, "pacf at lag {} = {v}", i + 1);
        }
    }

    #[test]
    fn yule_walker_recovers_ar1() {
        let xs = ar1(5000, -0.4, 2);
        let phi = yule_walker(&xs, 1).unwrap();
        assert!((phi[0] + 0.4).abs() < 0.05, "phi {}", phi[0]);
    }

    #[test]
    fn yule_walker_handles_short_series() {
        assert!(yule_walker(&[1.0, 2.0], 3).is_none());
        assert!(yule_walker(&[1.0, 2.0, 3.0], 0).is_none());
    }

    #[test]
    fn yule_walker_constant_series() {
        let phi = yule_walker(&[4.0; 20], 2).unwrap();
        assert_eq!(phi, vec![0.0, 0.0]);
    }

    #[test]
    fn durbin_levinson_white_noise() {
        // rho = [1, 0, 0]: all pacf zero.
        let (pacf, phi) = durbin_levinson(&[1.0, 0.0, 0.0]);
        assert_eq!(pacf, vec![0.0, 0.0]);
        assert_eq!(phi, vec![0.0, 0.0]);
    }
}
