//! Integration tests for the OpenWhisk-model platform: agreement with the
//! abstract simulator, §5.3 experiment structure, and schema-driven
//! replay.

use serverless_in_the_wild::prelude::*;
use serverless_in_the_wild::sim::simulate_app;
use serverless_in_the_wild::trace::schema::{
    read_invocations_csv, trace_from_rows, write_invocations_csv,
};
use serverless_in_the_wild::trace::subset::{
    filter_by_weighted_exec, mid_popularity_subset, paper_mid_band,
};

fn replay_trace() -> Trace {
    let population = build_population(&PopulationConfig {
        num_apps: 1_200,
        seed: 55,
    });
    let (lo, hi) = paper_mid_band();
    let interactive = filter_by_weighted_exec(&population, 2.0);
    let subset = mid_popularity_subset(&interactive, 68, lo, hi, 1);
    generate_trace(
        &subset,
        &TraceConfig {
            horizon_ms: 8 * HOUR_MS,
            cap_per_day: 3_000.0,
            seed: 2,
        },
    )
}

#[test]
fn platform_reproduces_fig20_directionally() {
    let trace = replay_trace();
    let cfg = PlatformConfig::default();
    let fixed = run_platform(&trace, &cfg, || {
        Box::new(FixedKeepAlive::minutes(10).new_policy()) as Box<dyn AppPolicy>
    });
    let hybrid = run_platform(&trace, &cfg, || {
        Box::new(HybridConfig::default().new_policy()) as Box<dyn AppPolicy>
    });

    // Same work served.
    assert_eq!(
        fixed.served() + fixed.dropped,
        hybrid.served() + hybrid.dropped
    );
    assert!(fixed.served() > 0);

    // §5.3: the hybrid policy reduces cold starts…
    assert!(
        hybrid.cold_count() < fixed.cold_count(),
        "hybrid {} vs fixed {}",
        hybrid.cold_count(),
        fixed.cold_count()
    );
    // …and the average and tail measured execution times (bootstrap
    // elimination on warm containers). The extreme tail is dominated by
    // a handful of slow sampled executions, so p99 gets a small noise
    // tolerance rather than a strict ordering.
    assert!(hybrid.avg_exec_ms() < fixed.avg_exec_ms());
    assert!(hybrid.exec_percentile_ms(95.0) <= fixed.exec_percentile_ms(95.0));
    assert!(hybrid.exec_percentile_ms(99.0) <= 1.02 * fixed.exec_percentile_ms(99.0));
}

#[test]
fn platform_and_simulator_agree_on_direction() {
    // The platform adds latencies, queueing and capacity, but the
    // cold-start *reduction* of hybrid vs fixed must match the abstract
    // simulator's direction, app by app in aggregate.
    let trace = replay_trace();

    let mut sim_fixed = 0u64;
    let mut sim_hybrid = 0u64;
    for app in &trace.apps {
        let mut f = FixedKeepAlive::minutes(10).new_policy();
        sim_fixed += simulate_app(&app.invocations, trace.horizon_ms, &mut f).cold_starts;
        let mut h = HybridConfig::default().new_policy();
        sim_hybrid += simulate_app(&app.invocations, trace.horizon_ms, &mut h).cold_starts;
    }

    let cfg = PlatformConfig::default();
    let plat_fixed = run_platform(&trace, &cfg, || {
        Box::new(FixedKeepAlive::minutes(10).new_policy()) as Box<dyn AppPolicy>
    })
    .cold_count();
    let plat_hybrid = run_platform(&trace, &cfg, || {
        Box::new(HybridConfig::default().new_policy()) as Box<dyn AppPolicy>
    })
    .cold_count();

    assert!(sim_hybrid < sim_fixed);
    assert!(plat_hybrid < plat_fixed);
    // Absolute counts are close: the platform only adds second-order
    // effects (capacity, latency) on this workload.
    let sim_ratio = sim_hybrid as f64 / sim_fixed as f64;
    let plat_ratio = plat_hybrid as f64 / plat_fixed as f64;
    assert!(
        (sim_ratio - plat_ratio).abs() < 0.35,
        "sim ratio {sim_ratio:.2} vs platform ratio {plat_ratio:.2}"
    );
}

#[test]
fn platform_memory_savings_match_simulator_direction() {
    let trace = replay_trace();
    let cfg = PlatformConfig::default();
    let fixed_long = run_platform(&trace, &cfg, || {
        Box::new(FixedKeepAlive::minutes(240).new_policy()) as Box<dyn AppPolicy>
    });
    let fixed_short = run_platform(&trace, &cfg, || {
        Box::new(FixedKeepAlive::minutes(10).new_policy()) as Box<dyn AppPolicy>
    });
    // Longer keep-alive ⇒ more idle memory, fewer colds — on the real
    // platform model too.
    assert!(fixed_long.total_idle_mb_ms() > fixed_short.total_idle_mb_ms());
    assert!(fixed_long.cold_count() < fixed_short.cold_count());
}

#[test]
fn schema_replay_preserves_cold_start_behaviour() {
    // Export day 0 to the AzurePublicDataset layout, rebuild, and check
    // the fixed-policy cold counts stay close (events only move inside
    // their minute).
    let trace = replay_trace();
    let mut csv = Vec::new();
    write_invocations_csv(&trace, 0, &mut csv).unwrap();
    let rows = read_invocations_csv(csv.as_slice()).unwrap();
    let rebuilt = trace_from_rows(&[rows]);

    let colds = |t: &Trace| {
        let mut total = 0u64;
        for app in &t.apps {
            let mut p = FixedKeepAlive::minutes(10).new_policy();
            total += simulate_app(&app.invocations, t.horizon_ms, &mut p).cold_starts;
        }
        total
    };
    let original = colds(&trace);
    let roundtrip = colds(&rebuilt);
    let diff = (original as f64 - roundtrip as f64).abs() / original.max(1) as f64;
    assert!(
        diff < 0.15,
        "cold counts diverged after schema roundtrip: {original} vs {roundtrip}"
    );
}
