//! Mini-loom: a deterministic interleaving model checker.
//!
//! The reactor's correctness rests on two concurrency protocols that
//! unit tests cannot exhaust:
//!
//! 1. the **armed-eventfd waker** (`crates/reactor/src/wake.rs` +
//!    the sleep decision in `crates/serve/src/reactor.rs`): the
//!    consumer must *arm before its final emptiness re-check*, or a
//!    producer that enqueues in the gap wakes nobody — a lost wakeup
//!    that strands queued invocations until the next unrelated event;
//! 2. the **generational slab** (`crates/reactor/src/slab.rs`): reply
//!    tokens carry `(generation << 32) | index`, so a reply that
//!    outlives its connection must be dropped, never delivered to the
//!    unrelated connection that recycled the slot.
//!
//! [`explore`] drives a [`Model`] — a handful of threads, each a small
//! program whose every step is atomic — through **every** interleaving
//! by DFS over a virtual scheduler, cloning the state at each branch
//! point. Invariants are checked after each step and at every
//! quiescent state; a violation yields the exact schedule (thread ids
//! in execution order) that produced it.
//!
//! Both models ship a deliberately buggy variant ([`WakerModel::buggy`]
//! re-checks before arming; [`SlabModel::buggy`] routes replies by
//! index alone). The checker must find those counterexamples — that is
//! the test that the exploration is actually exhaustive, not vacuous.

use std::fmt;

/// A finite-state concurrent system under test.
///
/// Each thread is a small program; [`Model::step`] executes one atomic
/// step of one thread. Clones must be deep: the checker forks the
/// whole state at every scheduling branch.
pub trait Model: Clone {
    /// Total threads (fixed for the life of the model).
    fn threads(&self) -> usize;
    /// Human-readable name for schedules in counterexamples.
    fn thread_name(&self, tid: usize) -> &'static str;
    /// Can `tid` take a step now? Blocked and finished threads return
    /// false; a quiescent state (no runnable thread) ends the schedule.
    fn runnable(&self, tid: usize) -> bool;
    /// Execute one atomic step of `tid` (only called when runnable).
    fn step(&mut self, tid: usize);
    /// Safety invariant, checked after every step.
    fn check(&self) -> Result<(), String>;
    /// Liveness/terminal invariant, checked when no thread is runnable.
    /// A quiescent state with unfinished threads is a deadlock unless
    /// this accepts it.
    fn check_terminal(&self) -> Result<(), String>;
}

/// A schedule that violates an invariant.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Thread ids in execution order.
    pub schedule: Vec<usize>,
    /// Thread names for the same schedule.
    pub names: Vec<&'static str>,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after schedule [{}]",
            self.reason,
            self.names.join(" ")
        )
    }
}

/// The outcome of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Complete schedules enumerated (distinct maximal interleavings).
    pub schedules: u64,
    /// Longest schedule seen, in steps.
    pub max_depth: usize,
    /// Schedules cut off at the depth bound (0 ⇒ the enumeration was
    /// exhaustive).
    pub truncated: u64,
    /// First invariant violation found, if any.
    pub counterexample: Option<Counterexample>,
}

impl Exploration {
    /// True when every interleaving was enumerated and none violated
    /// an invariant.
    pub fn verified(&self) -> bool {
        self.counterexample.is_none() && self.truncated == 0
    }
}

/// Explores every interleaving of `model` up to `max_depth` steps per
/// schedule, stopping at the first counterexample.
pub fn explore<M: Model>(model: &M, max_depth: usize) -> Exploration {
    let mut out = Exploration {
        schedules: 0,
        max_depth: 0,
        truncated: 0,
        counterexample: None,
    };
    let mut trace: Vec<usize> = Vec::new();
    dfs(model, max_depth, &mut trace, &mut out);
    out
}

fn counterexample<M: Model>(model: &M, trace: &[usize], reason: String) -> Counterexample {
    Counterexample {
        schedule: trace.to_vec(),
        names: trace.iter().map(|&t| model.thread_name(t)).collect(),
        reason,
    }
}

fn dfs<M: Model>(state: &M, max_depth: usize, trace: &mut Vec<usize>, out: &mut Exploration) {
    if out.counterexample.is_some() {
        return;
    }
    let runnable: Vec<usize> = (0..state.threads())
        .filter(|&t| state.runnable(t))
        .collect();
    if runnable.is_empty() {
        out.schedules += 1;
        out.max_depth = out.max_depth.max(trace.len());
        if let Err(reason) = state.check_terminal() {
            out.counterexample = Some(counterexample(state, trace, reason));
        }
        return;
    }
    if trace.len() >= max_depth {
        out.truncated += 1;
        return;
    }
    for tid in runnable {
        let mut next = state.clone();
        next.step(tid);
        trace.push(tid);
        if let Err(reason) = next.check() {
            out.counterexample = Some(counterexample(&next, trace, reason));
            trace.pop();
            return;
        }
        dfs(&next, max_depth, trace, out);
        trace.pop();
        if out.counterexample.is_some() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Waker protocol: arm → re-check → block vs. producers' push → wake.
// ---------------------------------------------------------------------------

/// One producer's program counter: push an item, then ring the waker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProducerPc {
    Push,
    Wake,
    Done,
}

/// The consumer's program counter around the sleep decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConsumerPc {
    /// Take everything queued.
    Drain,
    /// Correct order: arm the waker *before* the final emptiness check.
    Arm,
    /// Final emptiness check; empty ⇒ block, nonempty ⇒ drain again.
    Recheck,
    /// Parked on the eventfd; runnable only once it is signalled.
    Block,
    Done,
}

/// Model of the armed-eventfd sleep/wake protocol.
///
/// Shared state mirrors the real system: `queue` is the mpsc depth,
/// `armed` the waker's `AtomicBool`, `eventfd` the pending kernel
/// signal. A producer's `wake` step mirrors `Waker::wake`'s
/// `armed.swap(false)` gate: it signals only if armed. The correct
/// consumer arms and *then* re-checks (as `reactor_loop` does); the
/// buggy one re-checks first, recreating the classic lost-wakeup
/// window.
#[derive(Debug, Clone)]
pub struct WakerModel {
    arm_before_recheck: bool,
    producers: Vec<(ProducerPc, u32)>, // (pc, items left)
    consumer: ConsumerPc,
    queue: u32,
    armed: bool,
    eventfd: bool,
    processed: u32,
    total: u32,
}

impl WakerModel {
    /// The protocol as shipped: arm, then re-check.
    pub fn correct(producers: usize, items_each: u32) -> WakerModel {
        WakerModel::new(true, producers, items_each)
    }

    /// The lost-wakeup variant: re-check, then arm. The checker must
    /// refute this one.
    pub fn buggy(producers: usize, items_each: u32) -> WakerModel {
        WakerModel::new(false, producers, items_each)
    }

    fn new(arm_before_recheck: bool, producers: usize, items_each: u32) -> WakerModel {
        WakerModel {
            arm_before_recheck,
            producers: vec![(ProducerPc::Push, items_each); producers],
            consumer: ConsumerPc::Drain,
            queue: 0,
            armed: false,
            eventfd: false,
            processed: 0,
            total: producers as u32 * items_each,
        }
    }

    fn after_drain(&self) -> ConsumerPc {
        if self.processed == self.total {
            ConsumerPc::Done
        } else if self.arm_before_recheck {
            ConsumerPc::Arm
        } else {
            ConsumerPc::Recheck
        }
    }
}

impl Model for WakerModel {
    fn threads(&self) -> usize {
        1 + self.producers.len()
    }

    fn thread_name(&self, tid: usize) -> &'static str {
        const NAMES: [&str; 4] = ["consumer", "producer-1", "producer-2", "producer-3"];
        NAMES[tid.min(NAMES.len() - 1)]
    }

    fn runnable(&self, tid: usize) -> bool {
        if tid == 0 {
            match self.consumer {
                ConsumerPc::Block => self.eventfd,
                ConsumerPc::Done => false,
                _ => true,
            }
        } else {
            self.producers[tid - 1].0 != ProducerPc::Done
        }
    }

    fn step(&mut self, tid: usize) {
        if tid == 0 {
            self.consumer = match self.consumer {
                ConsumerPc::Drain => {
                    self.processed += self.queue;
                    self.queue = 0;
                    self.after_drain()
                }
                ConsumerPc::Arm => {
                    // Waker::arm — store(true) before the caller's final
                    // emptiness check.
                    self.armed = true;
                    if self.arm_before_recheck {
                        ConsumerPc::Recheck
                    } else {
                        ConsumerPc::Block
                    }
                }
                ConsumerPc::Recheck => {
                    if self.queue > 0 {
                        ConsumerPc::Drain
                    } else if self.arm_before_recheck {
                        ConsumerPc::Block
                    } else {
                        ConsumerPc::Arm
                    }
                }
                ConsumerPc::Block => {
                    // epoll_wait returns: consume the signal, go drain.
                    self.eventfd = false;
                    ConsumerPc::Drain
                }
                ConsumerPc::Done => ConsumerPc::Done,
            };
        } else {
            let (pc, left) = &mut self.producers[tid - 1];
            match *pc {
                ProducerPc::Push => {
                    self.queue += 1;
                    *pc = ProducerPc::Wake;
                }
                ProducerPc::Wake => {
                    // Waker::wake — swap(false) gates the syscall.
                    if self.armed {
                        self.armed = false;
                        self.eventfd = true;
                    }
                    *left -= 1;
                    *pc = if *left == 0 {
                        ProducerPc::Done
                    } else {
                        ProducerPc::Push
                    };
                }
                ProducerPc::Done => {}
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        if self.processed > self.total {
            return Err(format!(
                "processed {} of only {} items",
                self.processed, self.total
            ));
        }
        Ok(())
    }

    fn check_terminal(&self) -> Result<(), String> {
        if self.consumer != ConsumerPc::Done {
            return Err(format!(
                "lost wakeup: consumer blocked ({:?}) with queue={} eventfd={} armed={} \
                 and all producers finished",
                self.consumer, self.queue, self.eventfd, self.armed
            ));
        }
        if self.processed != self.total || self.queue != 0 {
            return Err(format!(
                "items lost: processed {}/{} with queue={}",
                self.processed, self.total, self.queue
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Slab token protocol: alloc → submit → close → recycle vs. late reply.
// ---------------------------------------------------------------------------

/// The connection-lifecycle event sequence on the reactor: submit on
/// behalf of conn A, kill A (generation bump), recycle the slot for
/// conn B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LifecyclePc {
    /// Allocate slot 0 for conn A and submit a request carrying A's
    /// token.
    SubmitA,
    /// Conn A dies: remove slot 0 (generation bump).
    CloseA,
    /// Conn B arrives: slot 0 is recycled at the new generation.
    AllocB,
    Done,
}

/// The shard thread's script: take the request, produce a reply tagged
/// with the token it was given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardPc {
    Take,
    Reply,
    Done,
}

/// Model of generational-token reply routing.
///
/// `token = (generation << 32) | index`, as in
/// `crates/reactor/src/slab.rs`. Three threads: the connection
/// lifecycle (submit/close/recycle), the reply drain, and the shard.
/// Lifecycle and drain are one OS thread in the real reactor, but
/// their relative order is decided by epoll readiness, so the model
/// schedules them independently — some schedules deliver A's reply
/// while A is alive (legal), others race it past A's death.
///
/// The correct router compares the full token against the slot's
/// current generation and drops stale ones; the buggy router keys by
/// index alone and hands conn A's late reply to conn B.
#[derive(Debug, Clone)]
pub struct SlabModel {
    generational: bool,
    lifecycle: LifecyclePc,
    shard: ShardPc,
    /// (generation, owner) of slot 0; owner None ⇒ vacant.
    slot: (u64, Option<char>),
    /// Request channel: tokens submitted to the shard.
    submitted: Vec<u64>,
    /// Reply channel: tokens coming back.
    replies: Vec<u64>,
    /// (reply token, conn it was delivered to).
    delivered: Vec<(u64, char)>,
    dropped: u32,
}

impl SlabModel {
    /// Full-token routing, as shipped.
    pub fn correct() -> SlabModel {
        SlabModel::new(true)
    }

    /// Index-only routing; the checker must catch the misdelivery.
    pub fn buggy() -> SlabModel {
        SlabModel::new(false)
    }

    fn new(generational: bool) -> SlabModel {
        SlabModel {
            generational,
            lifecycle: LifecyclePc::SubmitA,
            shard: ShardPc::Take,
            slot: (0, None),
            submitted: Vec::new(),
            replies: Vec::new(),
            delivered: Vec::new(),
            dropped: 0,
        }
    }

    fn token(generation: u64) -> u64 {
        generation << 32 // | index, always 0 — one slot is enough to race
    }
}

const LIFECYCLE: usize = 0;
const DRAIN: usize = 1;
// tid 2 is the shard thread (the `_` arm of the match below).

impl Model for SlabModel {
    fn threads(&self) -> usize {
        3
    }

    fn thread_name(&self, tid: usize) -> &'static str {
        ["lifecycle", "drain", "shard"][tid]
    }

    fn runnable(&self, tid: usize) -> bool {
        match tid {
            LIFECYCLE => self.lifecycle != LifecyclePc::Done,
            DRAIN => !self.replies.is_empty(),
            _ => match self.shard {
                ShardPc::Take => !self.submitted.is_empty(),
                ShardPc::Reply => true,
                ShardPc::Done => false,
            },
        }
    }

    fn step(&mut self, tid: usize) {
        match tid {
            LIFECYCLE => match self.lifecycle {
                LifecyclePc::SubmitA => {
                    self.slot = (self.slot.0, Some('A'));
                    self.submitted.push(SlabModel::token(self.slot.0));
                    self.lifecycle = LifecyclePc::CloseA;
                }
                LifecyclePc::CloseA => {
                    // Slab::remove — vacate and bump the generation.
                    self.slot = (self.slot.0 + 1, None);
                    self.lifecycle = LifecyclePc::AllocB;
                }
                LifecyclePc::AllocB => {
                    self.slot = (self.slot.0, Some('B'));
                    self.lifecycle = LifecyclePc::Done;
                }
                LifecyclePc::Done => {}
            },
            DRAIN => {
                if let Some(token) = self.replies.pop() {
                    let fresh = !self.generational || token == SlabModel::token(self.slot.0);
                    match (fresh, self.slot.1) {
                        (true, Some(owner)) => self.delivered.push((token, owner)),
                        _ => self.dropped += 1,
                    }
                }
            }
            _ => match self.shard {
                ShardPc::Take => {
                    if let Some(token) = self.submitted.pop() {
                        self.replies.push(token);
                        self.shard = ShardPc::Reply;
                    }
                }
                ShardPc::Reply => {
                    self.shard = ShardPc::Done;
                }
                ShardPc::Done => {}
            },
        }
    }

    fn check(&self) -> Result<(), String> {
        for &(token, conn) in &self.delivered {
            // The only legal delivery is A's own reply, while A lives.
            if token != SlabModel::token(0) || conn != 'A' {
                return Err(format!(
                    "stale delivery: reply token {token:#x} (conn A, generation 0) \
                     delivered to conn {conn}"
                ));
            }
        }
        Ok(())
    }

    fn check_terminal(&self) -> Result<(), String> {
        self.check()?;
        if self.delivered.len() + self.dropped as usize != 1 {
            return Err(format!(
                "reply neither delivered nor dropped ({} delivered, {} dropped)",
                self.delivered.len(),
                self.dropped
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 waker sweep: 2 producers × 1 item. The schedule count is
    /// asserted so any change to the model (or a checker bug that
    /// silently prunes branches) fails loudly.
    #[test]
    fn waker_correct_is_exhaustively_verified() {
        let result = explore(&WakerModel::correct(2, 1), 64);
        assert!(
            result.verified(),
            "counterexample: {:?}",
            result.counterexample
        );
        assert_eq!(result.schedules, WAKER_2X1_SCHEDULES);
    }

    /// The checker must *find* the seeded lost wakeup — this is the
    /// proof the exploration is exhaustive rather than vacuous.
    #[test]
    fn waker_buggy_variant_loses_a_wakeup() {
        let result = explore(&WakerModel::buggy(2, 1), 64);
        let cex = result
            .counterexample
            .expect("recheck-before-arm must lose a wakeup");
        assert!(cex.reason.contains("lost wakeup"), "{cex}");
        assert!(!cex.schedule.is_empty());
    }

    #[test]
    fn single_producer_waker_holds_too() {
        let result = explore(&WakerModel::correct(1, 1), 64);
        assert!(result.verified(), "{:?}", result.counterexample);
        let buggy = explore(&WakerModel::buggy(1, 1), 64);
        assert!(
            buggy.counterexample.is_some(),
            "even one producer can race the sleep decision"
        );
    }

    /// Tier-1 slab sweep: both the legal-delivery schedules (drain
    /// beats close) and the stale-drop schedules (close beats drain)
    /// are enumerated; neither misdelivers.
    #[test]
    fn slab_correct_never_misdelivers() {
        let result = explore(&SlabModel::correct(), 64);
        assert!(
            result.verified(),
            "counterexample: {:?}",
            result.counterexample
        );
        assert_eq!(result.schedules, SLAB_SCHEDULES);
    }

    #[test]
    fn slab_index_only_routing_misdelivers() {
        let result = explore(&SlabModel::buggy(), 64);
        let cex = result
            .counterexample
            .expect("index-only tokens must misdeliver");
        assert!(cex.reason.contains("stale delivery"), "{cex}");
    }

    /// Depth bound actually truncates (sanity for the `truncated`
    /// accounting — a bound of 1 cannot finish any schedule).
    #[test]
    fn depth_bound_reports_truncation() {
        let result = explore(&WakerModel::correct(1, 1), 1);
        assert!(result.truncated > 0);
        assert!(!result.verified());
    }

    /// Exhaustive deep sweep (CI stress tier): 3 producers × 1 item
    /// and 2 producers × 2 items — ~11.8M schedules, max depth 34,
    /// a few seconds in release mode.
    #[test]
    #[ignore = "stress tier: full interleaving sweep"]
    fn waker_deep_sweep_is_clean() {
        let three = explore(&WakerModel::correct(3, 1), 256);
        assert!(three.verified(), "{:?}", three.counterexample);
        assert_eq!(three.schedules, 261_114);
        let deep = explore(&WakerModel::correct(2, 2), 256);
        assert!(deep.verified(), "{:?}", deep.counterexample);
        assert_eq!(deep.schedules, 11_578_040);
        assert!(deep.max_depth >= 8, "sweep too shallow: {}", deep.max_depth);
        assert!(explore(&WakerModel::buggy(3, 1), 256)
            .counterexample
            .is_some());
        assert!(explore(&WakerModel::buggy(2, 2), 256)
            .counterexample
            .is_some());
    }

    // Asserted schedule counts. These are properties of the models;
    // recompute (print `result.schedules`) when deliberately changing
    // a model's step structure.
    const WAKER_2X1_SCHEDULES: u64 = 902;
    const SLAB_SCHEDULES: u64 = 20;
}
